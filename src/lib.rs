//! Facade crate re-exporting the full instruction-repetition stack.
//!
//! See the individual crates for details:
//!
//! * [`isa`] — the SRV32 instruction set.
//! * [`asm`] — the assembler.
//! * [`minicc`] — the MiniC compiler.
//! * [`sim`] — the functional simulator.
//! * [`core`] — the repetition analyses (the paper's contribution).
//! * [`workloads`] — the ten MiniC benchmark programs.
//!
//! The analysis entry point is [`Session`], re-exported here with its
//! supporting types.
//!
//! # Examples
//!
//! Analyze one workload through the builder:
//!
//! ```
//! use instrep::{AnalysisConfig, Session};
//!
//! let image = instrep::minicc::build(r#"
//!     int main() {
//!         int i; int s = 0;
//!         for (i = 0; i < 1000; i++) s += i & 7;
//!         return s & 0xff;
//!     }
//! "#)?;
//! let report = Session::new(AnalysisConfig::default()).run_one(&image, Vec::new())?.report;
//! assert!(report.dynamic_total > 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Memoize results in a content-addressed cache — the second run hits
//! and skips simulation entirely:
//!
//! ```
//! use instrep::{AnalysisCache, AnalysisConfig, CacheOutcome, Session};
//!
//! let dir = std::env::temp_dir().join(format!("instrep-facade-doc-{}", std::process::id()));
//! let cache = AnalysisCache::open(&dir)?;
//! let image = instrep::minicc::build(
//!     "int main() { int i; int s = 0; for (i = 0; i < 200; i++) s += i & 3; return s; }",
//! )?;
//! let cfg = AnalysisConfig::default();
//!
//! let cold = Session::new(cfg).cache(&cache).run_one(&image, Vec::new())?;
//! assert_eq!(cold.cache, CacheOutcome::Miss);
//! let warm = Session::new(cfg).cache(&cache).run_one(&image, Vec::new())?;
//! assert_eq!(warm.cache, CacheOutcome::Hit);
//! assert_eq!(format!("{:?}", warm.report), format!("{:?}", cold.report));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use instrep_asm as asm;
pub use instrep_core as core;
pub use instrep_isa as isa;
pub use instrep_minicc as minicc;
pub use instrep_sim as sim;
pub use instrep_workloads as workloads;

pub use instrep_core::{
    AnalysisCache, AnalysisConfig, AnalysisJob, CacheKey, CacheOutcome, InstrumentedReport, Probes,
    Session, WorkloadReport, CACHE_SCHEMA_VERSION,
};
