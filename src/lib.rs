//! Facade crate re-exporting the full instruction-repetition stack.
//!
//! See the individual crates for details:
//!
//! * [`isa`] — the SRV32 instruction set.
//! * [`asm`] — the assembler.
//! * [`minicc`] — the MiniC compiler.
//! * [`sim`] — the functional simulator.
//! * [`core`] — the repetition analyses (the paper's contribution).
//! * [`workloads`] — the eight SPEC-'95-like benchmark programs.

pub use instrep_asm as asm;
pub use instrep_core as core;
pub use instrep_isa as isa;
pub use instrep_minicc as minicc;
pub use instrep_sim as sim;
pub use instrep_workloads as workloads;
