//! Quickstart: compile a MiniC program, run it under the repetition
//! analyses, and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use instrep::core::{AnalysisConfig, Session};
use instrep::minicc::build;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program with an obviously repetitive inner function.
    let image = build(
        r#"
        int squares[16];

        int square(int x) { return x * x; }

        int main() {
            int i;
            for (i = 0; i < 2000; i++) {
                squares[i & 15] = square(i & 15);
            }
            int s = 0;
            for (i = 0; i < 16; i++) s += squares[i];
            return s & 0xff;
        }
        "#,
    )?;

    let report = Session::new(AnalysisConfig::default()).run_one(&image, Vec::new())?.report;

    println!("dynamic instructions : {}", report.dynamic_total);
    println!(
        "repeated             : {} ({:.1}%)",
        report.dynamic_repeated,
        report.repetition_rate() * 100.0
    );
    println!(
        "static instructions  : {} total, {} executed, {} repeated",
        report.static_total, report.static_executed, report.static_repeated
    );
    println!(
        "unique repeatable    : {} instances, avg {:.0} repeats each",
        report.unique_repeatable, report.avg_repeats
    );
    println!(
        "top 10% static insns cover {:.1}% of all repetition",
        report.static_coverage.coverage_at(0.10) * 100.0
    );
    println!(
        "function calls       : {} ({:.1}% all-arg repeated)",
        report.dynamic_calls,
        report.all_arg_rate * 100.0
    );
    println!(
        "8K reuse buffer      : {:.1}% of instructions reused",
        report.reuse.hit_rate() * 100.0
    );
    Ok(())
}
