//! Memoization advisor: the software-exploitation question of the
//! paper's §6 as a tool.
//!
//! For each function of a workload it reports dynamic calls, how often
//! the *entire* argument tuple repeats (the memoization opportunity), and
//! whether the calls were free of side effects and implicit inputs (the
//! memoization *safety* requirement, paper Table 8). The punchline of
//! the paper — huge argument repetition, almost no safely memoizable
//! functions — falls out of the last column.
//!
//! ```text
//! cargo run --release --example memoization_advisor [workload]
//! ```

use instrep::core::{FunctionAnalysis, RepetitionTracker, TrackerConfig};
use instrep::isa::abi::region_of;
use instrep::sim::Machine;
use instrep::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vortex".to_string());
    let wl = by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try: go, m88ksim, ijpeg, ...)"))?;

    let image = wl.build()?;
    let mut machine = Machine::new(&image);
    machine.set_input(wl.input(Scale::Tiny, 1998));

    let mut tracker = RepetitionTracker::new(TrackerConfig::default(), image.text.len());
    let mut funcs = FunctionAnalysis::new(&image);
    let data_end = image.data_end();
    machine.run(50_000_000, |ev| {
        tracker.observe(ev);
        let region = ev.mem.map(|m| region_of(m.addr, data_end, u32::MAX / 2));
        funcs.observe(ev, true, region);
    })?;

    println!("workload: {} (stand-in for SPEC {})", wl.name, wl.spec_analog);
    println!(
        "{:<18}{:>10}{:>14}{:>12}{:>14}",
        "function", "calls", "all-arg rep%", "pure %", "memoizable?"
    );
    println!("{}", "-".repeat(68));
    let mut rows: Vec<_> = funcs.funcs().iter().filter(|f| f.calls > 0).collect();
    rows.sort_by_key(|f| std::cmp::Reverse(f.calls));
    for f in rows {
        let all_arg = f.all_args_repeated as f64 / f.calls as f64 * 100.0;
        let pure = f.pure_calls as f64 / f.calls as f64 * 100.0;
        let verdict = if pure > 99.0 && all_arg > 50.0 {
            "YES"
        } else if pure > 99.0 {
            "pure, low reuse"
        } else if all_arg > 50.0 {
            "blocked: side effects"
        } else {
            "no"
        };
        println!("{:<18}{:>10}{:>13.1}%{:>11.1}%{:>16}", f.name, f.calls, all_arg, pure, verdict);
    }
    println!(
        "\noverall: {:.1}% of calls all-arg repeated, {:.1}% memoization-safe",
        funcs.all_arg_rate() * 100.0,
        funcs.pure_rate() * 100.0
    );
    println!("(the paper's Table 8 finding: repetition is plentiful, safety is rare)");
    Ok(())
}
