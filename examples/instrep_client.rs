//! A line-protocol client for the `instrep-serve` daemon.
//!
//! ```text
//! instrep-serve --socket /tmp/instrep.sock --cache-dir /tmp/instrep-cache &
//! cargo run --example instrep_client -- --socket /tmp/instrep.sock --workload compress
//! ```
//!
//! Sends one request built from the flags, prints the daemon's reply.
//! `--report-only` prints just the canonical report object — two runs
//! of the same request are byte-identical, which is how `scripts/ci.sh`
//! checks cold and warm daemon responses against each other.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use instrep::core::service::{cache_outcome_name, Request, Response};

const USAGE: &str = "\
instrep_client: send one request to an instrep-serve daemon

USAGE:
    instrep_client --socket PATH (--workload NAME | --source FILE) [OPTIONS]

OPTIONS:
    --socket PATH       daemon socket (required)
    --workload NAME     named in-tree workload to analyze
    --source FILE       MiniC file to upload and analyze instead
    --scale NAME        tiny | small | full (default tiny)
    --seed N            input seed (default 1998)
    --id N              request id echoed by the daemon (default 1)
    --metrics           also request the phase-metrics payload
    --profile           also request the per-PC profile payload
    --loops             also request the loop-nest payload
    --report-only       print only the canonical report object
    --help              print this help
";

struct Args {
    socket: PathBuf,
    request: Request,
    report_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut socket = None;
    let mut workload = None;
    let mut source = None;
    let mut scale = "tiny".to_string();
    let mut seed = 1998u64;
    let mut id = 1u64;
    let (mut metrics, mut profile, mut loops, mut report_only) = (false, false, false, false);

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--workload" => workload = Some(value("--workload")?),
            "--source" => source = Some(PathBuf::from(value("--source")?)),
            "--scale" => scale = value("--scale")?,
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|_| "--seed expects an integer")?;
            }
            "--id" => id = value("--id")?.parse().map_err(|_| "--id expects an integer")?,
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--loops" => loops = true,
            "--report-only" => report_only = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let socket = socket.ok_or("--socket is required (try --help)")?;
    let mut request = match (workload, source) {
        (Some(name), None) => Request::workload(id, &name),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            Request::raw_source(id, &text)
        }
        _ => return Err("exactly one of --workload or --source is required".to_string()),
    };
    request = request.scale(&scale).seed(seed);
    if metrics {
        request = request.with_metrics();
    }
    if profile {
        request = request.with_profile();
    }
    if loops {
        request = request.with_loops();
    }
    Ok(Args { socket, request, report_only })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("instrep_client: {msg}");
            std::process::exit(2);
        }
    };

    let mut stream = UnixStream::connect(&args.socket)?;
    let mut line = args.request.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())?;

    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err("daemon closed the connection without replying".into());
    }
    match Response::decode(reply.trim_end())? {
        Response::Report(p) => {
            if args.report_only {
                println!("{}", p.report);
                return Ok(());
            }
            eprintln!("cache: {}", cache_outcome_name(p.cache));
            println!("{}", p.report);
            for (name, payload) in
                [("metrics", &p.metrics), ("profile", &p.profile), ("loops", &p.loops)]
            {
                if let Some(payload) = payload {
                    eprintln!("--- {name} ---");
                    println!("{payload}");
                }
            }
            Ok(())
        }
        Response::Error(e) => {
            let retry =
                e.retry_after_ms.map(|ms| format!(" (retry in {ms}ms)")).unwrap_or_default();
            eprintln!("instrep_client: {}: {}{retry}", e.kind.name(), e.message);
            std::process::exit(1);
        }
    }
}
