//! Window-size sensitivity: how the headline repetition rate depends on
//! the measurement window — the methodological question behind the
//! paper's §3 (it skipped initialization, then measured 1 B instructions
//! and sanity-checked against 10 B).
//!
//! Prints Table 1's repetition rate for one workload at geometrically
//! growing windows, plus the buffered-instance count, showing where the
//! measurement stabilizes.
//!
//! ```text
//! cargo run --release --example window_sensitivity [workload]
//! ```

use instrep::core::{AnalysisConfig, Session};
use instrep::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ijpeg".to_string());
    let wl = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let image = wl.build()?;

    println!("workload {}: repetition rate vs measurement window (skip 50k)\n", wl.name);
    println!(
        "{:>12}{:>14}{:>12}{:>16}{:>14}",
        "window", "measured", "repeated %", "unique insts", "avg repeats"
    );
    println!("{}", "-".repeat(68));
    for window in [50_000u64, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000] {
        let cfg = AnalysisConfig { skip: 50_000, window, ..AnalysisConfig::default() };
        let r = Session::new(cfg).run_one(&image, wl.input(Scale::Small, 1998))?.report;
        println!(
            "{:>12}{:>14}{:>11.1}%{:>16}{:>14.0}",
            window,
            r.dynamic_total,
            r.repetition_rate() * 100.0,
            r.unique_repeatable,
            r.avg_repeats
        );
        if r.dynamic_total < window {
            println!("(program finished)");
            break;
        }
    }
    println!(
        "\nThe rate climbs as the instance buffers warm and then plateaus —\n\
         the steady state the paper verified with its 10x-longer runs."
    );
    Ok(())
}
