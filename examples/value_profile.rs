//! Value profiler: per-static-instruction repetition detail.
//!
//! Lists the hottest repeated static instructions of a workload with
//! their disassembly, exec counts, and unique-repeatable-instance counts
//! — the per-instruction view behind the paper's Figures 1 and 3, and
//! the "track a few static instructions" suggestion of its §6.
//!
//! ```text
//! cargo run --release --example value_profile [workload] [top_n]
//! ```

use instrep::core::{Coverage, RepetitionTracker, TrackerConfig};
use instrep::isa::abi::TEXT_BASE;
use instrep::sim::Machine;
use instrep::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "li".to_string());
    let top_n: usize = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(15);
    let wl = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let image = wl.build()?;

    let mut machine = Machine::new(&image);
    machine.set_input(wl.input(Scale::Tiny, 42));
    let mut tracker = RepetitionTracker::new(TrackerConfig::default(), image.text.len());
    machine.run(20_000_000, |ev| {
        tracker.observe(ev);
    })?;

    let mut stats = tracker.static_stats();
    stats.sort_by_key(|s| std::cmp::Reverse(s.repeated));

    println!(
        "workload {}: {} dynamic instructions, {:.1}% repeated",
        wl.name,
        tracker.dynamic_total(),
        tracker.repetition_rate() * 100.0
    );
    let cov: Coverage = stats.iter().filter(|s| s.repeated > 0).map(|s| s.repeated).collect();
    println!(
        "{} repeated static instructions; the top {:.1}% cover 90% of repetition\n",
        cov.len(),
        cov.items_needed(0.9) * 100.0
    );

    println!(
        "{:<12}{:<28}{:>12}{:>12}{:>8}{:<14}",
        "pc", "instruction", "executed", "repeated", "URIs", "  in function"
    );
    println!("{}", "-".repeat(88));
    for s in stats.iter().take(top_n) {
        let pc = TEXT_BASE + s.index * 4;
        let insn = instrep::isa::decode(image.text[s.index as usize])
            .map(|i| i.to_string())
            .unwrap_or_else(|_| "<bad>".to_string());
        let func = image.func_at(pc).map(|f| f.name.as_str()).unwrap_or("?");
        println!(
            "{:#010x}  {:<28}{:>12}{:>12}{:>8}  {}",
            pc, insn, s.exec, s.repeated, s.unique_repeatable, func
        );
    }
    Ok(())
}
