//! Disassemble a workload's hottest function.
//!
//! Compiles one of the ten benchmarks, profiles it briefly, and prints
//! an annotated listing of the function with the most dynamic
//! instructions — handy for seeing exactly which generated code the
//! analyses are classifying.
//!
//! ```text
//! cargo run --release --example disassemble [workload]
//! ```

use std::collections::HashMap;

use instrep::asm::disassemble_range;
use instrep::sim::Machine;
use instrep::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88ksim".to_string());
    let wl = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let image = wl.build()?;

    // Profile: dynamic instructions per function.
    let mut machine = Machine::new(&image);
    machine.set_input(wl.input(Scale::Tiny, 1));
    let mut per_func: HashMap<usize, u64> = HashMap::new();
    let funcs = image.funcs.clone();
    machine.run(300_000, |ev| {
        if let Some(i) = funcs.iter().position(|f| f.contains(ev.pc)) {
            *per_func.entry(i).or_insert(0) += 1;
        }
    })?;

    let (&hot, &count) = per_func.iter().max_by_key(|(_, &c)| c).ok_or("nothing executed")?;
    let f = &image.funcs[hot];
    println!(
        "hottest function of `{}`: {} ({} dynamic instructions in the sample)\n",
        wl.name, f.name, count
    );
    println!("{}", disassemble_range(&image, f.entry, f.end));
    Ok(())
}
