//! Reuse-buffer design sweep: the hardware-exploitation question of the
//! paper's §7 extended into an ablation (DESIGN.md §8).
//!
//! Sweeps buffer size × associativity for one workload and prints the
//! fraction of repetition captured by each geometry — showing how far
//! the paper's 8K/4-way point sits from the asymptote (its Table 10
//! observation that "there is still room for improvement").
//!
//! ```text
//! cargo run --release --example reuse_buffer_sweep [workload]
//! ```

use instrep::core::{RepetitionTracker, ReuseBuffer, ReuseConfig, TrackerConfig};
use instrep::sim::{Machine, Trace};
use instrep::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".to_string());
    let wl = by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let image = wl.build()?;

    // One simulation pass, recorded; then each geometry replays it.
    // (Recording keeps the sweep honest: every config sees the same
    // trace.)
    let mut machine = Machine::new(&image);
    machine.set_input(wl.input(Scale::Tiny, 7));
    let trace = Trace::record(&mut machine, 5_000_000)?;
    let mut tracker = RepetitionTracker::new(TrackerConfig::default(), image.text.len());
    let repeated_flags: Vec<bool> = trace.events().iter().map(|ev| tracker.observe(ev)).collect();
    println!(
        "workload {}: {} instructions, {:.1}% repeated\n",
        wl.name,
        tracker.dynamic_total(),
        tracker.repetition_rate() * 100.0
    );

    println!(
        "{:<10}{:>8}{:>16}{:>22}",
        "entries", "ways", "% insts reused", "% repetition captured"
    );
    println!("{}", "-".repeat(56));
    for entries in [256usize, 1024, 4096, 8192, 32768] {
        for ways in [1usize, 4] {
            let mut buf = ReuseBuffer::new(ReuseConfig { entries, ways });
            for (ev, repeated) in trace.events().iter().zip(&repeated_flags) {
                buf.observe(ev, *repeated);
            }
            let s = buf.stats();
            let marker = if entries == 8192 && ways == 4 { "   <- paper Table 10" } else { "" };
            println!(
                "{:<10}{:>8}{:>15.1}%{:>21.1}%{}",
                entries,
                ways,
                s.hit_rate() * 100.0,
                s.repeated_capture_rate() * 100.0,
                marker
            );
        }
    }
    Ok(())
}
