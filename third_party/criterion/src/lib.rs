//! Hermetic in-tree shim for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The workspace builds with **zero external dependencies**, so the real
//! criterion cannot be fetched. This shim keeps `cargo bench` working
//! offline with the same bench sources: it implements benchmark groups,
//! `bench_function`/`bench_with_input`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros, timing each benchmark
//! with `std::time::Instant` and printing a compact report.
//!
//! Compared to the real crate there is no warm-up modeling, outlier
//! analysis, plotting, or statistical regression — each benchmark runs
//! `sample_size` samples (after one untimed warm-up call per sample
//! batch sizing) and reports min/median/mean. Numbers are indicative,
//! not publication grade; swapping back to the real criterion needs no
//! source changes.

use std::time::{Duration, Instant};

/// Re-exported for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, throughput: None }
    }

    /// Ungrouped convenience: benches directly under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name);
        g.bench_function("", f);
        g.finish();
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing throughput annotation.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates subsequent benches with per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().0, &mut |b| f(b));
    }

    /// Runs one benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into().0, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// incremental).
    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        let label = if id.is_empty() { self.name.clone() } else { format!("{}/{}", self.name, id) };
        if samples.is_empty() {
            println!("{label:<44} (no iterations)");
            return;
        }
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12}/s", human_count(n as f64 / median))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12}/s", human_bytes(n as f64 / median))
            }
            None => String::new(),
        };
        println!(
            "{label:<44} median {:>12}  min {:>12}{rate}",
            human_time(median),
            human_time(min),
        );
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.id)
    }
}

/// Passed to each benchmark closure; times the working closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its result alive via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_count(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

fn human_bytes(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} GB", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} MB", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} KB", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} B")
    }
}

/// Declares a bench group: compatible with both the `name/config/targets`
/// form and the plain list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        // 3 samples × (1 warm-up + 1 timed) calls.
        assert_eq!(calls, 6);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_time(2.0), "2.000 s");
        assert_eq!(human_time(2e-3), "2.000 ms");
        assert_eq!(human_time(2e-6), "2.000 µs");
        assert_eq!(human_time(2e-9), "2.0 ns");
        assert_eq!(human_count(5e6), "5.00 M");
        assert_eq!(human_bytes(5e3), "5.00 KB");
    }
}
