//! Hermetic in-tree shim for the [proptest](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The workspace builds with **zero external dependencies** (the build
//! environment has no crates-io access), so the real proptest cannot be
//! fetched. This shim implements the subset of its API the workspace's
//! property tests use — `proptest!`, `Strategy`/`BoxedStrategy`,
//! `prop_map`, `prop_oneof!`, `Just`, `Union`, `any::<T>()`, integer
//! ranges, tuples/arrays of strategies, `collection::vec`, and the
//! `prop_assert*` macros — on top of a seeded xoshiro256** generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the case number; the
//!   run is fully deterministic (seeds derive from the test name), so
//!   re-running reproduces the same failure.
//! * **No persistence files**, forks, or timeouts.
//! * Values are generated uniformly rather than with proptest's biased
//!   distributions (e.g. `any::<i32>()` here is uniform, not
//!   edge-case-weighted).
//!
//! If a future environment has registry access, deleting this crate and
//! restoring `proptest = "1"` in the workspace manifest restores the
//! real engine; the test sources need no changes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-case driver: deterministic RNG plus run configuration.
pub mod runner_impl {
    pub use crate::test_runner::{ProptestConfig, TestRng};

    /// Derives a stable 64-bit seed from a test's name. FNV-1a — the
    /// point is stability across runs and platforms, not quality (the
    /// RNG's SplitMix64 seeding whitens it).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Defines property tests. Supports the real crate's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::runner_impl::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                        seed ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng,
                        );
                    )+
                    // The body sees the bound values; an assertion
                    // failure panics and fails the whole test. `case`
                    // identifies which draw failed (runs are
                    // deterministic, so it is reproducible).
                    let _ = case;
                    $body
                }
            }
        )*
    };
}

/// One strategy chosen uniformly from several (boxed) alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        // The 1-tuple wrap keeps `unused_parens` quiet for arms written
        // as `(2i32..100)` — the real crate's expansion tuples arms with
        // their weights, which has the same effect.
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed(($strat,).0)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
