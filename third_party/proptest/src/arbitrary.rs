//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (uniform, unlike the real crate's
/// edge-case-biased distributions).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_values_cover_both_signs() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = any::<i32>();
        let vals: Vec<i32> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v >= 0));
    }

    #[test]
    fn bools_cover_both_values() {
        let mut rng = TestRng::seed_from_u64(6);
        let vals: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
