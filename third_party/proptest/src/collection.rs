//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_span_the_range() {
        let mut rng = TestRng::seed_from_u64(8);
        let strat = vec(0u8..10, 1..5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            seen[v.len() - 1] = true;
            assert!(v.iter().all(|&e| e < 10));
        }
        assert!(seen.iter().all(|&s| s), "lengths 1..=4 should all occur");
    }

    #[test]
    fn exact_and_inclusive_sizes() {
        let mut rng = TestRng::seed_from_u64(9);
        assert_eq!(vec(0u8..5, 8).generate(&mut rng).len(), 8);
        let v = vec(0u8..5, 2..=3).generate(&mut rng);
        assert!((2..=3).contains(&v.len()));
    }
}
