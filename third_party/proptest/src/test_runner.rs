//! Run configuration and the deterministic generator behind every
//! strategy.

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the real crate's constructor).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching the real crate's default.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// xoshiro256** seeded through SplitMix64. Deterministic per seed; the
/// `proptest!` macro derives the seed from the test's module path and
/// name, so every run of a test generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..bound` (`bound` > 0), Lemire-debiased.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let span = u128::from(bound);
        let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
        loop {
            let x = u128::from(self.next_u64());
            if x <= zone {
                return (x % span) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.below(10), b.below(10));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::seed_from_u64(2);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
