//! The `Strategy` trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate (which separates strategies from value *trees*
/// to support shrinking), a shim strategy simply draws a value from the
/// RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among alternative strategies (`prop_oneof!`'s
/// engine; also constructed directly by tests over `Vec<BoxedStrategy>`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new<I>(options: I) -> Union<T>
    where
        I: IntoIterator<Item = BoxedStrategy<T>>,
    {
        let options: Vec<_> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union::new: no alternatives");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Integer ranges are strategies, e.g. `0u8..32` or `0u32..=0x3ff_ffff`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let v = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuples of strategies generate tuples of values, left to right.
macro_rules! impl_tuple_strategy {
    ($($s:ident / $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Arrays of strategies generate arrays of values, index order.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_tuples_arrays_compose() {
        let mut r = rng();
        let strat = (0u8..4, (-5i32..=5), [0usize..3, 0usize..3]);
        for _ in 0..500 {
            let (a, b, [c, d]) = strat.generate(&mut r);
            assert!(a < 4);
            assert!((-5..=5).contains(&b));
            assert!(c < 3 && d < 3);
        }
    }

    #[test]
    fn map_union_just_and_boxing() {
        let mut r = rng();
        let evens = (0u32..10).prop_map(|v| v * 2).boxed();
        let u = Union::new(vec![evens.clone(), Just(1u32).boxed()]);
        let mut saw_odd = false;
        let mut saw_even = false;
        for _ in 0..200 {
            let v = u.generate(&mut r);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
            saw_odd |= v == 1;
            saw_even |= v % 2 == 0 && v != 1;
        }
        assert!(saw_odd && saw_even, "both union arms should fire");
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut r = rng();
        // Must not overflow or panic.
        let _: u64 = (0u64..=u64::MAX).generate(&mut r);
        let _: i64 = (i64::MIN..=i64::MAX).generate(&mut r);
    }
}
