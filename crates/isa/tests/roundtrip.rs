// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests: every constructible instruction encodes to a word that
//! decodes back to itself, and decodable words re-encode to themselves.

use instrep_isa::{decode, encode, AluOp, BranchOp, ImmOp, Insn, MemOp, MemWidth, Reg, ShiftOp};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu = (0usize..AluOp::ALL.len(), arb_reg(), arb_reg(), arb_reg())
        .prop_map(|(i, rd, rs, rt)| Insn::alu(AluOp::ALL[i], rd, rs, rt));
    let imm = (0usize..ImmOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>())
        .prop_map(|(i, rt, rs, imm)| Insn::imm(ImmOp::ALL[i], rt, rs, imm));
    let shift = (0usize..ShiftOp::ALL.len(), arb_reg(), arb_reg(), 0u8..32)
        .prop_map(|(i, rd, rt, shamt)| Insn::Shift { op: ShiftOp::ALL[i], rd, rt, shamt });
    let lui = (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Insn::Lui { rt, imm });
    let mem = (0usize..MemOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        |(i, rt, base, off)| {
            // Canonical store widths only (sb/sh encode as unsigned-free).
            let op = match MemOp::ALL[i] {
                MemOp::Store(MemWidth::ByteUnsigned) => MemOp::Store(MemWidth::Byte),
                MemOp::Store(MemWidth::HalfUnsigned) => MemOp::Store(MemWidth::Half),
                other => other,
            };
            Insn::Mem { op, rt, base, off }
        },
    );
    let branch = (0usize..BranchOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        |(i, rs, rt, off)| {
            let op = BranchOp::ALL[i];
            let rt = if op.uses_rt() { rt } else { Reg::ZERO };
            Insn::Branch { op, rs, rt, off }
        },
    );
    let jump =
        (any::<bool>(), 0u32..=0x03ff_ffff).prop_map(|(link, target)| Insn::Jump { link, target });
    let jr = arb_reg().prop_map(|rs| Insn::Jr { rs });
    let jalr = (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Insn::Jalr { rd, rs });

    prop_oneof![
        alu,
        imm,
        shift,
        lui,
        mem,
        branch,
        jump,
        jr,
        jalr,
        Just(Insn::Syscall),
        Just(Insn::Break),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(insn in arb_insn()) {
        let word = encode(&insn);
        prop_assert_eq!(decode(word), Ok(insn));
    }

    #[test]
    fn decode_encode_round_trip(word in any::<u32>()) {
        // Not every word decodes, but those that do must re-encode to a
        // word that decodes to the same instruction (encodings may be
        // non-canonical in ignored fields, so compare at the Insn level).
        if let Ok(insn) = decode(word) {
            let canonical = encode(&insn);
            prop_assert_eq!(decode(canonical), Ok(insn));
        }
    }

    #[test]
    fn display_never_panics(insn in arb_insn()) {
        let _ = insn.to_string();
        let _ = format!("{insn:?}");
    }

    #[test]
    fn def_and_uses_are_consistent(insn in arb_insn()) {
        // An instruction never lists the same architectural operand slot
        // twice as both absent and present: uses()[1].is_some() implies a
        // two-operand form.
        let uses = insn.uses();
        if uses[0].is_none() {
            prop_assert!(uses[1].is_none());
        }
    }
}
