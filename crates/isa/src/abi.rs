//! ABI and machine-layout constants shared by the toolchain and simulator.
//!
//! The address-space layout mirrors classic MIPS user programs:
//!
//! ```text
//! 0x0040_0000  text segment (instructions)
//! 0x1000_0000  data segment (globals); gp = data + 0x8000
//! heap         grows upward from the page after the initialized data
//! 0x7fff_f000  stack top, grows downward
//! ```

use crate::reg::Reg;

/// Base address of the text (instruction) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Base address of the data (globals) segment.
pub const DATA_BASE: u32 = 0x1000_0000;

/// Offset of the global pointer within the data segment. Placing `gp` at
/// `DATA_BASE + 0x8000` lets a signed 16-bit displacement address the
/// first 64 KiB of globals in a single instruction.
pub const GP_OFFSET: u32 = 0x8000;

/// Initial value of the `$gp` register.
pub const GP_INIT: u32 = DATA_BASE + GP_OFFSET;

/// Initial value of the `$sp` register (stack grows down).
pub const STACK_TOP: u32 = 0x7fff_f000;

/// Addresses at or above this value belong to the stack region.
pub const STACK_REGION_BASE: u32 = 0x7000_0000;

/// Register carrying the syscall number.
pub const SYSCALL_NUM_REG: Reg = Reg::V0;

/// Register receiving a syscall's result.
pub const SYSCALL_RET_REG: Reg = Reg::V0;

/// Syscall numbers accepted by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// `exit(a0)` — terminate the program with an exit code.
    Exit,
    /// `read(a0=fd, a1=buf, a2=len) -> v0` — read external input bytes.
    Read,
    /// `write(a0=fd, a1=buf, a2=len) -> v0` — write output bytes.
    Write,
    /// `sbrk(a0=delta) -> v0` — grow the heap, returning the old break.
    Sbrk,
}

impl Syscall {
    /// Decodes a syscall number from `$v0`.
    pub fn from_number(n: u32) -> Option<Syscall> {
        match n {
            0 => Some(Syscall::Exit),
            1 => Some(Syscall::Read),
            2 => Some(Syscall::Write),
            3 => Some(Syscall::Sbrk),
            _ => None,
        }
    }

    /// The number a program loads into `$v0` to request this call.
    pub fn number(self) -> u32 {
        match self {
            Syscall::Exit => 0,
            Syscall::Read => 1,
            Syscall::Write => 2,
            Syscall::Sbrk => 3,
        }
    }
}

/// The memory region an address falls in, as seen by the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Text segment (instructions).
    Text,
    /// Initialized or zero-initialized global data.
    Data,
    /// Heap, allocated through `sbrk`.
    Heap,
    /// Stack frames.
    Stack,
    /// Anything else (unmapped).
    Other,
}

/// Classifies an address into a [`Region`] given the current heap break.
///
/// `data_end` is the first address past the static data image; addresses in
/// `[DATA_BASE, data_end)` are [`Region::Data`], `[data_end, brk)` is
/// [`Region::Heap`].
///
/// # Examples
///
/// ```
/// use instrep_isa::abi::{region_of, Region, DATA_BASE, STACK_TOP};
///
/// let data_end = DATA_BASE + 0x1000;
/// let brk = data_end + 0x2000;
/// assert_eq!(region_of(DATA_BASE + 4, data_end, brk), Region::Data);
/// assert_eq!(region_of(data_end + 8, data_end, brk), Region::Heap);
/// assert_eq!(region_of(STACK_TOP - 64, data_end, brk), Region::Stack);
/// ```
pub fn region_of(addr: u32, data_end: u32, brk: u32) -> Region {
    if addr >= STACK_REGION_BASE {
        Region::Stack
    } else if addr >= DATA_BASE {
        if addr < data_end {
            Region::Data
        } else if addr < brk {
            Region::Heap
        } else {
            Region::Other
        }
    } else if addr >= TEXT_BASE {
        Region::Text
    } else {
        Region::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_numbers_round_trip() {
        for s in [Syscall::Exit, Syscall::Read, Syscall::Write, Syscall::Sbrk] {
            assert_eq!(Syscall::from_number(s.number()), Some(s));
        }
        assert_eq!(Syscall::from_number(99), None);
    }

    #[test]
    fn regions() {
        let data_end = DATA_BASE + 0x100;
        let brk = DATA_BASE + 0x2000;
        assert_eq!(region_of(TEXT_BASE, data_end, brk), Region::Text);
        assert_eq!(region_of(DATA_BASE, data_end, brk), Region::Data);
        assert_eq!(region_of(data_end, data_end, brk), Region::Heap);
        assert_eq!(region_of(brk, data_end, brk), Region::Other);
        assert_eq!(region_of(STACK_TOP, data_end, brk), Region::Stack);
        assert_eq!(region_of(0, data_end, brk), Region::Other);
        assert_eq!(region_of(STACK_REGION_BASE, data_end, brk), Region::Stack);
    }

    #[test]
    fn gp_window_covers_first_64k() {
        // gp-32768 == DATA_BASE and gp+32767 is the 64 KiB boundary.
        assert_eq!(GP_INIT - 0x8000, DATA_BASE);
    }
}
