use std::fmt;

use crate::encode::*;
use crate::insn::Insn;
use crate::op::{AluOp, BranchOp, ImmOp, MemOp, MemWidth, ShiftOp};
use crate::reg::Reg;

/// Error returned by [`decode`] for a word that is not a valid
/// instruction encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The undecodable word.
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction encoding {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not correspond to any SRV32
/// instruction (unknown primary opcode, SPECIAL function code, or REGIMM
/// code, or non-canonical field contents).
///
/// # Examples
///
/// ```
/// use instrep_isa::{decode, encode, ImmOp, Insn, Reg};
///
/// let i = Insn::imm(ImmOp::Ori, Reg::T0, Reg::ZERO, 0x123);
/// assert_eq!(decode(encode(&i))?, i);
/// assert!(decode(0xffff_ffff).is_err());
/// # Ok::<(), instrep_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let op = word >> 26;
    let rs = Reg::from_field(word >> 21);
    let rt = Reg::from_field(word >> 16);
    let rd = Reg::from_field(word >> 11);
    let shamt = ((word >> 6) & 0x1f) as u8;
    let imm = (word & 0xffff) as u16 as i16;
    let err = Err(DecodeError { word });

    let insn = match op {
        OP_SPECIAL => {
            let funct = word & 0x3f;
            let alu = |aop| Insn::Alu { op: aop, rd, rs, rt };
            match funct {
                FN_SLL => Insn::Shift { op: ShiftOp::Sll, rd, rt, shamt },
                FN_SRL => Insn::Shift { op: ShiftOp::Srl, rd, rt, shamt },
                FN_SRA => Insn::Shift { op: ShiftOp::Sra, rd, rt, shamt },
                FN_SLLV => alu(AluOp::Sllv),
                FN_SRLV => alu(AluOp::Srlv),
                FN_SRAV => alu(AluOp::Srav),
                FN_JR => Insn::Jr { rs },
                FN_JALR => Insn::Jalr { rd, rs },
                FN_SYSCALL => Insn::Syscall,
                FN_BREAK => Insn::Break,
                FN_MUL => alu(AluOp::Mul),
                FN_DIV => alu(AluOp::Div),
                FN_REM => alu(AluOp::Rem),
                FN_DIVU => alu(AluOp::Divu),
                FN_REMU => alu(AluOp::Remu),
                FN_ADD => alu(AluOp::Add),
                FN_SUB => alu(AluOp::Sub),
                FN_AND => alu(AluOp::And),
                FN_OR => alu(AluOp::Or),
                FN_XOR => alu(AluOp::Xor),
                FN_NOR => alu(AluOp::Nor),
                FN_SLT => alu(AluOp::Slt),
                FN_SLTU => alu(AluOp::Sltu),
                _ => return err,
            }
        }
        OP_REGIMM => {
            let bop = match u32::from(rt.number()) {
                RT_BLTZ => BranchOp::Bltz,
                RT_BGEZ => BranchOp::Bgez,
                _ => return err,
            };
            Insn::Branch { op: bop, rs, rt: Reg::ZERO, off: imm }
        }
        OP_J => Insn::Jump { link: false, target: word & 0x03ff_ffff },
        OP_JAL => Insn::Jump { link: true, target: word & 0x03ff_ffff },
        OP_BEQ => Insn::Branch { op: BranchOp::Beq, rs, rt, off: imm },
        OP_BNE => Insn::Branch { op: BranchOp::Bne, rs, rt, off: imm },
        OP_BLEZ => Insn::Branch { op: BranchOp::Blez, rs, rt: Reg::ZERO, off: imm },
        OP_BGTZ => Insn::Branch { op: BranchOp::Bgtz, rs, rt: Reg::ZERO, off: imm },
        OP_ADDI => Insn::imm(ImmOp::Addi, rt, rs, imm),
        OP_SLTI => Insn::imm(ImmOp::Slti, rt, rs, imm),
        OP_SLTIU => Insn::imm(ImmOp::Sltiu, rt, rs, imm),
        OP_ANDI => Insn::imm(ImmOp::Andi, rt, rs, imm),
        OP_ORI => Insn::imm(ImmOp::Ori, rt, rs, imm),
        OP_XORI => Insn::imm(ImmOp::Xori, rt, rs, imm),
        OP_LUI => Insn::Lui { rt, imm: imm as u16 },
        OP_LB => mem(MemOp::Load(MemWidth::Byte), rt, rs, imm),
        OP_LH => mem(MemOp::Load(MemWidth::Half), rt, rs, imm),
        OP_LW => mem(MemOp::Load(MemWidth::Word), rt, rs, imm),
        OP_LBU => mem(MemOp::Load(MemWidth::ByteUnsigned), rt, rs, imm),
        OP_LHU => mem(MemOp::Load(MemWidth::HalfUnsigned), rt, rs, imm),
        OP_SB => mem(MemOp::Store(MemWidth::Byte), rt, rs, imm),
        OP_SH => mem(MemOp::Store(MemWidth::Half), rt, rs, imm),
        OP_SW => mem(MemOp::Store(MemWidth::Word), rt, rs, imm),
        _ => return err,
    };
    Ok(insn)
}

fn mem(op: MemOp, rt: Reg, base: Reg, off: i16) -> Insn {
    Insn::Mem { op, rt, base, off }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn round_trip(insn: Insn) {
        let w = encode(&insn);
        assert_eq!(decode(w), Ok(insn), "word {w:#010x}");
    }

    #[test]
    fn all_alu_ops_round_trip() {
        for op in AluOp::ALL {
            round_trip(Insn::alu(op, Reg::T3, Reg::S1, Reg::A2));
        }
    }

    #[test]
    fn all_imm_ops_round_trip() {
        for op in ImmOp::ALL {
            for imm in [-32768, -1, 0, 1, 42, 32767] {
                round_trip(Insn::imm(op, Reg::V0, Reg::T9, imm));
            }
        }
    }

    #[test]
    fn all_shift_ops_round_trip() {
        for op in ShiftOp::ALL {
            for shamt in [0u8, 1, 16, 31] {
                round_trip(Insn::Shift { op, rd: Reg::T0, rt: Reg::T1, shamt });
            }
        }
    }

    #[test]
    fn all_mem_ops_round_trip() {
        for op in MemOp::ALL {
            // Stores of sign-extending widths canonicalize; skip them.
            if let MemOp::Store(MemWidth::ByteUnsigned | MemWidth::HalfUnsigned) = op {
                continue;
            }
            round_trip(Insn::Mem { op, rt: Reg::A0, base: Reg::GP, off: -1234 });
        }
    }

    #[test]
    fn all_branches_round_trip() {
        for op in BranchOp::ALL {
            let rt = if op.uses_rt() { Reg::S5 } else { Reg::ZERO };
            round_trip(Insn::Branch { op, rs: Reg::T2, rt, off: -7 });
        }
    }

    #[test]
    fn control_round_trip() {
        round_trip(Insn::Jump { link: false, target: 0x03ff_ffff });
        round_trip(Insn::Jump { link: true, target: 0 });
        round_trip(Insn::Jr { rs: Reg::RA });
        round_trip(Insn::Jalr { rd: Reg::RA, rs: Reg::T9 });
        round_trip(Insn::Syscall);
        round_trip(Insn::Break);
    }

    #[test]
    fn invalid_words_rejected() {
        // Unknown primary opcode.
        assert!(decode(0x3f << 26).is_err());
        // Unknown SPECIAL funct.
        assert!(decode(0x3f).is_err());
        // Unknown REGIMM rt.
        assert!(decode((OP_REGIMM << 26) | (5 << 16)).is_err());
    }

    #[test]
    fn nop_is_sll_zero() {
        assert_eq!(
            decode(0),
            Ok(Insn::Shift { op: ShiftOp::Sll, rd: Reg::ZERO, rt: Reg::ZERO, shamt: 0 })
        );
    }
}
