use std::fmt;
use std::str::FromStr;

/// One of the 32 general-purpose registers.
///
/// The wrapped index is guaranteed to be in `0..32`. Register roles follow
/// the MIPS o32 convention; see the associated constants.
///
/// # Examples
///
/// ```
/// use instrep_isa::Reg;
///
/// assert_eq!(Reg::A0.number(), 4);
/// assert_eq!("$sp".parse::<Reg>()?, Reg::SP);
/// assert_eq!(Reg::S3.name(), "s3");
/// assert!(Reg::S3.is_callee_saved());
/// # Ok::<(), instrep_isa::ParseRegError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Error returned when a register name fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

const NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary (used when expanding pseudo-instructions).
    pub const AT: Reg = Reg(1);
    /// First return-value register.
    pub const V0: Reg = Reg(2);
    /// Second return-value register.
    pub const V1: Reg = Reg(3);
    /// First argument register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved register 0.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg(25);
    /// Reserved for the kernel (unused by generated code).
    pub const K0: Reg = Reg(26);
    /// Reserved for the kernel (unused by generated code).
    pub const K1: Reg = Reg(27);
    /// Global pointer: a runtime constant pointing into the data segment.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer (callee-saved).
    pub const FP: Reg = Reg(30);
    /// Return address, written by `jal`/`jalr`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its architectural number.
    ///
    /// Returns `None` if `n >= 32`.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// Creates a register from the low 5 bits of an encoded field.
    pub(crate) fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The architectural register number in `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The conventional ABI name, without the leading `$`.
    pub fn name(self) -> &'static str {
        NAMES[self.0 as usize]
    }

    /// Whether a called function must preserve this register.
    ///
    /// Covers `s0..s7`, `fp`, `gp`, and `sp`. `ra` is *not* callee-saved in
    /// the ABI sense (a non-leaf function preserves it for itself).
    pub fn is_callee_saved(self) -> bool {
        matches!(self.0, 16..=23 | 28..=30)
    }

    /// Whether this register carries a function argument (`a0..a3`).
    pub fn is_arg(self) -> bool {
        matches!(self.0, 4..=7)
    }

    /// Whether this register carries a return value (`v0` or `v1`).
    pub fn is_return_value(self) -> bool {
        matches!(self.0, 2 | 3)
    }

    /// All 32 registers in architectural order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The argument register for argument position `i`, if it is passed in
    /// a register (positions `0..4`).
    pub fn arg(i: usize) -> Option<Reg> {
        (i < 4).then(|| Reg(4 + i as u8))
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `$name`, `name`, `$N`, or `N` forms (e.g. `$sp`, `t3`, `$7`).
    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        let bare = s.strip_prefix('$').unwrap_or(s);
        if let Some(i) = NAMES.iter().position(|n| *n == bare) {
            return Ok(Reg(i as u8));
        }
        if let Ok(n) = bare.parse::<u8>() {
            if let Some(r) = Reg::new(n) {
                return Ok(r);
            }
        }
        // Alternate spelling used by some MIPS assemblers.
        if bare == "s8" {
            return Ok(Reg::FP);
        }
        Err(ParseRegError { name: s.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::new(r.number()), Some(r));
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
            assert_eq!(format!("${}", r.name()).parse::<Reg>().unwrap(), r);
            assert_eq!(r.number().to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Reg::new(32), None);
        assert!("$blah".parse::<Reg>().is_err());
        assert!("$32".parse::<Reg>().is_err());
    }

    #[test]
    fn abi_roles() {
        assert!(Reg::S0.is_callee_saved());
        assert!(Reg::GP.is_callee_saved());
        assert!(Reg::SP.is_callee_saved());
        assert!(Reg::FP.is_callee_saved());
        assert!(!Reg::T0.is_callee_saved());
        assert!(!Reg::RA.is_callee_saved());
        assert!(Reg::A2.is_arg());
        assert!(!Reg::V0.is_arg());
        assert!(Reg::V1.is_return_value());
        assert_eq!(Reg::arg(0), Some(Reg::A0));
        assert_eq!(Reg::arg(3), Some(Reg::A3));
        assert_eq!(Reg::arg(4), None);
    }

    #[test]
    fn s8_alias() {
        assert_eq!("s8".parse::<Reg>().unwrap(), Reg::FP);
    }
}
