#![warn(missing_docs)]
//! SRV32: a MIPS-like 32-bit load/store instruction set.
//!
//! This crate defines the architectural contract shared by the assembler
//! (`instrep-asm`), the MiniC compiler (`instrep-minicc`), and the
//! functional simulator (`instrep-sim`): the register file and its ABI
//! roles, the instruction forms, and a fixed 32-bit binary encoding.
//!
//! The ISA deliberately mirrors MIPS-1 (the ISA used by the paper this
//! repository reproduces) in every property the repetition analyses
//! observe:
//!
//! * two-source / one-destination register instructions,
//! * 16-bit immediates, so large constants are materialized by
//!   [`Insn::Lui`]` + `[`ImmOp::Ori`] pairs,
//! * a dedicated global pointer register ([`Reg::GP`]) used for
//!   gp-relative global addressing,
//! * MIPS-o32-style argument ([`Reg::A0`]..[`Reg::A3`]), return-value
//!   ([`Reg::V0`]), and callee-saved ([`Reg::S0`]..[`Reg::S7`], [`Reg::FP`])
//!   register roles.
//!
//! Unlike MIPS there are no branch delay slots and multiply/divide write a
//! general register directly (no HI/LO); neither difference is visible to
//! the analyses.
//!
//! # Examples
//!
//! ```
//! use instrep_isa::{decode, encode, AluOp, Insn, Reg};
//!
//! let insn = Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1);
//! let word = encode(&insn);
//! assert_eq!(decode(word), Ok(insn));
//! ```

pub mod abi;
mod decode;
mod encode;
mod insn;
mod op;
mod reg;

pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use insn::Insn;
pub use op::{AluOp, BranchOp, ImmOp, MemOp, MemWidth, ShiftOp};
pub use reg::{ParseRegError, Reg};

/// Size of one instruction in bytes. All instructions are fixed-width.
pub const INSN_BYTES: u32 = 4;
