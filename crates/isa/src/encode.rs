use crate::insn::Insn;
use crate::op::{AluOp, BranchOp, ImmOp, MemOp, MemWidth, ShiftOp};
use crate::reg::Reg;

// Primary opcodes (bits 31..26).
pub(crate) const OP_SPECIAL: u32 = 0x00;
pub(crate) const OP_REGIMM: u32 = 0x01;
pub(crate) const OP_J: u32 = 0x02;
pub(crate) const OP_JAL: u32 = 0x03;
pub(crate) const OP_BEQ: u32 = 0x04;
pub(crate) const OP_BNE: u32 = 0x05;
pub(crate) const OP_BLEZ: u32 = 0x06;
pub(crate) const OP_BGTZ: u32 = 0x07;
pub(crate) const OP_ADDI: u32 = 0x08;
pub(crate) const OP_SLTI: u32 = 0x0a;
pub(crate) const OP_SLTIU: u32 = 0x0b;
pub(crate) const OP_ANDI: u32 = 0x0c;
pub(crate) const OP_ORI: u32 = 0x0d;
pub(crate) const OP_XORI: u32 = 0x0e;
pub(crate) const OP_LUI: u32 = 0x0f;
pub(crate) const OP_LB: u32 = 0x20;
pub(crate) const OP_LH: u32 = 0x21;
pub(crate) const OP_LW: u32 = 0x23;
pub(crate) const OP_LBU: u32 = 0x24;
pub(crate) const OP_LHU: u32 = 0x25;
pub(crate) const OP_SB: u32 = 0x28;
pub(crate) const OP_SH: u32 = 0x29;
pub(crate) const OP_SW: u32 = 0x2b;

// SPECIAL function codes (bits 5..0).
pub(crate) const FN_SLL: u32 = 0x00;
pub(crate) const FN_SRL: u32 = 0x02;
pub(crate) const FN_SRA: u32 = 0x03;
pub(crate) const FN_SLLV: u32 = 0x04;
pub(crate) const FN_SRLV: u32 = 0x06;
pub(crate) const FN_SRAV: u32 = 0x07;
pub(crate) const FN_JR: u32 = 0x08;
pub(crate) const FN_JALR: u32 = 0x09;
pub(crate) const FN_SYSCALL: u32 = 0x0c;
pub(crate) const FN_BREAK: u32 = 0x0d;
pub(crate) const FN_MUL: u32 = 0x18;
pub(crate) const FN_DIV: u32 = 0x1a;
pub(crate) const FN_REM: u32 = 0x1b;
pub(crate) const FN_DIVU: u32 = 0x1c;
pub(crate) const FN_REMU: u32 = 0x1d;
pub(crate) const FN_ADD: u32 = 0x20;
pub(crate) const FN_SUB: u32 = 0x22;
pub(crate) const FN_AND: u32 = 0x24;
pub(crate) const FN_OR: u32 = 0x25;
pub(crate) const FN_XOR: u32 = 0x26;
pub(crate) const FN_NOR: u32 = 0x27;
pub(crate) const FN_SLT: u32 = 0x2a;
pub(crate) const FN_SLTU: u32 = 0x2b;

// REGIMM rt codes.
pub(crate) const RT_BLTZ: u32 = 0x00;
pub(crate) const RT_BGEZ: u32 = 0x01;

pub(crate) fn alu_funct(op: AluOp) -> u32 {
    match op {
        AluOp::Add => FN_ADD,
        AluOp::Sub => FN_SUB,
        AluOp::And => FN_AND,
        AluOp::Or => FN_OR,
        AluOp::Xor => FN_XOR,
        AluOp::Nor => FN_NOR,
        AluOp::Slt => FN_SLT,
        AluOp::Sltu => FN_SLTU,
        AluOp::Sllv => FN_SLLV,
        AluOp::Srlv => FN_SRLV,
        AluOp::Srav => FN_SRAV,
        AluOp::Mul => FN_MUL,
        AluOp::Div => FN_DIV,
        AluOp::Rem => FN_REM,
        AluOp::Divu => FN_DIVU,
        AluOp::Remu => FN_REMU,
    }
}

pub(crate) fn imm_opcode(op: ImmOp) -> u32 {
    match op {
        ImmOp::Addi => OP_ADDI,
        ImmOp::Slti => OP_SLTI,
        ImmOp::Sltiu => OP_SLTIU,
        ImmOp::Andi => OP_ANDI,
        ImmOp::Ori => OP_ORI,
        ImmOp::Xori => OP_XORI,
    }
}

pub(crate) fn mem_opcode(op: MemOp) -> u32 {
    match op {
        MemOp::Load(MemWidth::Byte) => OP_LB,
        MemOp::Load(MemWidth::ByteUnsigned) => OP_LBU,
        MemOp::Load(MemWidth::Half) => OP_LH,
        MemOp::Load(MemWidth::HalfUnsigned) => OP_LHU,
        MemOp::Load(MemWidth::Word) => OP_LW,
        MemOp::Store(MemWidth::Byte | MemWidth::ByteUnsigned) => OP_SB,
        MemOp::Store(MemWidth::Half | MemWidth::HalfUnsigned) => OP_SH,
        MemOp::Store(MemWidth::Word) => OP_SW,
    }
}

fn r(op: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u32, funct: u32) -> u32 {
    (op << 26)
        | (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | (u32::from(rd.number()) << 11)
        | ((shamt & 0x1f) << 6)
        | (funct & 0x3f)
}

fn i(op: u32, rs: Reg, rt: Reg, imm: u32) -> u32 {
    (op << 26) | (u32::from(rs.number()) << 21) | (u32::from(rt.number()) << 16) | (imm & 0xffff)
}

/// Encodes an instruction to its 32-bit binary form.
///
/// Every [`Insn`] has exactly one encoding; [`crate::decode`] inverts it.
///
/// # Examples
///
/// ```
/// use instrep_isa::{encode, decode, Insn, Reg};
///
/// let jr_ra = Insn::Jr { rs: Reg::RA };
/// assert_eq!(decode(encode(&jr_ra)), Ok(jr_ra));
/// ```
pub fn encode(insn: &Insn) -> u32 {
    match *insn {
        Insn::Alu { op, rd, rs, rt } => r(OP_SPECIAL, rs, rt, rd, 0, alu_funct(op)),
        Insn::Imm { op, rt, rs, imm } => i(imm_opcode(op), rs, rt, imm as u16 as u32),
        Insn::Shift { op, rd, rt, shamt } => {
            let funct = match op {
                ShiftOp::Sll => FN_SLL,
                ShiftOp::Srl => FN_SRL,
                ShiftOp::Sra => FN_SRA,
            };
            r(OP_SPECIAL, Reg::ZERO, rt, rd, u32::from(shamt), funct)
        }
        Insn::Lui { rt, imm } => i(OP_LUI, Reg::ZERO, rt, u32::from(imm)),
        Insn::Mem { op, rt, base, off } => i(mem_opcode(op), base, rt, off as u16 as u32),
        Insn::Branch { op, rs, rt, off } => {
            let off = off as u16 as u32;
            match op {
                BranchOp::Beq => i(OP_BEQ, rs, rt, off),
                BranchOp::Bne => i(OP_BNE, rs, rt, off),
                BranchOp::Blez => i(OP_BLEZ, rs, Reg::ZERO, off),
                BranchOp::Bgtz => i(OP_BGTZ, rs, Reg::ZERO, off),
                BranchOp::Bltz => i(OP_REGIMM, rs, Reg::from_field(RT_BLTZ), off),
                BranchOp::Bgez => i(OP_REGIMM, rs, Reg::from_field(RT_BGEZ), off),
            }
        }
        Insn::Jump { link, target } => {
            let op = if link { OP_JAL } else { OP_J };
            (op << 26) | (target & 0x03ff_ffff)
        }
        Insn::Jr { rs } => r(OP_SPECIAL, rs, Reg::ZERO, Reg::ZERO, 0, FN_JR),
        Insn::Jalr { rd, rs } => r(OP_SPECIAL, rs, Reg::ZERO, rd, 0, FN_JALR),
        Insn::Syscall => FN_SYSCALL,
        Insn::Break => FN_BREAK,
    }
}
