use std::fmt;

/// Three-register ALU operations (`op rd, rs, rt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rs + rt` (wrapping).
    Add,
    /// `rd = rs - rt` (wrapping).
    Sub,
    /// `rd = rs & rt`.
    And,
    /// `rd = rs | rt`.
    Or,
    /// `rd = rs ^ rt`.
    Xor,
    /// `rd = !(rs | rt)`.
    Nor,
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt,
    /// `rd = rs < rt` (unsigned).
    Sltu,
    /// `rd = rt << (rs & 31)`.
    Sllv,
    /// `rd = rt >> (rs & 31)` (logical).
    Srlv,
    /// `rd = (rt as i32) >> (rs & 31)` (arithmetic).
    Srav,
    /// `rd = rs * rt` (wrapping, low 32 bits).
    Mul,
    /// `rd = (rs as i32) / (rt as i32)`; traps on division by zero.
    Div,
    /// `rd = (rs as i32) % (rt as i32)`; traps on division by zero.
    Rem,
    /// `rd = rs / rt` (unsigned); traps on division by zero.
    Divu,
    /// `rd = rs % rt` (unsigned); traps on division by zero.
    Remu,
}

impl AluOp {
    /// All ALU operations, for exhaustive testing.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sllv,
        AluOp::Srlv,
        AluOp::Srav,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Divu,
        AluOp::Remu,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sllv => "sllv",
            AluOp::Srlv => "srlv",
            AluOp::Srav => "srav",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
        }
    }

    /// Applies the operation to two operand values.
    ///
    /// Returns `None` for division or remainder by zero (the simulator
    /// turns this into a trap).
    pub fn apply(self, rs: u32, rt: u32) -> Option<u32> {
        Some(match self {
            AluOp::Add => rs.wrapping_add(rt),
            AluOp::Sub => rs.wrapping_sub(rt),
            AluOp::And => rs & rt,
            AluOp::Or => rs | rt,
            AluOp::Xor => rs ^ rt,
            AluOp::Nor => !(rs | rt),
            AluOp::Slt => ((rs as i32) < (rt as i32)) as u32,
            AluOp::Sltu => (rs < rt) as u32,
            AluOp::Sllv => rt << (rs & 31),
            AluOp::Srlv => rt >> (rs & 31),
            AluOp::Srav => ((rt as i32) >> (rs & 31)) as u32,
            AluOp::Mul => rs.wrapping_mul(rt),
            AluOp::Div => {
                if rt == 0 {
                    return None;
                }
                (rs as i32).wrapping_div(rt as i32) as u32
            }
            AluOp::Rem => {
                if rt == 0 {
                    return None;
                }
                (rs as i32).wrapping_rem(rt as i32) as u32
            }
            AluOp::Divu => {
                if rt == 0 {
                    return None;
                }
                rs / rt
            }
            AluOp::Remu => {
                if rt == 0 {
                    return None;
                }
                rs % rt
            }
        })
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Register-immediate operations (`op rt, rs, imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmOp {
    /// `rt = rs + sext(imm)` (wrapping; no overflow trap, like MIPS addiu).
    Addi,
    /// `rt = (rs as i32) < sext(imm)`.
    Slti,
    /// `rt = rs < sext(imm) as u32` (unsigned compare of sign-extended imm).
    Sltiu,
    /// `rt = rs & zext(imm)`.
    Andi,
    /// `rt = rs | zext(imm)`.
    Ori,
    /// `rt = rs ^ zext(imm)`.
    Xori,
}

impl ImmOp {
    /// All immediate operations, for exhaustive testing.
    pub const ALL: [ImmOp; 6] =
        [ImmOp::Addi, ImmOp::Slti, ImmOp::Sltiu, ImmOp::Andi, ImmOp::Ori, ImmOp::Xori];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ImmOp::Addi => "addi",
            ImmOp::Slti => "slti",
            ImmOp::Sltiu => "sltiu",
            ImmOp::Andi => "andi",
            ImmOp::Ori => "ori",
            ImmOp::Xori => "xori",
        }
    }

    /// Whether the 16-bit immediate is sign-extended (versus zero-extended).
    pub fn sign_extends(self) -> bool {
        matches!(self, ImmOp::Addi | ImmOp::Slti | ImmOp::Sltiu)
    }

    /// The operand value the 16-bit immediate contributes.
    pub fn extend(self, imm: i16) -> u32 {
        if self.sign_extends() {
            imm as i32 as u32
        } else {
            imm as u16 as u32
        }
    }

    /// Applies the operation to a register value and a raw 16-bit immediate.
    pub fn apply(self, rs: u32, imm: i16) -> u32 {
        let v = self.extend(imm);
        match self {
            ImmOp::Addi => rs.wrapping_add(v),
            ImmOp::Slti => ((rs as i32) < (v as i32)) as u32,
            ImmOp::Sltiu => (rs < v) as u32,
            ImmOp::Andi => rs & v,
            ImmOp::Ori => rs | v,
            ImmOp::Xori => rs ^ v,
        }
    }
}

impl fmt::Display for ImmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Constant-shift operations (`op rd, rt, shamt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
}

impl ShiftOp {
    /// All shift operations, for exhaustive testing.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        }
    }

    /// Applies the shift to a value.
    pub fn apply(self, rt: u32, shamt: u8) -> u32 {
        let s = u32::from(shamt & 31);
        match self {
            ShiftOp::Sll => rt << s,
            ShiftOp::Srl => rt >> s,
            ShiftOp::Sra => ((rt as i32) >> s) as u32,
        }
    }
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Width and extension behaviour of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte, sign-extended on load.
    Byte,
    /// One byte, zero-extended on load.
    ByteUnsigned,
    /// Two bytes, sign-extended on load.
    Half,
    /// Two bytes, zero-extended on load.
    HalfUnsigned,
    /// Four bytes.
    Word,
}

impl MemWidth {
    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte | MemWidth::ByteUnsigned => 1,
            MemWidth::Half | MemWidth::HalfUnsigned => 2,
            MemWidth::Word => 4,
        }
    }

    /// Extends a raw loaded value of this width to 32 bits.
    pub fn extend(self, raw: u32) -> u32 {
        match self {
            MemWidth::Byte => raw as u8 as i8 as i32 as u32,
            MemWidth::ByteUnsigned => raw as u8 as u32,
            MemWidth::Half => raw as u16 as i16 as i32 as u32,
            MemWidth::HalfUnsigned => raw as u16 as u32,
            MemWidth::Word => raw,
        }
    }
}

/// Memory operations (`op rt, off(base)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load of the given width into `rt`.
    Load(MemWidth),
    /// Store of the given width from `rt`. Stores never use the
    /// sign-extending widths; the assembler only emits `Byte`, `Half`,
    /// `Word`.
    Store(MemWidth),
}

impl MemOp {
    /// All memory operations the assembler can emit.
    pub const ALL: [MemOp; 8] = [
        MemOp::Load(MemWidth::Byte),
        MemOp::Load(MemWidth::ByteUnsigned),
        MemOp::Load(MemWidth::Half),
        MemOp::Load(MemWidth::HalfUnsigned),
        MemOp::Load(MemWidth::Word),
        MemOp::Store(MemWidth::Byte),
        MemOp::Store(MemWidth::Half),
        MemOp::Store(MemWidth::Word),
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Load(MemWidth::Byte) => "lb",
            MemOp::Load(MemWidth::ByteUnsigned) => "lbu",
            MemOp::Load(MemWidth::Half) => "lh",
            MemOp::Load(MemWidth::HalfUnsigned) => "lhu",
            MemOp::Load(MemWidth::Word) => "lw",
            MemOp::Store(MemWidth::Byte | MemWidth::ByteUnsigned) => "sb",
            MemOp::Store(MemWidth::Half | MemWidth::HalfUnsigned) => "sh",
            MemOp::Store(MemWidth::Word) => "sw",
        }
    }

    /// Whether this is a load.
    pub fn is_load(self) -> bool {
        matches!(self, MemOp::Load(_))
    }

    /// The access width.
    pub fn width(self) -> MemWidth {
        match self {
            MemOp::Load(w) | MemOp::Store(w) => w,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditional branches. `Beq`/`Bne` compare two registers; the rest
/// compare `rs` against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Taken when `rs == rt`.
    Beq,
    /// Taken when `rs != rt`.
    Bne,
    /// Taken when `rs <= 0` (signed).
    Blez,
    /// Taken when `rs > 0` (signed).
    Bgtz,
    /// Taken when `rs < 0` (signed).
    Bltz,
    /// Taken when `rs >= 0` (signed).
    Bgez,
}

impl BranchOp {
    /// All branch operations, for exhaustive testing.
    pub const ALL: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blez,
        BranchOp::Bgtz,
        BranchOp::Bltz,
        BranchOp::Bgez,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blez => "blez",
            BranchOp::Bgtz => "bgtz",
            BranchOp::Bltz => "bltz",
            BranchOp::Bgez => "bgez",
        }
    }

    /// Whether the branch reads a second register operand.
    pub fn uses_rt(self) -> bool {
        matches!(self, BranchOp::Beq | BranchOp::Bne)
    }

    /// Evaluates the branch condition.
    pub fn taken(self, rs: u32, rt: u32) -> bool {
        match self {
            BranchOp::Beq => rs == rt,
            BranchOp::Bne => rs != rt,
            BranchOp::Blez => (rs as i32) <= 0,
            BranchOp::Bgtz => (rs as i32) > 0,
            BranchOp::Bltz => (rs as i32) < 0,
            BranchOp::Bgez => (rs as i32) >= 0,
        }
    }
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), Some(0));
        assert_eq!(AluOp::Sub.apply(0, 1), Some(u32::MAX));
        assert_eq!(AluOp::Slt.apply((-1i32) as u32, 0), Some(1));
        assert_eq!(AluOp::Sltu.apply((-1i32) as u32, 0), Some(0));
        assert_eq!(AluOp::Nor.apply(0, 0), Some(u32::MAX));
        assert_eq!(AluOp::Sllv.apply(33, 1), Some(2)); // shift amount masked
        assert_eq!(AluOp::Srav.apply(1, 0x8000_0000), Some(0xc000_0000));
        assert_eq!(AluOp::Div.apply(7, 0), None);
        assert_eq!(AluOp::Rem.apply(7, 0), None);
        assert_eq!(AluOp::Div.apply((-7i32) as u32, 2), Some((-3i32) as u32));
        assert_eq!(AluOp::Rem.apply((-7i32) as u32, 2), Some((-1i32) as u32));
        assert_eq!(AluOp::Divu.apply((-7i32) as u32, 2), Some(0x7fff_fffc));
        // i32::MIN / -1 must not panic.
        assert_eq!(AluOp::Div.apply(0x8000_0000, u32::MAX), Some(0x8000_0000));
        assert_eq!(AluOp::Rem.apply(0x8000_0000, u32::MAX), Some(0));
    }

    #[test]
    fn imm_extension() {
        assert_eq!(ImmOp::Addi.apply(10, -1), 9);
        assert_eq!(ImmOp::Ori.apply(0, -1), 0xffff); // zero-extended
        assert_eq!(ImmOp::Andi.apply(0xffff_ffff, -1), 0xffff);
        assert_eq!(ImmOp::Xori.apply(0xffff, -1), 0);
        assert_eq!(ImmOp::Slti.apply(0, -5), 0);
        assert_eq!(ImmOp::Slti.apply((-6i32) as u32, -5), 1);
        // sltiu compares against the sign-EXTENDED immediate, unsigned.
        assert_eq!(ImmOp::Sltiu.apply(5, -1), 1);
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(ShiftOp::Sll.apply(1, 31), 0x8000_0000);
        assert_eq!(ShiftOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(ShiftOp::Sra.apply(0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn mem_widths() {
        assert_eq!(MemWidth::Byte.extend(0x80), 0xffff_ff80);
        assert_eq!(MemWidth::ByteUnsigned.extend(0x80), 0x80);
        assert_eq!(MemWidth::Half.extend(0x8000), 0xffff_8000);
        assert_eq!(MemWidth::HalfUnsigned.extend(0x8000), 0x8000);
        assert_eq!(MemWidth::Word.extend(0xdead_beef), 0xdead_beef);
        assert!(MemOp::Load(MemWidth::Word).is_load());
        assert!(!MemOp::Store(MemWidth::Byte).is_load());
    }

    #[test]
    fn branch_conditions() {
        let neg = (-1i32) as u32;
        assert!(BranchOp::Beq.taken(3, 3));
        assert!(!BranchOp::Beq.taken(3, 4));
        assert!(BranchOp::Bne.taken(3, 4));
        assert!(BranchOp::Blez.taken(0, 0));
        assert!(BranchOp::Blez.taken(neg, 0));
        assert!(!BranchOp::Bgtz.taken(0, 0));
        assert!(BranchOp::Bgtz.taken(1, 0));
        assert!(BranchOp::Bltz.taken(neg, 0));
        assert!(!BranchOp::Bltz.taken(0, 0));
        assert!(BranchOp::Bgez.taken(0, 0));
        assert!(!BranchOp::Bgez.taken(neg, 0));
        assert!(BranchOp::Beq.uses_rt());
        assert!(!BranchOp::Bgez.uses_rt());
    }
}
