use std::fmt;

use crate::op::{AluOp, BranchOp, ImmOp, MemOp, ShiftOp};
use crate::reg::Reg;

/// A decoded SRV32 instruction.
///
/// Every variant lists its operand registers explicitly so that tooling
/// (simulator, analyses, disassembler) can reason about dataflow without
/// re-decoding bit fields. Use [`crate::encode`] / [`crate::decode`] to
/// convert to and from the 32-bit binary form.
///
/// # Examples
///
/// ```
/// use instrep_isa::{AluOp, Insn, Reg};
///
/// let i = Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1);
/// assert_eq!(i.to_string(), "add $v0, $a0, $a1");
/// assert_eq!(i.def(), Some(Reg::V0));
/// assert_eq!(i.uses(), [Some(Reg::A0), Some(Reg::A1)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand roles follow the MIPS field names (rd/rs/rt/imm)
pub enum Insn {
    /// Three-register ALU operation: `rd = op(rs, rt)`.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// Register-immediate operation: `rt = op(rs, imm)`.
    Imm { op: ImmOp, rt: Reg, rs: Reg, imm: i16 },
    /// Constant shift: `rd = op(rt, shamt)`.
    Shift { op: ShiftOp, rd: Reg, rt: Reg, shamt: u8 },
    /// Load upper immediate: `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// Load or store: `rt <-> mem[base + off]`.
    Mem { op: MemOp, rt: Reg, base: Reg, off: i16 },
    /// Conditional branch to `pc + 4 + off*4`.
    Branch { op: BranchOp, rs: Reg, rt: Reg, off: i16 },
    /// Unconditional jump to an absolute word index (26 bits); `link`
    /// writes the return address to `$ra` (this is `jal`).
    Jump { link: bool, target: u32 },
    /// Indirect jump to the address in `rs`.
    Jr { rs: Reg },
    /// Indirect call: jump to `rs`, return address written to `rd`.
    Jalr { rd: Reg, rs: Reg },
    /// Environment call; the call number and arguments are read from
    /// registers per [`crate::abi`].
    Syscall,
    /// Trap instruction; halts simulation with an error.
    Break,
}

impl Insn {
    /// Convenience constructor for an ALU instruction.
    pub fn alu(op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> Insn {
        Insn::Alu { op, rd, rs, rt }
    }

    /// Convenience constructor for a register-immediate instruction.
    pub fn imm(op: ImmOp, rt: Reg, rs: Reg, imm: i16) -> Insn {
        Insn::Imm { op, rt, rs, imm }
    }

    /// The register this instruction writes, if any.
    ///
    /// Writes to `$zero` are still reported; the register file discards
    /// them.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Insn::Alu { rd, .. } | Insn::Shift { rd, .. } | Insn::Jalr { rd, .. } => Some(rd),
            Insn::Imm { rt, .. } | Insn::Lui { rt, .. } => Some(rt),
            Insn::Mem { op, rt, .. } => op.is_load().then_some(rt),
            Insn::Jump { link: true, .. } => Some(Reg::RA),
            Insn::Branch { .. }
            | Insn::Jump { link: false, .. }
            | Insn::Jr { .. }
            | Insn::Syscall
            | Insn::Break => None,
        }
    }

    /// The up-to-two register operands this instruction reads, in operand
    /// order. Absent operands are `None`.
    pub fn uses(&self) -> [Option<Reg>; 2] {
        match *self {
            Insn::Alu { rs, rt, .. } => [Some(rs), Some(rt)],
            Insn::Imm { rs, .. } => [Some(rs), None],
            Insn::Shift { rt, .. } => [Some(rt), None],
            Insn::Lui { .. } | Insn::Jump { .. } | Insn::Syscall | Insn::Break => [None, None],
            Insn::Mem { op, rt, base, .. } => {
                if op.is_load() {
                    [Some(base), None]
                } else {
                    [Some(base), Some(rt)]
                }
            }
            Insn::Branch { op, rs, rt, .. } => {
                if op.uses_rt() {
                    [Some(rs), Some(rt)]
                } else {
                    [Some(rs), None]
                }
            }
            Insn::Jr { rs } | Insn::Jalr { rs, .. } => [Some(rs), None],
        }
    }

    /// Whether this is a control-transfer instruction (branch, jump,
    /// indirect jump or call).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Branch { .. } | Insn::Jump { .. } | Insn::Jr { .. } | Insn::Jalr { .. }
        )
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Mem { op, .. } if op.is_load())
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::Mem { op, .. } if !op.is_load())
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Alu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Insn::Imm { op, rt, rs, imm } => write!(f, "{op} {rt}, {rs}, {imm}"),
            Insn::Shift { op, rd, rt, shamt } => write!(f, "{op} {rd}, {rt}, {shamt}"),
            Insn::Lui { rt, imm } => write!(f, "lui {rt}, {:#x}", imm),
            Insn::Mem { op, rt, base, off } => write!(f, "{op} {rt}, {off}({base})"),
            Insn::Branch { op, rs, rt, off } => {
                if op.uses_rt() {
                    write!(f, "{op} {rs}, {rt}, {off}")
                } else {
                    write!(f, "{op} {rs}, {off}")
                }
            }
            Insn::Jump { link, target } => {
                write!(f, "{} {:#x}", if link { "jal" } else { "j" }, target << 2)
            }
            Insn::Jr { rs } => write!(f, "jr {rs}"),
            Insn::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Insn::Syscall => f.write_str("syscall"),
            Insn::Break => f.write_str("break"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemWidth;

    #[test]
    fn def_use_sets() {
        let lw = Insn::Mem { op: MemOp::Load(MemWidth::Word), rt: Reg::T0, base: Reg::SP, off: 8 };
        assert_eq!(lw.def(), Some(Reg::T0));
        assert_eq!(lw.uses(), [Some(Reg::SP), None]);
        assert!(lw.is_load());
        assert!(!lw.is_store());

        let sw = Insn::Mem { op: MemOp::Store(MemWidth::Word), rt: Reg::T0, base: Reg::SP, off: 8 };
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses(), [Some(Reg::SP), Some(Reg::T0)]);
        assert!(sw.is_store());

        let jal = Insn::Jump { link: true, target: 0x100 };
        assert_eq!(jal.def(), Some(Reg::RA));
        assert!(jal.is_control());

        let beq = Insn::Branch { op: BranchOp::Beq, rs: Reg::A0, rt: Reg::A1, off: -4 };
        assert_eq!(beq.uses(), [Some(Reg::A0), Some(Reg::A1)]);
        let bgez = Insn::Branch { op: BranchOp::Bgez, rs: Reg::A0, rt: Reg::ZERO, off: 2 };
        assert_eq!(bgez.uses(), [Some(Reg::A0), None]);

        assert_eq!(Insn::Syscall.def(), None);
        assert_eq!(Insn::Syscall.uses(), [None, None]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1).to_string(),
            "add $v0, $a0, $a1"
        );
        assert_eq!(Insn::imm(ImmOp::Addi, Reg::SP, Reg::SP, -32).to_string(), "addi $sp, $sp, -32");
        assert_eq!(Insn::Lui { rt: Reg::T0, imm: 0x1000 }.to_string(), "lui $t0, 0x1000");
        assert_eq!(Insn::Jump { link: false, target: 4 }.to_string(), "j 0x10");
        assert_eq!(Insn::Jr { rs: Reg::RA }.to_string(), "jr $ra");
    }
}
