// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests checking the analyses against naive reference models.

use std::collections::{HashMap, HashSet};

use instrep_core::{
    Coverage, LastValuePredictor, RepetitionTracker, ReuseBuffer, ReuseConfig, TrackerConfig,
};
use instrep_isa::{AluOp, Insn, Reg};
use instrep_sim::Event;
use proptest::prelude::*;

fn ev(index: u32, in1: u32, in2: u32, out: u32) -> Event {
    Event {
        pc: 0x40_0000 + index * 4,
        index,
        insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
        in1,
        in2,
        out: Some(out),
        mem: None,
        ctrl: None,
    }
}

/// Small value domains force collisions (repetitions) to actually occur.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u32..6, 0u32..4, 0u32..4, 0u32..4), 1..400)
        .prop_map(|v| v.into_iter().map(|(i, a, b, o)| ev(i, a, b, o)).collect())
}

proptest! {
    #[test]
    fn tracker_matches_naive_model(events in arb_events()) {
        let statics = 8;
        let mut tracker = RepetitionTracker::new(TrackerConfig::default(), statics);
        // Reference: per static instruction, the set of seen instances.
        let mut seen: Vec<HashSet<(u32, u32, u32)>> = vec![HashSet::new(); statics];
        let mut repeated_total = 0u64;
        for e in &events {
            let key = (e.in1, e.in2, e.out.unwrap());
            let expect = !seen[e.index as usize].insert(key);
            let got = tracker.observe(e);
            prop_assert_eq!(got, expect);
            repeated_total += u64::from(expect);
        }
        prop_assert_eq!(tracker.dynamic_total(), events.len() as u64);
        prop_assert_eq!(tracker.dynamic_repeated(), repeated_total);
        // Unique repeatable instances == distinct keys seen at least twice.
        let mut counts: HashMap<(u32, (u32, u32, u32)), u64> = HashMap::new();
        for e in &events {
            *counts.entry((e.index, (e.in1, e.in2, e.out.unwrap()))).or_insert(0) += 1;
        }
        let uris = counts.values().filter(|&&c| c >= 2).count() as u64;
        prop_assert_eq!(tracker.unique_repeatable_instances(), uris);
        // Coverage over instances must total the repeated count.
        let cov = Coverage::new(tracker.instance_repeat_counts());
        prop_assert_eq!(cov.total(), tracker.dynamic_repeated());
    }

    #[test]
    fn capped_tracker_is_conservative(events in arb_events(), cap in 1usize..4) {
        // A smaller buffer can only classify FEWER instructions repeated.
        let mut full = RepetitionTracker::new(TrackerConfig::default(), 8);
        let mut capped = RepetitionTracker::new(TrackerConfig { max_instances: cap }, 8);
        for e in &events {
            let f = full.observe(e);
            let c = capped.observe(e);
            prop_assert!(!c || f, "capped tracker found repetition the full one missed");
        }
        prop_assert!(capped.dynamic_repeated() <= full.dynamic_repeated());
    }

    #[test]
    fn fully_associative_reuse_buffer_matches_reference(events in arb_events()) {
        // With one set the buffer is fully associative; with capacity
        // beyond the working set it never evicts, so a hit occurs exactly
        // when (pc, inputs) was seen and its last outcome matches.
        let mut buf = ReuseBuffer::new(ReuseConfig { entries: 4096, ways: 4096 });
        let mut model: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for e in &events {
            let key = (e.pc, e.in1, e.in2);
            let out = e.out.unwrap();
            let expect = model.get(&key) == Some(&out);
            let got = buf.observe(e, false);
            prop_assert_eq!(got, expect);
            model.insert(key, out);
        }
    }

    #[test]
    fn last_value_predictor_matches_reference(events in arb_events()) {
        let mut p = LastValuePredictor::new();
        let mut last: HashMap<u32, u32> = HashMap::new();
        for e in &events {
            let out = e.out.unwrap();
            let expect = last.get(&e.index) == Some(&out);
            prop_assert_eq!(p.observe(e, false), expect);
            last.insert(e.index, out);
        }
        prop_assert_eq!(p.stats().predictable, events.len() as u64);
    }

    #[test]
    fn coverage_is_sound(weights in proptest::collection::vec(0u64..1000, 1..100)) {
        let cov = Coverage::new(weights.clone());
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(cov.total(), total);
        // coverage_at is monotone in the item fraction.
        let mut prev = 0.0;
        for i in 0..=10 {
            let c = cov.coverage_at(i as f64 / 10.0);
            prop_assert!(c + 1e-12 >= prev);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
        // items_needed inverts coverage_at within rounding.
        if total > 0 {
            for target in [0.25, 0.5, 0.9] {
                let frac = cov.items_needed(target);
                prop_assert!(cov.coverage_at(frac) >= target - 1e-9);
            }
        }
    }
}
