// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests checking the analyses against naive reference models.

use std::collections::{HashMap, HashSet};

use instrep_core::{
    AnalysisConfig, AnalysisJob, Coverage, InstructionProfile, ProfileReport, RepetitionTracker,
    ReuseBuffer, ReuseConfig, Session, TrackerConfig, ValuePredictors,
};
use instrep_isa::{AluOp, Insn, Reg};
use instrep_sim::Event;
use proptest::prelude::*;

fn ev(index: u32, in1: u32, in2: u32, out: u32) -> Event {
    Event {
        pc: 0x40_0000 + index * 4,
        index,
        insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
        in1,
        in2,
        out: Some(out),
        mem: None,
        ctrl: None,
    }
}

/// Small value domains force collisions (repetitions) to actually occur.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u32..6, 0u32..4, 0u32..4, 0u32..4), 1..400)
        .prop_map(|v| v.into_iter().map(|(i, a, b, o)| ev(i, a, b, o)).collect())
}

proptest! {
    #[test]
    fn tracker_matches_naive_model(events in arb_events()) {
        let statics = 8;
        let mut tracker = RepetitionTracker::new(TrackerConfig::default(), statics);
        // Reference: per static instruction, the set of seen instances.
        let mut seen: Vec<HashSet<(u32, u32, u32)>> = vec![HashSet::new(); statics];
        let mut repeated_total = 0u64;
        for e in &events {
            let key = (e.in1, e.in2, e.out.unwrap());
            let expect = !seen[e.index as usize].insert(key);
            let got = tracker.observe(e);
            prop_assert_eq!(got, expect);
            repeated_total += u64::from(expect);
        }
        prop_assert_eq!(tracker.dynamic_total(), events.len() as u64);
        prop_assert_eq!(tracker.dynamic_repeated(), repeated_total);
        // Unique repeatable instances == distinct keys seen at least twice.
        let mut counts: HashMap<(u32, (u32, u32, u32)), u64> = HashMap::new();
        for e in &events {
            *counts.entry((e.index, (e.in1, e.in2, e.out.unwrap()))).or_insert(0) += 1;
        }
        let uris = counts.values().filter(|&&c| c >= 2).count() as u64;
        prop_assert_eq!(tracker.unique_repeatable_instances(), uris);
        // Coverage over instances must total the repeated count.
        let cov = Coverage::new(tracker.instance_repeat_counts());
        prop_assert_eq!(cov.total(), tracker.dynamic_repeated());
    }

    #[test]
    fn capped_tracker_is_conservative(events in arb_events(), cap in 1usize..4) {
        // A smaller buffer can only classify FEWER instructions repeated.
        let mut full = RepetitionTracker::new(TrackerConfig::default(), 8);
        let mut capped = RepetitionTracker::new(TrackerConfig { max_instances: cap }, 8);
        for e in &events {
            let f = full.observe(e);
            let c = capped.observe(e);
            prop_assert!(!c || f, "capped tracker found repetition the full one missed");
        }
        prop_assert!(capped.dynamic_repeated() <= full.dynamic_repeated());
    }

    #[test]
    fn tracker_repeated_never_exceeds_exec(events in arb_events()) {
        // Core accounting invariant: a repetition presupposes an earlier
        // execution, per static instruction and in aggregate.
        let mut tracker = RepetitionTracker::new(TrackerConfig::default(), 8);
        for e in &events {
            tracker.observe(e);
        }
        prop_assert!(tracker.dynamic_repeated() <= tracker.dynamic_total());
        let mut exec_sum = 0u64;
        for s in tracker.static_stats() {
            prop_assert!(s.repeated <= s.exec, "static {}: {} > {}", s.index, s.repeated, s.exec);
            prop_assert!(s.unique_repeatable <= s.repeated);
            exec_sum += s.exec;
        }
        prop_assert_eq!(exec_sum, tracker.dynamic_total());
    }

    #[test]
    fn tracker_respects_instance_cap(events in arb_events(), cap in 1usize..6) {
        // All events funneled to one static instruction: the buffer may
        // never hold more than `max_instances` unique instances, and only
        // buffered instances can repeat.
        let mut tracker = RepetitionTracker::new(TrackerConfig { max_instances: cap }, 1);
        for e in &events {
            let mut e = *e;
            e.index = 0;
            e.pc = 0x40_0000;
            tracker.observe(&e);
            prop_assert!(tracker.instances_buffered() <= cap as u64);
        }
        prop_assert!(tracker.unique_repeatable_instances() <= cap as u64);
        // First `cap` distinct keys in stream order are exactly the
        // buffered set.
        let mut first_keys = HashSet::new();
        for e in &events {
            if first_keys.len() < cap {
                first_keys.insert((e.in1, e.in2, e.out.unwrap()));
            }
        }
        prop_assert_eq!(tracker.instances_buffered(), first_keys.len() as u64);
    }

    #[test]
    fn fully_associative_reuse_buffer_matches_reference(events in arb_events()) {
        // With one set the buffer is fully associative; with capacity
        // beyond the working set it never evicts, so a hit occurs exactly
        // when (pc, inputs) was seen and its last outcome matches.
        let mut buf = ReuseBuffer::new(ReuseConfig { entries: 4096, ways: 4096 });
        let mut model: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for e in &events {
            let key = (e.pc, e.in1, e.in2);
            let out = e.out.unwrap();
            let expect = model.get(&key) == Some(&out);
            let got = buf.observe(e, false);
            prop_assert_eq!(got, expect);
            model.insert(key, out);
        }
    }

    #[test]
    fn last_value_predictor_matches_reference(events in arb_events()) {
        let mut p = ValuePredictors::new();
        let mut last: HashMap<u32, u32> = HashMap::new();
        for e in &events {
            let out = e.out.unwrap();
            let expect = last.get(&e.index) == Some(&out);
            prop_assert_eq!(p.observe(e, false).0, expect);
            last.insert(e.index, out);
        }
        prop_assert_eq!(p.lvp_stats().predictable, events.len() as u64);
    }

    #[test]
    fn coverage_is_sound(weights in proptest::collection::vec(0u64..1000, 1..100)) {
        let cov = Coverage::new(weights.clone());
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(cov.total(), total);
        // coverage_at is monotone in the item fraction.
        let mut prev = 0.0;
        for i in 0..=10 {
            let c = cov.coverage_at(i as f64 / 10.0);
            prop_assert!(c + 1e-12 >= prev);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
        // items_needed inverts coverage_at within rounding.
        if total > 0 {
            for target in [0.25, 0.5, 0.9] {
                let frac = cov.items_needed(target);
                prop_assert!(cov.coverage_at(frac) >= target - 1e-9);
            }
        }
    }
}

// Few cases: each one compiles a random MiniC workload and analyzes it
// six times (3 jobs × 2 thread counts).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_pipeline_matches_serial_on_random_workloads(
        tab in proptest::collection::vec(1u32..100, 8),
        iters in 50u32..300,
        step in 1u32..9,
    ) {
        // A randomly parameterized workload: table contents, trip count,
        // and stride all vary, so repetition structure varies too.
        let src = format!(
            "int tab[8] = {{{}}};\n\
             int lookup(int i) {{ return tab[i & 7]; }}\n\
             int main() {{\n\
                 int s = 0;\n\
                 int i;\n\
                 for (i = 0; i < {iters}; i = i + {step}) s = s + lookup(i);\n\
                 return s & 0xff;\n\
             }}",
            tab.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
        );
        let image = instrep_minicc::build(&src).expect("random workload compiles");
        let cfg = AnalysisConfig::default();
        let run = |threads: usize| -> Vec<String> {
            let jobs: Vec<AnalysisJob<'_>> =
                (0..3).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect();
            Session::new(cfg)
                .jobs(threads)
                .run(jobs)
                .into_iter()
                .map(|r| format!("{:?}", r.expect("workload runs").report))
                .collect()
        };
        // The full report — every table's inputs — must be identical
        // whether the pipeline runs serial or on 4 threads.
        prop_assert_eq!(run(1), run(4));
    }

    #[test]
    fn profile_sums_to_aggregates_on_random_workloads(
        tab in proptest::collection::vec(1u32..100, 8),
        iters in 50u32..300,
        step in 1u32..9,
    ) {
        let src = format!(
            "int tab[8] = {{{}}};\n\
             int lookup(int i) {{ return tab[i & 7]; }}\n\
             int main() {{\n\
                 int s = 0;\n\
                 int i;\n\
                 for (i = 0; i < {iters}; i = i + {step}) s = s + lookup(i);\n\
                 return s & 0xff;\n\
             }}",
            tab.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
        );
        let image = instrep_minicc::build(&src).expect("random workload compiles");
        let cfg = AnalysisConfig::default();
        let run = |threads: usize| -> Vec<(InstructionProfile, u64, u64, usize)> {
            let jobs: Vec<AnalysisJob<'_>> =
                (0..3).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect();
            Session::new(cfg)
                .jobs(threads)
                .profile(true)
                .run(jobs)
                .into_iter()
                .map(|r| {
                    let ir = r.expect("workload runs");
                    (
                        ir.profile.expect("profile was requested"),
                        ir.report.dynamic_total,
                        ir.report.dynamic_repeated,
                        ir.report.static_executed,
                    )
                })
                .collect()
        };
        let serial = run(1);
        for (profile, total, repeated, executed) in &serial {
            // Per-PC counts conserve the tracker aggregates exactly:
            // every measured instruction lands at exactly one site.
            prop_assert_eq!(profile.total_exec(), *total);
            prop_assert_eq!(profile.total_repeated(), *repeated);
            prop_assert_eq!(profile.sites.len(), *executed);
            // And so do the rollups derived from them.
            let funcs = profile.func_rollups();
            prop_assert_eq!(funcs.iter().map(|f| f.exec).sum::<u64>(), *total);
            prop_assert_eq!(profile.class_rollups().iter().map(|c| c.exec).sum::<u64>(), *total);
        }
        // The rendered documents — what --profile-out/--profile-folded
        // write — are byte-identical between serial and 4 threads.
        let doc = |profiles: Vec<(InstructionProfile, u64, u64, usize)>| {
            let report = ProfileReport {
                scale: "tiny".to_string(),
                seed: 0,
                top: 5,
                workloads: profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, (p, ..))| (format!("job{i}"), p))
                    .collect(),
            };
            (report.to_json(), report.to_folded())
        };
        prop_assert_eq!(doc(serial), doc(run(4)));
    }
}
