//! Compile-time pins for the thread-safety contract the `instrep-serve`
//! worker pool relies on: a configured `Session` (with any combination
//! of borrowed observers) moves across threads, and the shared
//! observers — the analysis cache and the telemetry registry — are safe
//! to reference from every worker at once. If a future field change
//! breaks one of these bounds, this file stops compiling, which is the
//! point: the regression is caught at `cargo test` build time, before
//! any runtime test runs.

use instrep_core::service::{Request, Response};
use instrep_core::{
    AnalysisCache, AnalysisJob, InstrumentedReport, Session, SpanTracer, TelemetryRegistry,
    WorkloadReport,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn session_and_service_types_are_send_clean() {
    // A session holding only owned state moves to a worker thread...
    assert_send::<Session<'static>>();
    // ...as do jobs and their results.
    assert_send::<AnalysisJob<'static>>();
    assert_send::<InstrumentedReport>();
    assert_send::<WorkloadReport>();
    assert_send::<SpanTracer>();

    // Shared observers: one instance, many concurrent readers.
    assert_send::<AnalysisCache>();
    assert_sync::<AnalysisCache>();
    assert_send::<TelemetryRegistry>();
    assert_sync::<TelemetryRegistry>();

    // Wire types cross the connection-thread / worker-thread boundary.
    assert_send::<Request>();
    assert_send::<Response>();
    assert_sync::<Request>();
    assert_sync::<Response>();
}

#[test]
fn a_configured_session_still_moves() {
    // The bound must hold for sessions with borrowed shared observers
    // attached, not just the all-owned default. `&AnalysisCache` and
    // `&TelemetryRegistry` are Send because the referents are Sync.
    fn configured<'t>(cache: &'t AnalysisCache, registry: &'t TelemetryRegistry) -> impl Send + 't {
        Session::new(instrep_core::AnalysisConfig::default())
            .jobs(2)
            .metrics(true)
            .cache(cache)
            .telemetry(registry)
    }
    let dir = std::env::temp_dir().join(format!("instrep-send-clean-{}", std::process::id()));
    let cache = AnalysisCache::open(&dir).unwrap();
    let registry = TelemetryRegistry::new();
    let session = configured(&cache, &registry);
    drop(session);
    std::fs::remove_dir_all(&dir).ok();
}
