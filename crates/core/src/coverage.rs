//! Cumulative-coverage curves (paper Figures 1 and 4).
//!
//! Both figures ask the same question of a weighted item set: after
//! sorting items by contribution (descending), what fraction of the items
//! accounts for what fraction of the total?

/// A cumulative coverage curve over a set of weighted items.
///
/// # Examples
///
/// ```
/// use instrep_core::Coverage;
///
/// // Four static instructions contributing 90, 5, 4, 1 repetitions.
/// let cov = Coverage::new(vec![5, 90, 1, 4]);
/// // The top 25% of instructions cover 90% of the repetition.
/// assert_eq!(cov.coverage_at(0.25), 0.9);
/// // 90% coverage needs only 25% of the instructions.
/// assert_eq!(cov.items_needed(0.9), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// Weights sorted descending.
    sorted: Vec<u64>,
    total: u64,
}

impl Coverage {
    /// Builds a curve from item weights (zero-weight items are kept: they
    /// count toward the item denominator).
    pub fn new(mut weights: Vec<u64>) -> Coverage {
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let total = weights.iter().sum();
        Coverage { sorted: weights, total }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the curve has no items.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Total weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Item weights in descending order — the curve's canonical form.
    /// Feeding these back through [`Coverage::new`] rebuilds an
    /// identical curve (the analysis cache round-trips curves this way).
    pub fn weights(&self) -> &[u64] {
        &self.sorted
    }

    /// Fraction of total weight covered by the heaviest
    /// `item_fraction` (in `[0, 1]`) of items.
    pub fn coverage_at(&self, item_fraction: f64) -> f64 {
        if self.total == 0 || self.sorted.is_empty() {
            return 0.0;
        }
        let k =
            ((item_fraction * self.sorted.len() as f64).round() as usize).min(self.sorted.len());
        let sum: u64 = self.sorted[..k].iter().sum();
        sum as f64 / self.total as f64
    }

    /// Smallest fraction of items (heaviest first) whose weight reaches
    /// `weight_fraction` of the total. Returns 1.0 if unreachable.
    pub fn items_needed(&self, weight_fraction: f64) -> f64 {
        if self.total == 0 || self.sorted.is_empty() {
            return 1.0;
        }
        let target = weight_fraction * self.total as f64;
        let mut acc = 0u64;
        for (i, w) in self.sorted.iter().enumerate() {
            acc += w;
            if acc as f64 >= target {
                return (i + 1) as f64 / self.sorted.len() as f64;
            }
        }
        1.0
    }

    /// Samples the curve at `n` evenly spaced item fractions, returning
    /// `(item_fraction, weight_fraction)` points suitable for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x, self.coverage_at(x))
            })
            .collect()
    }
}

impl FromIterator<u64> for Coverage {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Coverage {
        Coverage::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrated_weight() {
        let c = Coverage::new(vec![1, 1, 1, 97]);
        assert_eq!(c.coverage_at(0.25), 0.97);
        assert_eq!(c.items_needed(0.97), 0.25);
        assert_eq!(c.items_needed(0.98), 0.5);
        assert_eq!(c.coverage_at(1.0), 1.0);
    }

    #[test]
    fn uniform_weight() {
        let c = Coverage::new(vec![10; 10]);
        assert!((c.coverage_at(0.5) - 0.5).abs() < 1e-9);
        assert!((c.items_needed(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero() {
        let c = Coverage::new(vec![]);
        assert_eq!(c.coverage_at(0.5), 0.0);
        assert_eq!(c.items_needed(0.5), 1.0);
        assert!(c.is_empty());
        let z = Coverage::new(vec![0, 0]);
        assert_eq!(z.coverage_at(1.0), 0.0);
        assert_eq!(z.total(), 0);
    }

    #[test]
    fn points_are_monotone() {
        let c: Coverage = [3u64, 1, 4, 1, 5, 9, 2, 6].into_iter().collect();
        let pts = c.points(8);
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn zero_weight_items_count_in_denominator() {
        let c = Coverage::new(vec![100, 0, 0, 0]);
        assert_eq!(c.coverage_at(0.25), 1.0);
        assert_eq!(c.items_needed(1.0), 0.25);
        assert_eq!(c.len(), 4);
    }
}
