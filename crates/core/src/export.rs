//! Machine-readable (CSV) export of analysis results, for plotting and
//! downstream processing. Two long-form files cover every number the
//! text tables print:
//!
//! * [`csv_summary`] — one row per benchmark with the headline scalars
//!   (Tables 1, 2, 4, 8, 10 and the extension metrics);
//! * [`csv_breakdowns`] — long-form `(bench, analysis, category, metric,
//!   value)` rows covering Tables 3 and 5–7, the figures' coverage
//!   curves, and the instruction-class extension.

use std::fmt::Write as _;

use crate::classes::InsnClass;
use crate::global::GlobalTag;
use crate::local::LocalCat;
use crate::report::Named;

/// Quotes a CSV field if needed (commas/quotes in benchmark names).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row per benchmark: headline scalars.
///
/// # Examples
///
/// ```
/// use instrep_core::{export, AnalysisConfig, Session};
///
/// let image = instrep_minicc::build(
///     "int main() { int i; int s = 0; for (i = 0; i < 50; i++) s += i & 3; return s; }",
/// )?;
/// let r = Session::new(AnalysisConfig::default()).run_one(&image, Vec::new())?.report;
/// let csv = export::csv_summary(&[("demo", &r)]);
/// assert!(csv.starts_with("bench,"));
/// assert!(csv.lines().count() == 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn csv_summary(reports: &[Named<'_>]) -> String {
    let mut s = String::from(
        "bench,dynamic_total,dynamic_repeated,repetition_rate,\
         static_total,static_executed,static_repeated,\
         unique_repeatable,avg_repeats,\
         funcs_called,dynamic_calls,all_arg_rate,no_arg_rate,\
         pure_rate,pure_all_arg_rate,\
         reuse_hit_rate,reuse_capture_rate,\
         lvp_hit_rate,lvp_output_only_share,stride_hit_rate,prologue_top5_coverage\n",
    );
    for (name, r) in reports {
        let _ = writeln!(
            s,
            "{},{},{},{:.6},{},{},{},{},{:.3},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            field(name),
            r.dynamic_total,
            r.dynamic_repeated,
            r.repetition_rate(),
            r.static_total,
            r.static_executed,
            r.static_repeated,
            r.unique_repeatable,
            r.avg_repeats,
            r.funcs_called,
            r.dynamic_calls,
            r.all_arg_rate,
            r.no_arg_rate,
            r.pure_rate,
            r.pure_all_arg_rate,
            r.reuse.hit_rate(),
            r.reuse.repeated_capture_rate(),
            r.predict.hit_rate(),
            r.predict.output_only_share(),
            r.stride.hit_rate(),
            r.prologue_coverage,
        );
    }
    s
}

/// Long-form breakdown rows: `bench,analysis,category,metric,value`.
///
/// Analyses exported: `global` (Table 3), `local` (Tables 5–7),
/// `class` (extension), `static_coverage` / `instance_coverage`
/// (Figures 1 and 4, at 9 item-fraction points), `instance_histogram`
/// (Figure 3), `argset_coverage` (Figure 5), `load_value_coverage`
/// (Figure 6).
pub fn csv_breakdowns(reports: &[Named<'_>]) -> String {
    let mut s = String::from("bench,analysis,category,metric,value\n");
    let mut row = |bench: &str, analysis: &str, cat: &str, metric: &str, value: f64| {
        let _ = writeln!(s, "{},{analysis},{},{metric},{value:.6}", field(bench), field(cat));
    };
    for (name, r) in reports {
        for tag in GlobalTag::ALL {
            row(name, "global", tag.label(), "overall_share", r.global.overall_share(tag));
            row(name, "global", tag.label(), "repeated_share", r.global.repeated_share(tag));
            row(name, "global", tag.label(), "propensity", r.global.propensity(tag));
        }
        for cat in LocalCat::ALL {
            row(name, "local", cat.label(), "overall_share", r.local.overall_share(cat));
            row(name, "local", cat.label(), "repeated_share", r.local.repeated_share(cat));
            row(name, "local", cat.label(), "propensity", r.local.propensity(cat));
        }
        for class in InsnClass::ALL {
            row(name, "class", class.label(), "overall_share", r.classes.overall_share(class));
            row(name, "class", class.label(), "propensity", r.classes.propensity(class));
        }
        for i in 1..=9 {
            let x = f64::from(i) / 10.0;
            let cat = format!("{}%", i * 10);
            row(name, "static_coverage", &cat, "coverage_at", r.static_coverage.coverage_at(x));
            row(name, "instance_coverage", &cat, "coverage_at", r.instance_coverage.coverage_at(x));
        }
        let buckets = ["1", "2-10", "11-100", "101-1000", "1001+"];
        for (b, label) in buckets.iter().enumerate() {
            row(name, "instance_histogram", label, "repetition_share", r.instance_histogram[b]);
        }
        for (k, v) in r.argset_coverage.iter().enumerate() {
            row(name, "argset_coverage", &format!("k={}", k + 1), "coverage", *v);
        }
        for (k, v) in r.load_value_coverage.iter().enumerate() {
            row(name, "load_value_coverage", &format!("k={}", k + 1), "coverage", *v);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisConfig;
    use crate::Session;

    fn sample() -> crate::pipeline::WorkloadReport {
        let image = instrep_minicc::build(
            r#"
            int f(int x) { return x * 3; }
            int main() {
                int i; int s = 0;
                for (i = 0; i < 60; i++) s += f(i & 3);
                return s & 0xff;
            }
            "#,
        )
        .unwrap();
        Session::new(AnalysisConfig::default()).run_one(&image, Vec::new()).unwrap().report
    }

    #[test]
    fn summary_csv_is_rectangular() {
        let r = sample();
        let csv = csv_summary(&[("a,b", &r), ("plain", &r)]);
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        assert_eq!(header_cols, 21);
        // Quoted benchmark name survives as one field.
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"a,b\""));
        for line in csv.lines().skip(1) {
            // Naive count works for our numeric fields; the quoted name
            // adds exactly one comma inside quotes.
            let extra = usize::from(line.starts_with('"'));
            assert_eq!(line.split(',').count(), header_cols + extra, "{line}");
        }
    }

    #[test]
    fn breakdown_csv_covers_all_analyses() {
        let r = sample();
        let csv = csv_breakdowns(&[("demo", &r)]);
        for needle in [
            ",global,",
            ",local,",
            ",class,",
            ",static_coverage,",
            ",instance_coverage,",
            ",instance_histogram,",
            ",argset_coverage,",
            ",load_value_coverage,",
        ] {
            assert!(csv.contains(needle), "missing {needle}");
        }
        // Shares parse as floats in [0, 1].
        for line in csv.lines().skip(1) {
            let v: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&v) || v > 1.0, "bad value in {line}");
        }
    }

    #[test]
    fn histogram_rows_sum_to_one() {
        let r = sample();
        let csv = csv_breakdowns(&[("demo", &r)]);
        let sum: f64 = csv
            .lines()
            .filter(|l| l.contains(",instance_histogram,"))
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }
}
