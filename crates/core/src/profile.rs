//! Source-level repetition profiler: per-static-instruction attribution.
//!
//! The paper's central observation is that repetition concentrates in a
//! small set of static instructions (Figures 3–4, Table 9), but the
//! aggregate tables never say *which* sites those are. This module closes
//! that gap: an [`InstructionProfile`] joins the tracker's per-PC
//! executed/repeated counters with the image's line table (`.loc`
//! markers threaded from `minicc` through `instrep_asm`), function
//! metadata, and opcode class, attributing every counted instruction to
//! `function + MiniC source line + class`.
//!
//! The profile rides [`crate::Probes`] like the other observability
//! layers: it is pull-based (filled once, in the pipeline's finalize
//! phase, from state the tracker accumulates anyway), costs nothing per
//! event, and cannot perturb the [`crate::WorkloadReport`].
//!
//! Three renderers feed `instrep-repro`:
//!
//! * [`ProfileReport::to_json`] — schema-v1 JSON
//!   ([`PROFILE_SCHEMA_VERSION`], `"kind": "profile"`): full per-PC
//!   table, per-function and per-class rollups, top-N hot sites.
//! * [`ProfileReport::to_folded`] — collapsed-stack lines
//!   (`workload;function;pc@line count`) loadable by standard flamegraph
//!   tools, with `executed`/`repeated` weight frames.
//! * [`annotate`] — perf-annotate-style source listing with per-line
//!   exec/repeat columns.
//!
//! All outputs derive from the deterministic analyses and use explicit
//! sort tiebreaks, so documents are byte-reproducible across runs and
//! `--jobs` counts. Schema in `DESIGN.md` §11.

use instrep_asm::Image;

use crate::classes::InsnClass;
use crate::metrics::{comma, indent, push_kv_f64, push_kv_raw, push_kv_str, push_kv_u64};
use crate::tracker::RepetitionTracker;

/// Version of the profile JSON document. Bump on any change to field
/// names, meanings, or structure; `scripts/ci.sh` greps for the current
/// value to catch accidental drift.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Function name used for instructions outside any `.func` region.
const NO_FUNC: &str = "(outside-function)";

/// One executed static instruction with full attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// Static instruction index (`(pc - TEXT_BASE) / 4`).
    pub index: u32,
    /// Absolute program counter.
    pub pc: u32,
    /// Dynamic executions in the measurement window.
    pub exec: u64,
    /// Dynamic executions classified repeated.
    pub repeated: u64,
    /// Unique repeatable instances buffered for this site.
    pub unique_repeatable: u64,
    /// Opcode class of the instruction word.
    pub class: InsnClass,
    /// Owning function (from `.func` metadata), or
    /// `"(outside-function)"`.
    pub func: String,
    /// MiniC source line (from `.loc` markers; 0 = no line info).
    pub line: u32,
}

impl SiteProfile {
    /// Fraction of this site's executions classified repeated.
    pub fn repeat_rate(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.repeated as f64 / self.exec as f64
        }
    }
}

/// Per-function rollup of site counters, in entry-address order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRollup {
    /// Function name.
    pub name: String,
    /// Entry address (rollup sort key — deterministic).
    pub entry: u32,
    /// Executed static sites inside the function.
    pub sites: u64,
    /// Dynamic executions summed over those sites.
    pub exec: u64,
    /// Repeated executions summed over those sites.
    pub repeated: u64,
}

/// Per-opcode-class rollup of site counters, in [`InsnClass::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRollup {
    /// The opcode class.
    pub class: InsnClass,
    /// Executed static sites of this class.
    pub sites: u64,
    /// Dynamic executions summed over those sites.
    pub exec: u64,
    /// Repeated executions summed over those sites.
    pub repeated: u64,
}

/// Per-static-instruction repetition profile for one workload.
///
/// Request one with [`crate::Session::profile`]; the pipeline fills it
/// during finalize. Sites are stored in static-index order.
///
/// # Examples
///
/// ```
/// use instrep_core::{AnalysisConfig, Session};
///
/// let image = instrep_minicc::build(r#"
///     int main() {
///         int i; int s = 0;
///         for (i = 0; i < 500; i++) s += i & 3;
///         return s & 0xff;
///     }
/// "#)?;
/// let ir = Session::new(AnalysisConfig::default()).profile(true).run_one(&image, Vec::new())?;
/// let profile = ir.profile.expect("profile was requested");
/// assert_eq!(profile.total_exec(), ir.report.dynamic_total);
/// assert_eq!(profile.total_repeated(), ir.report.dynamic_repeated);
/// assert!(profile.top_sites(3).iter().all(|s| s.func == "main"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstructionProfile {
    /// Executed sites, ordered by static index.
    pub sites: Vec<SiteProfile>,
}

impl InstructionProfile {
    /// Fills the profile from the tracker's per-PC statistics joined
    /// with the image's function, line, and opcode metadata. Called by
    /// the pipeline in its finalize phase; idempotent (refilling
    /// replaces the previous contents).
    pub fn fill(&mut self, image: &Image, tracker: &RepetitionTracker) {
        self.fill_from_stats(image, &tracker.static_stats());
    }

    /// [`InstructionProfile::fill`] from an already-materialized
    /// per-static statistics table — the form both analysis tiers
    /// produce, so the attribution join is shared.
    pub(crate) fn fill_from_stats(&mut self, image: &Image, stats: &[crate::tracker::StaticStats]) {
        let text_base = instrep_isa::abi::TEXT_BASE;
        self.sites = stats
            .iter()
            .copied()
            .map(|s| {
                let pc = text_base + s.index * 4;
                let class = image
                    .text
                    .get(s.index as usize)
                    .and_then(|&w| instrep_isa::decode(w).ok())
                    .map_or(InsnClass::System, |i| InsnClass::of(&i));
                SiteProfile {
                    index: s.index,
                    pc,
                    exec: s.exec,
                    repeated: s.repeated,
                    unique_repeatable: s.unique_repeatable,
                    class,
                    func: image.func_at(pc).map_or_else(|| NO_FUNC.to_string(), |f| f.name.clone()),
                    line: image.line_at(s.index as usize),
                }
            })
            .collect();
    }

    /// Dynamic executions summed over all sites. Equals the tracker's
    /// `dynamic_total` (every measured instruction hits exactly one
    /// site).
    pub fn total_exec(&self) -> u64 {
        self.sites.iter().map(|s| s.exec).sum()
    }

    /// Repeated executions summed over all sites. Equals the tracker's
    /// `dynamic_repeated`.
    pub fn total_repeated(&self) -> u64 {
        self.sites.iter().map(|s| s.repeated).sum()
    }

    /// The `n` hottest repetition sites: repeated count descending,
    /// static index ascending as the deterministic tiebreak.
    pub fn top_sites(&self, n: usize) -> Vec<&SiteProfile> {
        let mut refs: Vec<&SiteProfile> = self.sites.iter().collect();
        refs.sort_by(|a, b| b.repeated.cmp(&a.repeated).then(a.index.cmp(&b.index)));
        refs.truncate(n);
        refs
    }

    /// Per-function rollups, ordered by function entry address (source
    /// order for compiler output) with out-of-function sites last.
    pub fn func_rollups(&self) -> Vec<FuncRollup> {
        let mut out: Vec<FuncRollup> = Vec::new();
        for s in &self.sites {
            // Sites are index-ordered, so each function's run of sites is
            // contiguous; out-of-function gaps may interleave, hence the
            // linear search (function counts are small).
            match out.iter_mut().find(|f| f.name == s.func) {
                Some(f) => {
                    f.sites += 1;
                    f.exec += s.exec;
                    f.repeated += s.repeated;
                    f.entry = f.entry.min(s.pc);
                }
                None => out.push(FuncRollup {
                    name: s.func.clone(),
                    entry: s.pc,
                    sites: 1,
                    exec: s.exec,
                    repeated: s.repeated,
                }),
            }
        }
        out.sort_by_key(|f| f.entry);
        out
    }

    /// Per-class rollups in [`InsnClass::ALL`] order (all six classes,
    /// zero-count ones included, for a stable document shape).
    pub fn class_rollups(&self) -> Vec<ClassRollup> {
        InsnClass::ALL
            .iter()
            .map(|&class| {
                let mut r = ClassRollup { class, sites: 0, exec: 0, repeated: 0 };
                for s in self.sites.iter().filter(|s| s.class == class) {
                    r.sites += 1;
                    r.exec += s.exec;
                    r.repeated += s.repeated;
                }
                r
            })
            .collect()
    }

    /// Aggregates `(exec, repeated)` per source line, ascending by line.
    /// Sites without line information (line 0) are excluded.
    pub fn line_totals(&self) -> Vec<(u32, u64, u64)> {
        let mut out: Vec<(u32, u64, u64)> = Vec::new();
        for s in self.sites.iter().filter(|s| s.line != 0) {
            match out.iter_mut().find(|(l, ..)| *l == s.line) {
                Some((_, e, r)) => {
                    *e += s.exec;
                    *r += s.repeated;
                }
                None => out.push((s.line, s.exec, s.repeated)),
            }
        }
        out.sort_by_key(|&(l, ..)| l);
        out
    }
}

/// The profile document behind `instrep-repro --profile-out` /
/// `--profile-folded`: run parameters plus one [`InstructionProfile`]
/// per workload, in workload order.
#[derive(Debug)]
pub struct ProfileReport {
    /// Scale label (`"tiny"`, `"small"`, `"full"`).
    pub scale: String,
    /// Input-stream seed.
    pub seed: u64,
    /// `N` for the top-N hot-site list in the JSON document.
    pub top: usize,
    /// `(workload name, profile)` in fixed workload order.
    pub workloads: Vec<(String, InstructionProfile)>,
}

impl ProfileReport {
    /// Renders the schema-v1 JSON document: header, then per workload
    /// the top-N sites, function and class rollups, and the full per-PC
    /// table. Key order is fixed; byte-reproducible.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.workloads.len() * 4096);
        s.push_str("{\n");
        push_kv_u64(&mut s, 1, "schema_version", u64::from(PROFILE_SCHEMA_VERSION), true);
        push_kv_str(&mut s, 1, "kind", "profile", true);
        push_kv_str(&mut s, 1, "scale", &self.scale, true);
        push_kv_u64(&mut s, 1, "seed", self.seed, true);
        // No `jobs` field on purpose: the document is byte-identical for
        // every worker count, and recording one would break that.
        push_kv_u64(&mut s, 1, "top", self.top as u64, true);
        indent(&mut s, 1);
        s.push_str("\"workloads\": [\n");
        for (wi, (name, profile)) in self.workloads.iter().enumerate() {
            indent(&mut s, 2);
            s.push_str("{\n");
            push_kv_str(&mut s, 3, "name", name, true);
            push_kv_u64(&mut s, 3, "dynamic_total", profile.total_exec(), true);
            push_kv_u64(&mut s, 3, "dynamic_repeated", profile.total_repeated(), true);
            push_kv_u64(&mut s, 3, "static_executed", profile.sites.len() as u64, true);

            indent(&mut s, 3);
            s.push_str("\"top_sites\": [\n");
            let top = profile.top_sites(self.top);
            for (i, site) in top.iter().enumerate() {
                push_site(&mut s, site, i + 1 < top.len());
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            indent(&mut s, 3);
            s.push_str("\"functions\": [\n");
            let funcs = profile.func_rollups();
            for (i, f) in funcs.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str("{\n");
                push_kv_str(&mut s, 5, "name", &f.name, true);
                push_kv_raw(&mut s, 5, "entry", &format!("\"{:#010x}\"", f.entry), true);
                push_kv_u64(&mut s, 5, "sites", f.sites, true);
                push_kv_u64(&mut s, 5, "exec", f.exec, true);
                push_kv_u64(&mut s, 5, "repeated", f.repeated, true);
                let rate = if f.exec == 0 { 0.0 } else { f.repeated as f64 / f.exec as f64 };
                push_kv_f64(&mut s, 5, "repeat_rate", rate, false);
                indent(&mut s, 4);
                s.push_str(&format!("}}{}\n", comma(i + 1 < funcs.len())));
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            indent(&mut s, 3);
            s.push_str("\"classes\": [\n");
            let classes = profile.class_rollups();
            for (i, c) in classes.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str("{\n");
                push_kv_str(&mut s, 5, "class", c.class.label(), true);
                push_kv_u64(&mut s, 5, "sites", c.sites, true);
                push_kv_u64(&mut s, 5, "exec", c.exec, true);
                push_kv_u64(&mut s, 5, "repeated", c.repeated, true);
                let rate = if c.exec == 0 { 0.0 } else { c.repeated as f64 / c.exec as f64 };
                push_kv_f64(&mut s, 5, "repeat_rate", rate, false);
                indent(&mut s, 4);
                s.push_str(&format!("}}{}\n", comma(i + 1 < classes.len())));
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            indent(&mut s, 3);
            s.push_str("\"sites\": [\n");
            for (i, site) in profile.sites.iter().enumerate() {
                push_site(&mut s, site, i + 1 < profile.sites.len());
            }
            indent(&mut s, 3);
            s.push_str("]\n");

            indent(&mut s, 2);
            s.push_str(&format!("}}{}\n", comma(wi + 1 < self.workloads.len())));
        }
        indent(&mut s, 1);
        s.push_str("]\n}\n");
        s
    }

    /// Renders collapsed-stack lines for flamegraph tools:
    ///
    /// ```text
    /// <workload>;executed;<function>;0x<pc>@L<line> <exec-count>
    /// <workload>;repeated;<function>;0x<pc>@L<line> <repeated-count>
    /// ```
    ///
    /// The `executed`/`repeated` frame keeps the two weightings of the
    /// same stacks from merging when a flamegraph sums duplicate paths.
    /// Zero-count lines are omitted (flamegraph tools reject them).
    pub fn to_folded(&self) -> String {
        let mut s = String::with_capacity(
            self.workloads.iter().map(|(_, p)| p.sites.len()).sum::<usize>() * 2 * 48,
        );
        for (name, profile) in &self.workloads {
            for weight in ["executed", "repeated"] {
                for site in &profile.sites {
                    let n = if weight == "executed" { site.exec } else { site.repeated };
                    if n == 0 {
                        continue;
                    }
                    s.push_str(&format!(
                        "{name};{weight};{};{:#010x}@L{} {n}\n",
                        site.func, site.pc, site.line
                    ));
                }
            }
        }
        s
    }
}

/// Emits one site object at indent level 4 (used by both the top-N list
/// and the full table).
fn push_site(s: &mut String, site: &SiteProfile, more: bool) {
    indent(s, 4);
    s.push_str("{\n");
    push_kv_raw(s, 5, "pc", &format!("\"{:#010x}\"", site.pc), true);
    push_kv_u64(s, 5, "index", u64::from(site.index), true);
    push_kv_str(s, 5, "function", &site.func, true);
    push_kv_u64(s, 5, "line", u64::from(site.line), true);
    push_kv_str(s, 5, "class", site.class.label(), true);
    push_kv_u64(s, 5, "exec", site.exec, true);
    push_kv_u64(s, 5, "repeated", site.repeated, true);
    push_kv_u64(s, 5, "unique_repeatable", site.unique_repeatable, true);
    push_kv_f64(s, 5, "repeat_rate", site.repeat_rate(), false);
    indent(s, 4);
    s.push_str(&format!("}}{}\n", comma(more)));
}

/// Renders the perf-annotate-style source view: every line of `source`
/// with the exec/repeat counters of the instructions compiled from it,
/// plus — when a [`LoopNestProfile`](crate::LoopNestProfile) is
/// supplied — the deepest loop nest each line ran under. Lines that
/// produced no measured instruction (or ran under no loop) get blank
/// columns.
///
/// ```text
/// == compress: source-level repetition profile (exec / repeated / rep% / loop) ==
///       exec   repeated   rep%  loop  line  source
///          .          .      .     .     1  // --- shared workload prelude ---
///      12345      11000   89.1     2     5  int read_int() {
/// ```
pub fn annotate(
    name: &str,
    source: &str,
    profile: &InstructionProfile,
    loops: Option<&crate::LoopNestProfile>,
) -> String {
    let totals = profile.line_totals();
    let depths = loops.map(crate::LoopNestProfile::line_depths).unwrap_or_default();
    let mut s = String::with_capacity(source.len() * 2);
    s.push_str(&format!(
        "== {name}: source-level repetition profile (exec / repeated / rep% / loop) ==\n"
    ));
    s.push_str(&format!(
        "{:>10} {:>10} {:>6}  {:>4}  {:>4}  source\n",
        "exec", "repeated", "rep%", "loop", "line"
    ));
    for (i, text) in source.lines().enumerate() {
        let line = (i + 1) as u32;
        let depth = match depths.iter().find(|&&(l, _)| l == line) {
            Some(&(_, d)) => d.to_string(),
            None => ".".to_string(),
        };
        match totals.iter().find(|&&(l, ..)| l == line) {
            Some(&(_, exec, repeated)) => {
                let rate = if exec == 0 { 0.0 } else { repeated as f64 / exec as f64 * 100.0 };
                s.push_str(&format!(
                    "{exec:>10} {repeated:>10} {rate:>6.1}  {depth:>4}  {line:>4}  {text}\n"
                ));
            }
            None => {
                s.push_str(&format!(
                    "{:>10} {:>10} {:>6}  {depth:>4}  {line:>4}  {text}\n",
                    ".", ".", "."
                ));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisConfig;
    use crate::Session;
    use instrep_minicc::build;

    fn profiled(src: &str) -> (InstructionProfile, crate::WorkloadReport) {
        let image = build(src).unwrap();
        let ir = Session::new(AnalysisConfig::default())
            .profile(true)
            .run_one(&image, Vec::new())
            .unwrap();
        (ir.profile.expect("profile was requested"), ir.report)
    }

    const LOOP_SRC: &str = r#"int twice(int x) {
    return x + x;
}
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 300; i++) {
        s += twice(i & 7);
    }
    return s & 0xff;
}
"#;

    #[test]
    fn sites_sum_to_tracker_aggregates() {
        let (profile, report) = profiled(LOOP_SRC);
        assert_eq!(profile.total_exec(), report.dynamic_total);
        assert_eq!(profile.total_repeated(), report.dynamic_repeated);
        assert_eq!(profile.sites.len(), report.static_executed);
        let rep_sites = profile.sites.iter().filter(|s| s.repeated > 0).count();
        assert_eq!(rep_sites, report.static_repeated);
        // Index-ordered, no duplicates.
        assert!(profile.sites.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn attribution_joins_function_and_line() {
        let (profile, _) = profiled(LOOP_SRC);
        let funcs = profile.func_rollups();
        let names: Vec<&str> = funcs.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"twice"), "rollups: {names:?}");
        assert!(names.contains(&"main"));
        assert!(names.contains(&"__start"), "runtime functions attributed too");
        // Entry order is address order.
        assert!(funcs.windows(2).all(|w| w[0].entry < w[1].entry));
        // twice's body instructions carry its source lines (1-2).
        let twice_sites: Vec<&SiteProfile> =
            profile.sites.iter().filter(|s| s.func == "twice").collect();
        assert!(!twice_sites.is_empty());
        assert!(twice_sites.iter().all(|s| (1..=3).contains(&s.line)), "{twice_sites:?}");
        // Runtime sites have no line info.
        assert!(profile.sites.iter().filter(|s| s.func == "__start").all(|s| s.line == 0));
        // Rollups conserve the totals.
        assert_eq!(funcs.iter().map(|f| f.exec).sum::<u64>(), profile.total_exec());
        assert_eq!(funcs.iter().map(|f| f.repeated).sum::<u64>(), profile.total_repeated());
        let classes = profile.class_rollups();
        assert_eq!(classes.len(), 6);
        assert_eq!(classes.iter().map(|c| c.exec).sum::<u64>(), profile.total_exec());
    }

    #[test]
    fn top_sites_sorted_with_deterministic_tiebreak() {
        let (profile, _) = profiled(LOOP_SRC);
        let top = profile.top_sites(10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(
                w[0].repeated > w[1].repeated
                    || (w[0].repeated == w[1].repeated && w[0].index < w[1].index)
            );
        }
        // The hottest site lives in the loop body.
        assert!(top[0].repeated > 0);
        // Asking for more than exists returns everything.
        assert_eq!(profile.top_sites(usize::MAX).len(), profile.sites.len());
    }

    #[test]
    fn json_document_is_well_formed() {
        let (profile, _) = profiled(LOOP_SRC);
        let report = ProfileReport {
            scale: "tiny".into(),
            seed: 1,
            top: 3,
            workloads: vec![("loop".into(), profile)],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n  \"kind\": \"profile\",\n"));
        assert!(json.contains("\"top_sites\": ["));
        assert!(json.contains("\"functions\": ["));
        assert!(json.contains("\"classes\": ["));
        assert!(json.contains("\"sites\": ["));
        assert!(json.contains("\"function\": \"twice\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn folded_lines_have_two_weightings_and_no_zeros() {
        let (profile, report) = profiled(LOOP_SRC);
        let doc = ProfileReport {
            scale: "tiny".into(),
            seed: 1,
            top: 3,
            workloads: vec![("loop".into(), profile)],
        };
        let folded = doc.to_folded();
        let mut exec_total = 0u64;
        let mut rep_total = 0u64;
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            let count: u64 = count.parse().unwrap();
            assert!(count > 0, "zero-weight folded line: {line}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert_eq!(frames.len(), 4, "bad stack: {stack}");
            assert_eq!(frames[0], "loop");
            match frames[1] {
                "executed" => exec_total += count,
                "repeated" => rep_total += count,
                other => panic!("bad weight frame {other}"),
            }
            assert!(frames[3].starts_with("0x") && frames[3].contains("@L"));
        }
        assert_eq!(exec_total, report.dynamic_total);
        assert_eq!(rep_total, report.dynamic_repeated);
    }

    #[test]
    fn annotate_renders_every_source_line() {
        let (profile, _) = profiled(LOOP_SRC);
        let view = annotate("loop", LOOP_SRC, &profile, None);
        // Header + column row + one row per source line.
        assert_eq!(view.lines().count(), 2 + LOOP_SRC.lines().count());
        // The loop-body line carries counts; its source text is present.
        let body = view.lines().find(|l| l.contains("s += twice(i & 7);")).unwrap();
        assert!(!body.trim_start().starts_with('.'), "loop body should have counts: {body}");
        // Line totals match the profile's line-attributed sites.
        let attributed: u64 = profile.sites.iter().filter(|s| s.line != 0).map(|s| s.exec).sum();
        assert_eq!(profile.line_totals().iter().map(|&(_, e, _)| e).sum::<u64>(), attributed);
    }

    #[test]
    fn annotate_loop_column_shows_nest_depth() {
        let image = build(LOOP_SRC).unwrap();
        let ir = Session::new(AnalysisConfig::default())
            .profile(true)
            .loops(true)
            .run_one(&image, Vec::new())
            .unwrap();
        let profile = ir.profile.expect("profile was requested");
        let loops = ir.loops.expect("loops were requested");
        let view = annotate("loop", LOOP_SRC, &profile, Some(&loops));
        assert!(view.lines().nth(1).unwrap().contains("loop  line  source"));
        // The for-loop body line shows a nest depth of at least 1; the
        // function-signature line of `twice` sits outside any loop span
        // unless the loop's body covers it, so just check the body.
        let body = view.lines().find(|l| l.contains("s += twice(i & 7);")).unwrap();
        let cols: Vec<&str> = body.split_whitespace().collect();
        let depth: u32 = cols[3].parse().expect("loop column is a depth number");
        assert!(depth >= 1, "{body}");
        // Without a loop profile the column renders as '.'.
        let plain = annotate("loop", LOOP_SRC, &profile, None);
        let body = plain.lines().find(|l| l.contains("s += twice(i & 7);")).unwrap();
        assert_eq!(body.split_whitespace().nth(3), Some("."), "{body}");
    }

    #[test]
    fn empty_profile_renders_cleanly() {
        let profile = InstructionProfile::default();
        assert_eq!(profile.total_exec(), 0);
        assert!(profile.top_sites(5).is_empty());
        assert!(profile.func_rollups().is_empty());
        assert_eq!(profile.class_rollups().len(), 6);
        let doc = ProfileReport {
            scale: "tiny".into(),
            seed: 0,
            top: 5,
            workloads: vec![("empty".into(), profile)],
        };
        assert!(doc.to_folded().is_empty());
        assert!(doc.to_json().contains("\"static_executed\": 0,"));
    }
}
