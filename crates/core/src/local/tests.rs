use super::*;
use instrep_asm::FuncMeta;
use instrep_isa::{AluOp, MemOp, MemWidth};
use instrep_sim::MemEffect;

const F_ENTRY: u32 = 0x40_0000;

fn image() -> Image {
    Image {
        funcs: vec![
            FuncMeta { name: "f".into(), entry: F_ENTRY, end: F_ENTRY + 0x40, arity: 2 },
            FuncMeta { name: "g".into(), entry: F_ENTRY + 0x40, end: F_ENTRY + 0x80, arity: 0 },
        ],
        ..Image::default()
    }
}

fn ev(insn: Insn, in1: u32, in2: u32, out: Option<u32>) -> Event {
    Event { pc: F_ENTRY, index: 0, insn, in1, in2, out, mem: None, ctrl: None }
}

fn call(target: u32, sp: u32) -> Event {
    let mut e = ev(Insn::Jump { link: true, target: target >> 2 }, 0, 0, Some(F_ENTRY + 4));
    e.ctrl = Some(CtrlEffect::Call { target, args: [0; 8], sp, ra: F_ENTRY + 4 });
    e
}

fn ret() -> Event {
    let mut e = ev(Insn::Jr { rs: Reg::RA }, F_ENTRY + 4, 0, None);
    e.ctrl = Some(CtrlEffect::Return { target: F_ENTRY + 4, v0: 1 });
    e
}

fn store(rt: Reg, base: Reg, addr: u32, value: u32) -> Event {
    let mut e =
        ev(Insn::Mem { op: MemOp::Store(MemWidth::Word), rt, base, off: 0 }, addr, value, None);
    e.mem = Some(MemEffect { addr, width: MemWidth::Word, value, is_load: false });
    e
}

fn load(rt: Reg, base: Reg, addr: u32, value: u32) -> Event {
    let mut e =
        ev(Insn::Mem { op: MemOp::Load(MemWidth::Word), rt, base, off: 0 }, addr, 0, Some(value));
    e.mem = Some(MemEffect { addr, width: MemWidth::Word, value, is_load: true });
    e
}

fn cat_count(la: &LocalAnalysis, cat: LocalCat) -> u64 {
    la.counts().overall[cat as usize]
}

#[test]
fn frame_alloc_is_prologue_dealloc_epilogue() {
    let mut la = LocalAnalysis::new(&image());
    let alloc = ev(Insn::imm(ImmOp::Addi, Reg::SP, Reg::SP, -32), 0, 0, Some(0));
    la.observe(&alloc, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::Prologue), 1);
    let dealloc = ev(Insn::imm(ImmOp::Addi, Reg::SP, Reg::SP, 32), 0, 0, Some(0));
    la.observe(&dealloc, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::Epilogue), 1);
}

#[test]
fn callee_saves_and_restores() {
    let mut la = LocalAnalysis::new(&image());
    let sp = abi::STACK_TOP - 64;
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None);
    // Save $s0 (unwritten in this frame) to the stack => prologue.
    la.observe(&store(Reg::S0, Reg::SP, sp + 8, 17), false, true, Some(Region::Stack));
    assert_eq!(cat_count(&la, LocalCat::Prologue), 1);
    // Reload from the same slot => epilogue.
    la.observe(&load(Reg::S0, Reg::SP, sp + 8, 17), false, true, Some(Region::Stack));
    assert_eq!(cat_count(&la, LocalCat::Epilogue), 1);
    // Saving $ra also counts as prologue.
    la.observe(&store(Reg::RA, Reg::SP, sp + 12, 0), false, true, Some(Region::Stack));
    assert_eq!(cat_count(&la, LocalCat::Prologue), 2);
}

#[test]
fn written_register_store_is_not_prologue() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None);
    // Write $s0 first.
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::S0, Reg::ZERO, Reg::ZERO), 0, 0, Some(0)),
        false,
        true,
        None,
    );
    // Now a store of $s0 is an ordinary (spill) store, not prologue.
    la.observe(&store(Reg::S0, Reg::SP, abi::STACK_TOP - 24, 0), false, true, Some(Region::Stack));
    assert_eq!(cat_count(&la, LocalCat::Prologue), 0);
}

#[test]
fn returns_and_sp_ops() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&ret(), false, true, None);
    assert_eq!(cat_count(&la, LocalCat::Return), 1);
    let sp_addr = ev(Insn::imm(ImmOp::Addi, Reg::T0, Reg::SP, 16), 0, 0, Some(0));
    la.observe(&sp_addr, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::Sp), 1);
}

#[test]
fn glb_addr_calc_sequences() {
    let mut la = LocalAnalysis::new(&image());
    // addi t0, gp, -32000 => gp-relative address formation.
    let gp_form = ev(
        Insn::imm(ImmOp::Addi, Reg::T0, Reg::GP, -32000),
        abi::GP_INIT,
        0,
        Some(abi::DATA_BASE + 768),
    );
    la.observe(&gp_form, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::GlbAddrCalc), 1);

    // lui/ori pair materializing a data address.
    let lui = ev(Insn::Lui { rt: Reg::T1, imm: 0x1001 }, 0, 0, Some(0x1001_0000));
    la.observe(&lui, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::GlbAddrCalc), 2);
    let ori = ev(Insn::imm(ImmOp::Ori, Reg::T1, Reg::T1, 0x24), 0x1001_0000, 0, Some(0x1001_0024));
    la.observe(&ori, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::GlbAddrCalc), 3);

    // lui of a non-address constant is function internals.
    let lui2 = ev(Insn::Lui { rt: Reg::T2, imm: 0x0001 }, 0, 0, Some(0x0001_0000));
    la.observe(&lui2, false, true, None);
    assert_eq!(cat_count(&la, LocalCat::FuncInternal), 1);
}

#[test]
fn source_tags_flow_through_loads() {
    let mut la = LocalAnalysis::new(&image());
    // Load from the data segment => Global category, result tagged global.
    la.observe(&load(Reg::T0, Reg::T5, abi::DATA_BASE, 9), false, true, Some(Region::Data));
    assert_eq!(cat_count(&la, LocalCat::Global), 1);
    // Arithmetic on the loaded value stays Global.
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::T1, Reg::T0, Reg::ZERO), 9, 0, Some(9)),
        false,
        true,
        None,
    );
    assert_eq!(cat_count(&la, LocalCat::Global), 2);
    // Heap load => Heap.
    let heap = abi::DATA_BASE + 0x10;
    la.observe(&load(Reg::T2, Reg::T5, heap, 3), false, true, Some(Region::Heap));
    assert_eq!(cat_count(&la, LocalCat::Heap), 1);
}

#[test]
fn argument_tags_set_at_call() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None); // f has arity 2
                                                                   // Use of a0 inside the callee is an argument-slice instruction.
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::T0, Reg::A0, Reg::ZERO), 5, 0, Some(5)),
        false,
        true,
        None,
    );
    assert_eq!(cat_count(&la, LocalCat::Argument), 1);
    // a2 is beyond f's arity: not tagged argument.
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::T1, Reg::A2, Reg::ZERO), 0, 0, Some(0)),
        false,
        true,
        None,
    );
    assert_eq!(cat_count(&la, LocalCat::Argument), 1);
    // FuncInternal: the jal itself plus the a2 use.
    assert_eq!(cat_count(&la, LocalCat::FuncInternal), 2);
}

#[test]
fn return_value_tags_after_return() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None);
    la.observe(&ret(), false, true, None);
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::T0, Reg::V0, Reg::ZERO), 1, 0, Some(1)),
        false,
        true,
        None,
    );
    assert_eq!(cat_count(&la, LocalCat::ReturnValue), 1);
}

#[test]
fn spills_preserve_provenance() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None);
    // Write a0's tag into t0 first (argument), then spill t0 and reload.
    la.observe(
        &ev(Insn::alu(AluOp::Add, Reg::T0, Reg::A0, Reg::ZERO), 5, 0, Some(5)),
        false,
        true,
        None,
    );
    let slot = abi::STACK_TOP - 40;
    la.observe(&store(Reg::T0, Reg::SP, slot, 5), false, true, Some(Region::Stack));
    la.observe(&load(Reg::T3, Reg::SP, slot, 5), false, true, Some(Region::Stack));
    // The a0 use, the spill store, and the reload are all on the
    // argument slice (provenance preserved through the stack).
    assert_eq!(cat_count(&la, LocalCat::Argument), 3);
}

#[test]
fn stack_args_tagged_argument() {
    // g has arity 0 so use an unknown target (assumed arity 4)... instead
    // extend: call a function with arity > 4 via unknown entry.
    let img = Image {
        funcs: vec![FuncMeta { name: "big".into(), entry: F_ENTRY, end: F_ENTRY + 0x40, arity: 6 }],
        ..Image::default()
    };
    let mut la = LocalAnalysis::new(&img);
    let sp = abi::STACK_TOP - 64;
    la.observe(&call(F_ENTRY, sp), false, true, None);
    // Callee loads its 5th argument from sp+16 (the caller's outgoing area).
    la.observe(&load(Reg::T0, Reg::SP, sp + 16, 42), false, true, Some(Region::Stack));
    assert_eq!(cat_count(&la, LocalCat::Argument), 1);
}

#[test]
fn prologue_report_table9() {
    let mut la = LocalAnalysis::new(&image());
    let sp = abi::STACK_TOP - 64;
    la.observe(&call(F_ENTRY, abi::STACK_TOP), false, true, None);
    // Repeated prologue store (tracker says repeated).
    la.observe(&store(Reg::S0, Reg::SP, sp + 8, 17), true, true, Some(Region::Stack));
    la.observe(&store(Reg::S1, Reg::SP, sp + 12, 3), true, true, Some(Region::Stack));
    let (rows, coverage) = la.prologue_report(5);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, "f");
    assert_eq!(rows[0].1, 16); // 0x40 bytes = 16 instructions
    assert_eq!(rows[0].2, 2);
    assert_eq!(coverage, 1.0);
}

#[test]
fn load_value_coverage_figure6() {
    let mut la = LocalAnalysis::new(&image());
    // One static load sees value 7 four times and value 9 twice.
    for v in [7u32, 7, 7, 7, 9, 9] {
        la.observe(&load(Reg::T0, Reg::T5, abi::DATA_BASE, v), true, true, Some(Region::Data));
    }
    let cov = la.load_value_coverage(5);
    // Repetitions: value 7 -> 3, value 9 -> 1; top-1 covers 3/4.
    assert!((cov[0] - 0.75).abs() < 1e-9);
    assert!((cov[1] - 1.0).abs() < 1e-9);
}

#[test]
fn counting_gate() {
    let mut la = LocalAnalysis::new(&image());
    la.observe(&ret(), true, false, None);
    assert_eq!(la.counts().total(), 0);
}

#[test]
fn shares_and_propensity_math() {
    let mut c = LocalCounts::default();
    c.overall[LocalCat::Global as usize] = 50;
    c.overall[LocalCat::Heap as usize] = 50;
    c.repeated[LocalCat::Global as usize] = 40;
    c.repeated[LocalCat::Heap as usize] = 10;
    assert!((c.overall_share(LocalCat::Global) - 0.5).abs() < 1e-9);
    assert!((c.repeated_share(LocalCat::Global) - 0.8).abs() < 1e-9);
    assert!((c.propensity(LocalCat::Heap) - 0.2).abs() < 1e-9);
    assert_eq!(c.propensity(LocalCat::Sp), 0.0);
}
