//! Dynamic loop-nest profiler: which loops produce the repetition.
//!
//! The per-PC profile (`core::profile`) says *where* repetition lives;
//! this module says *which loop nest, at which depth*, makes it live
//! there — the attribution layer Coppieters et al. argue for and the
//! unit Shaccour & Mansour use to quantify cross-workload redundancy.
//!
//! Loops are detected online from the executed control flow, with no
//! static analysis: a taken branch or jump whose target is at or below
//! the current PC (or is an already-known header) is a *back edge*.
//! The first back edge to a header opens a loop; later back edges bump
//! its trip count; control leaving the `[header, latch]` body region —
//! or returning out of the frame that entered it — closes the current
//! nest level. Headers are interned in an FxHash table, the active nest
//! is a stack, and every measured instruction records the interned id
//! of the loop path it executed under (last execution wins, so the
//! store is one `u32` write per event). Calls made from a loop body
//! keep the enclosing path: callee instructions are attributed to the
//! loop that called them.
//!
//! Tangled control flow — back edges that cross an active loop's header
//! without targeting it (irreducible or multi-entry regions) — is
//! *counted* (`irregular`) and degraded gracefully by closing the
//! crossed levels; detection never panics and never loses events.
//! Known limits (see `DESIGN.md` §16): zero-iteration loops take no
//! back edge and are invisible, and a loop body's first iteration up to
//! the first back edge is attributed to the enclosing path.
//!
//! The profiler rides [`Probes`](crate::Probes) like every
//! observability layer: zero-cost when off, and incapable of perturbing
//! the [`crate::WorkloadReport`]. At finalize it joins the tracker's
//! per-static statistics against the recorded path assignments and the
//! image's function/line metadata, producing a [`LoopNestProfile`];
//! [`LoopsReport`] renders the schema-v1 JSON (`--loops-out`) and the
//! collapsed-stack form (`--loops-folded`).

use instrep_asm::Image;
use instrep_sim::{CtrlEffect, Event};

use crate::classes::InsnClass;
use crate::fxhash::FxHashMap;
use crate::metrics::{comma, indent, push_kv_f64, push_kv_raw, push_kv_str, push_kv_u64};
use crate::tracker::StaticStats;

/// Version of the loops JSON document. Bump on any change to field
/// names, meanings, or structure; `scripts/ci.sh` greps for the current
/// value to catch accidental drift.
pub const LOOPS_SCHEMA_VERSION: u32 = 1;

/// Function name used for loops headed outside any `.func` region.
const NO_FUNC: &str = "(outside-function)";

/// Live per-loop state while the event stream runs.
#[derive(Debug)]
struct LoopData {
    /// Header PC (the back-edge target).
    header: u32,
    /// Highest body PC observed (the latch; grows as back edges land).
    end: u32,
    /// Back edges taken to this header.
    trips: u64,
    /// Times the loop was entered (pushed on the nest stack).
    entries: u64,
    /// Deepest nest position this loop ran at (1 = outermost).
    max_depth: u32,
}

/// One active level of the loop-nest stack.
#[derive(Debug, Clone, Copy)]
struct ActiveLoop {
    /// Index into [`LoopProfiler::loops`].
    id: u32,
    /// Call depth at entry; region-exit checks apply only in this
    /// frame, and returning past it closes the level.
    call_depth: u32,
}

/// Online loop-nest detector and per-event path recorder — the state
/// behind [`Session::loops`](crate::Session::loops). Attach one per
/// job; the pipeline drives [`LoopProfiler::observe`] for every event
/// and calls the finalize join itself, so the finished
/// [`LoopNestProfile`] is ready when the run returns.
#[derive(Debug, Default)]
pub struct LoopProfiler {
    /// Header PC → loop id.
    by_header: FxHashMap<u32, u32>,
    loops: Vec<LoopData>,
    stack: Vec<ActiveLoop>,
    /// Per-static-index interned path id, last execution wins.
    assign: Vec<u32>,
    /// Interned loop-id paths; `paths[0]` is the empty (no-loop) path.
    paths: Vec<Vec<u32>>,
    path_ids: FxHashMap<Vec<u32>, u32>,
    /// Interned id of the current stack contents.
    cur_path: u32,
    /// Stack changed since `cur_path` was interned.
    dirty: bool,
    call_depth: u32,
    back_edges: u64,
    irregular: u64,
    max_depth_seen: u32,
    finished: Option<LoopNestProfile>,
}

impl LoopProfiler {
    /// A profiler for an image with `static_len` text words.
    pub fn new(static_len: usize) -> LoopProfiler {
        let mut p = LoopProfiler { assign: vec![0; static_len], ..LoopProfiler::default() };
        p.paths.push(Vec::new());
        p.path_ids.insert(Vec::new(), 0);
        p
    }

    /// Observes one retired instruction. Skip-phase events
    /// (`measured == false`) propagate call depth only — loop discovery
    /// and counting start with the measurement window, exactly like the
    /// tracker.
    #[inline]
    pub fn observe(&mut self, ev: &Event, measured: bool) {
        if measured {
            self.measure(ev);
        } else if let Some(ctrl) = ev.ctrl {
            match ctrl {
                CtrlEffect::Call { .. } => self.call_depth = self.call_depth.saturating_add(1),
                CtrlEffect::Return { .. } => self.call_depth = self.call_depth.saturating_sub(1),
                _ => {}
            }
        }
    }

    fn measure(&mut self, ev: &Event) {
        // Region exit: the innermost level closes when control leaves
        // its body span in the frame that entered it. Levels entered
        // from a caller's frame survive callee execution untouched.
        while let Some(top) = self.stack.last() {
            if top.call_depth != self.call_depth {
                break;
            }
            let l = &self.loops[top.id as usize];
            if ev.pc >= l.header && ev.pc <= l.end {
                break;
            }
            self.stack.pop();
            self.dirty = true;
        }

        if let Some(ctrl) = ev.ctrl {
            match ctrl {
                CtrlEffect::Branch { taken: true, target } | CtrlEffect::Jump { target }
                    if target <= ev.pc || self.by_header.contains_key(&target) =>
                {
                    self.back_edge(target, ev.pc);
                }
                CtrlEffect::Call { .. } => {
                    self.call_depth = self.call_depth.saturating_add(1);
                }
                CtrlEffect::Return { .. } => {
                    self.call_depth = self.call_depth.saturating_sub(1);
                    while let Some(top) = self.stack.last() {
                        if top.call_depth <= self.call_depth {
                            break;
                        }
                        self.stack.pop();
                        self.dirty = true;
                    }
                }
                _ => {}
            }
        }

        if self.dirty {
            self.refresh_path();
            self.dirty = false;
        }
        // Last execution wins: the branch that closed a trip is already
        // under the loop's path, and first-iteration prefixes are
        // corrected by the second iteration.
        if let Some(slot) = self.assign.get_mut(ev.index as usize) {
            *slot = self.cur_path;
        }
    }

    /// Handles one back edge to `target` taken from `pc`.
    fn back_edge(&mut self, target: u32, pc: u32) {
        self.back_edges += 1;
        let cd = self.call_depth;
        if let Some(pos) = self
            .stack
            .iter()
            .rposition(|e| e.call_depth == cd && self.loops[e.id as usize].header == target)
        {
            // Another trip of an active loop; deeper levels were exited
            // by the jump (a `continue` of the outer loop).
            self.stack.truncate(pos + 1);
            let l = &mut self.loops[self.stack[pos].id as usize];
            l.trips += 1;
            if pc > l.end {
                l.end = pc;
            }
            self.dirty = true;
            return;
        }
        // Entering a new level. A target below an active header in the
        // same frame means the edge crosses that loop's boundary —
        // irreducible or multi-entry flow. Count it and degrade by
        // closing the crossed levels (never panic, never lose events).
        while let Some(top) = self.stack.last() {
            if top.call_depth == cd && self.loops[top.id as usize].header > target {
                self.stack.pop();
                self.irregular += 1;
                self.dirty = true;
            } else {
                break;
            }
        }
        let id = match self.by_header.get(&target) {
            Some(&id) => id,
            None => {
                let id = self.loops.len() as u32;
                self.by_header.insert(target, id);
                self.loops.push(LoopData {
                    header: target,
                    end: pc,
                    trips: 0,
                    entries: 0,
                    max_depth: 0,
                });
                id
            }
        };
        self.stack.push(ActiveLoop { id, call_depth: cd });
        let depth = self.stack.len() as u32;
        let l = &mut self.loops[id as usize];
        l.entries += 1;
        l.trips += 1;
        if pc > l.end {
            l.end = pc;
        }
        if depth > l.max_depth {
            l.max_depth = depth;
        }
        if depth > self.max_depth_seen {
            self.max_depth_seen = depth;
        }
        self.dirty = true;
    }

    fn refresh_path(&mut self) {
        let key: Vec<u32> = self.stack.iter().map(|e| e.id).collect();
        self.cur_path = match self.path_ids.get(&key) {
            Some(&p) => p,
            None => {
                let p = self.paths.len() as u32;
                self.path_ids.insert(key.clone(), p);
                self.paths.push(key);
                p
            }
        };
    }

    /// Distinct loop headers discovered so far.
    pub fn loops_discovered(&self) -> u64 {
        self.loops.len() as u64
    }

    /// Back edges observed in the measurement window.
    pub fn back_edges(&self) -> u64 {
        self.back_edges
    }

    /// Irregular (irreducible/multi-entry) edges degraded gracefully.
    pub fn irregular(&self) -> u64 {
        self.irregular
    }

    /// Deepest nest observed (0 if no loop ran).
    pub fn max_depth(&self) -> u32 {
        self.max_depth_seen
    }

    /// The finalize join: attributes the tracker's per-static counters
    /// to the recorded loop paths and resolves function and line-span
    /// metadata. Called by the pipeline once per run; idempotent.
    pub(crate) fn fill_from_stats(&mut self, image: &Image, stats: &[StaticStats]) {
        let text_base = instrep_isa::abi::TEXT_BASE;
        let mut recs: Vec<LoopRecord> = self
            .loops
            .iter()
            .map(|l| {
                let (mut line_lo, mut line_hi) = (0u32, 0u32);
                let lo = ((l.header - text_base) / 4) as usize;
                let hi = ((l.end - text_base) / 4) as usize;
                for i in lo..=hi.min(image.text.len().saturating_sub(1)) {
                    let line = image.line_at(i);
                    if line != 0 {
                        if line_lo == 0 || line < line_lo {
                            line_lo = line;
                        }
                        line_hi = line_hi.max(line);
                    }
                }
                LoopRecord {
                    header: l.header,
                    end: l.end,
                    func: image
                        .func_at(l.header)
                        .map_or_else(|| NO_FUNC.to_string(), |f| f.name.clone()),
                    line_lo,
                    line_hi,
                    depth: l.max_depth,
                    trips: l.trips,
                    entries: l.entries,
                    exec: 0,
                    repeated: 0,
                    unique_repeatable: 0,
                    class_exec: [0; 6],
                    class_repeated: [0; 6],
                }
            })
            .collect();

        let mut path_exec = vec![0u64; self.paths.len()];
        let mut path_rep = vec![0u64; self.paths.len()];
        let (mut no_loop_exec, mut no_loop_repeated) = (0u64, 0u64);
        for s in stats {
            let pid = self.assign.get(s.index as usize).copied().unwrap_or(0) as usize;
            path_exec[pid] += s.exec;
            path_rep[pid] += s.repeated;
            match self.paths[pid].last() {
                Some(&lid) => {
                    let class = image
                        .text
                        .get(s.index as usize)
                        .and_then(|&w| instrep_isa::decode(w).ok())
                        .map_or(InsnClass::System, |i| InsnClass::of(&i));
                    let rec = &mut recs[lid as usize];
                    rec.exec += s.exec;
                    rec.repeated += s.repeated;
                    rec.unique_repeatable += s.unique_repeatable;
                    rec.class_exec[class as usize] += s.exec;
                    rec.class_repeated[class as usize] += s.repeated;
                }
                None => {
                    no_loop_exec += s.exec;
                    no_loop_repeated += s.repeated;
                }
            }
        }

        let mut paths: Vec<LoopPathStats> = Vec::new();
        for (pid, ids) in self.paths.iter().enumerate() {
            if path_exec[pid] == 0 && path_rep[pid] == 0 {
                continue;
            }
            paths.push(LoopPathStats {
                headers: ids.iter().map(|&lid| self.loops[lid as usize].header).collect(),
                exec: path_exec[pid],
                repeated: path_rep[pid],
            });
        }
        paths.sort_by(|a, b| a.headers.cmp(&b.headers));
        recs.sort_by_key(|r| r.header);

        self.finished = Some(LoopNestProfile {
            loops: recs,
            paths,
            no_loop_exec,
            no_loop_repeated,
            back_edges: self.back_edges,
            irregular: self.irregular,
            max_depth: self.max_depth_seen,
        });
    }

    /// The finished profile (empty if the run trapped before finalize).
    pub fn finish(self) -> LoopNestProfile {
        self.finished.unwrap_or_default()
    }
}

/// One detected loop with full attribution — the finalize join of the
/// nest structure against the tracker's per-static statistics.
///
/// `exec`/`repeated`/`unique_repeatable` are *self* counts: events
/// whose innermost enclosing loop is this one (nested inner loops keep
/// their own).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// Header PC (the back-edge target).
    pub header: u32,
    /// Highest body PC observed (the latch).
    pub end: u32,
    /// Function owning the header, or `"(outside-function)"`.
    pub func: String,
    /// Lowest MiniC source line in the body span (0 = no line info).
    pub line_lo: u32,
    /// Highest MiniC source line in the body span.
    pub line_hi: u32,
    /// Deepest nest position the loop ran at (1 = outermost).
    pub depth: u32,
    /// Back edges taken to the header.
    pub trips: u64,
    /// Times the loop was entered.
    pub entries: u64,
    /// Dynamic executions attributed to this loop as innermost.
    pub exec: u64,
    /// Repeated executions attributed to this loop as innermost.
    pub repeated: u64,
    /// Unique repeatable instances attributed to this loop.
    pub unique_repeatable: u64,
    /// Per-[`InsnClass`] exec counts, in `InsnClass::ALL` order.
    pub class_exec: [u64; 6],
    /// Per-[`InsnClass`] repeated counts, in `InsnClass::ALL` order.
    pub class_repeated: [u64; 6],
}

impl LoopRecord {
    /// Fraction of this loop's executions classified repeated.
    pub fn repeat_rate(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.repeated as f64 / self.exec as f64
        }
    }
}

/// One executed loop-nest path (outermost header first; empty = code
/// outside any loop) with the events attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopPathStats {
    /// Header PCs from outermost to innermost.
    pub headers: Vec<u32>,
    /// Dynamic executions under exactly this path.
    pub exec: u64,
    /// Repeated executions under exactly this path.
    pub repeated: u64,
}

/// The finished loop-nest profile for one workload, produced by the
/// pipeline's finalize phase when [`Session::loops`](crate::Session::loops)
/// is set.
///
/// # Examples
///
/// ```
/// use instrep_core::{AnalysisConfig, Session};
///
/// let image = instrep_minicc::build(r#"
///     int main() {
///         int i; int s = 0;
///         for (i = 0; i < 500; i++) s += i & 3;
///         return s & 0xff;
///     }
/// "#)?;
/// let ir = Session::new(AnalysisConfig::default()).loops(true).run_one(&image, Vec::new())?;
/// let loops = ir.loops.expect("loops were requested");
/// assert!(!loops.loops.is_empty());
/// assert_eq!(loops.total_exec(), ir.report.dynamic_total);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopNestProfile {
    /// Detected loops, ordered by header PC.
    pub loops: Vec<LoopRecord>,
    /// Executed paths (lexicographic by header chain; the empty no-loop
    /// path first when it executed anything).
    pub paths: Vec<LoopPathStats>,
    /// Dynamic executions outside every loop.
    pub no_loop_exec: u64,
    /// Repeated executions outside every loop.
    pub no_loop_repeated: u64,
    /// Back edges observed in the window.
    pub back_edges: u64,
    /// Irregular (irreducible/multi-entry) edges degraded gracefully.
    pub irregular: u64,
    /// Deepest nest observed.
    pub max_depth: u32,
}

/// Per-depth rollup row: `(depth, paths, exec, repeated)`. Depth 0 is
/// the no-loop residue.
pub type DepthRollup = (u32, u64, u64, u64);

impl LoopNestProfile {
    /// Dynamic executions summed over every path — equals the tracker's
    /// `dynamic_total`.
    pub fn total_exec(&self) -> u64 {
        self.paths.iter().map(|p| p.exec).sum()
    }

    /// Repeated executions summed over every path — equals the
    /// tracker's `dynamic_repeated`.
    pub fn total_repeated(&self) -> u64 {
        self.paths.iter().map(|p| p.repeated).sum()
    }

    /// Dynamic executions attributed to some loop.
    pub fn loop_exec(&self) -> u64 {
        self.total_exec() - self.no_loop_exec
    }

    /// Repeated executions attributed to some loop.
    pub fn loop_repeated(&self) -> u64 {
        self.total_repeated() - self.no_loop_repeated
    }

    /// Per-depth rollups, depth ascending (0 = outside every loop).
    pub fn depth_rollups(&self) -> Vec<DepthRollup> {
        let mut out: Vec<DepthRollup> = Vec::new();
        for p in &self.paths {
            let d = p.headers.len() as u32;
            match out.iter_mut().find(|r| r.0 == d) {
                Some(r) => {
                    r.1 += 1;
                    r.2 += p.exec;
                    r.3 += p.repeated;
                }
                None => out.push((d, 1, p.exec, p.repeated)),
            }
        }
        out.sort_by_key(|r| r.0);
        out
    }

    /// Per-class rollups of loop-attributed events, in
    /// [`InsnClass::ALL`] order (all six classes, for a stable document
    /// shape).
    pub fn class_rollups(&self) -> Vec<(InsnClass, u64, u64)> {
        InsnClass::ALL
            .iter()
            .map(|&class| {
                let i = class as usize;
                let exec: u64 = self.loops.iter().map(|l| l.class_exec[i]).sum();
                let rep: u64 = self.loops.iter().map(|l| l.class_repeated[i]).sum();
                (class, exec, rep)
            })
            .collect()
    }

    /// The `k` loops with the most repeated events (repeated
    /// descending, header ascending as the deterministic tiebreak).
    pub fn top_loops(&self, k: usize) -> Vec<&LoopRecord> {
        let mut refs: Vec<&LoopRecord> = self.loops.iter().collect();
        refs.sort_by(|a, b| b.repeated.cmp(&a.repeated).then(a.header.cmp(&b.header)));
        refs.truncate(k);
        refs
    }

    /// Repeated events covered by the top-`k` loops.
    pub fn top_k_repeated(&self, k: usize) -> u64 {
        self.top_loops(k).iter().map(|l| l.repeated).sum()
    }

    /// Per-source-line maximum loop-nest depth, from each loop's body
    /// line span — the `--annotate` loop column.
    pub fn line_depths(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for l in self.loops.iter().filter(|l| l.line_lo != 0) {
            for line in l.line_lo..=l.line_hi {
                match out.iter_mut().find(|(ln, _)| *ln == line) {
                    Some((_, d)) => *d = (*d).max(l.depth),
                    None => out.push((line, l.depth)),
                }
            }
        }
        out.sort_by_key(|&(ln, _)| ln);
        out
    }

    /// Folded frame for one header: `function@0xheader`.
    fn frame(&self, header: u32) -> String {
        match self.loops.binary_search_by_key(&header, |l| l.header) {
            Ok(i) => format!("{}@{:#010x}", self.loops[i].func, header),
            Err(_) => format!("?@{header:#010x}"),
        }
    }
}

/// The loops document behind `instrep-repro --loops-out` /
/// `--loops-folded`: run parameters plus one [`LoopNestProfile`] per
/// workload, in workload order.
#[derive(Debug)]
pub struct LoopsReport {
    /// Scale label (`"tiny"`, `"small"`, `"full"`).
    pub scale: String,
    /// Input-stream seed.
    pub seed: u64,
    /// `k` for the redundancy summary's top-k coverage.
    pub top: usize,
    /// `(workload name, profile)` in fixed workload order.
    pub workloads: Vec<(String, LoopNestProfile)>,
}

impl LoopsReport {
    /// Renders the schema-v1 JSON document: header, then per workload
    /// the loop table, per-depth and per-class rollups, and the
    /// redundancy summary. Key order is fixed; byte-reproducible.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.workloads.len() * 2048);
        s.push_str("{\n");
        push_kv_u64(&mut s, 1, "schema_version", u64::from(LOOPS_SCHEMA_VERSION), true);
        push_kv_str(&mut s, 1, "kind", "loops", true);
        push_kv_str(&mut s, 1, "scale", &self.scale, true);
        push_kv_u64(&mut s, 1, "seed", self.seed, true);
        // No `jobs` field on purpose: the document is byte-identical for
        // every worker count, and recording one would break that.
        push_kv_u64(&mut s, 1, "top", self.top as u64, true);
        indent(&mut s, 1);
        s.push_str("\"workloads\": [\n");
        for (wi, (name, p)) in self.workloads.iter().enumerate() {
            indent(&mut s, 2);
            s.push_str("{\n");
            push_kv_str(&mut s, 3, "name", name, true);
            push_kv_u64(&mut s, 3, "dynamic_total", p.total_exec(), true);
            push_kv_u64(&mut s, 3, "dynamic_repeated", p.total_repeated(), true);
            push_kv_u64(&mut s, 3, "loops_discovered", p.loops.len() as u64, true);
            push_kv_u64(&mut s, 3, "back_edges", p.back_edges, true);
            push_kv_u64(&mut s, 3, "irregular_edges", p.irregular, true);
            push_kv_u64(&mut s, 3, "max_depth", u64::from(p.max_depth), true);
            push_kv_u64(&mut s, 3, "no_loop_exec", p.no_loop_exec, true);
            push_kv_u64(&mut s, 3, "no_loop_repeated", p.no_loop_repeated, true);

            indent(&mut s, 3);
            s.push_str("\"loops\": [\n");
            for (i, l) in p.loops.iter().enumerate() {
                push_loop(&mut s, l, i + 1 < p.loops.len());
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            indent(&mut s, 3);
            s.push_str("\"depths\": [\n");
            let depths = p.depth_rollups();
            for (i, &(depth, paths, exec, repeated)) in depths.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str("{\n");
                push_kv_u64(&mut s, 5, "depth", u64::from(depth), true);
                push_kv_u64(&mut s, 5, "paths", paths, true);
                push_kv_u64(&mut s, 5, "exec", exec, true);
                push_kv_u64(&mut s, 5, "repeated", repeated, true);
                let rate = if exec == 0 { 0.0 } else { repeated as f64 / exec as f64 };
                push_kv_f64(&mut s, 5, "repeat_rate", rate, false);
                indent(&mut s, 4);
                s.push_str(&format!("}}{}\n", comma(i + 1 < depths.len())));
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            indent(&mut s, 3);
            s.push_str("\"classes\": [\n");
            let classes = p.class_rollups();
            for (i, &(class, exec, repeated)) in classes.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str("{\n");
                push_kv_str(&mut s, 5, "class", class.label(), true);
                push_kv_u64(&mut s, 5, "exec", exec, true);
                push_kv_u64(&mut s, 5, "repeated", repeated, true);
                let rate = if exec == 0 { 0.0 } else { repeated as f64 / exec as f64 };
                push_kv_f64(&mut s, 5, "repeat_rate", rate, false);
                indent(&mut s, 4);
                s.push_str(&format!("}}{}\n", comma(i + 1 < classes.len())));
            }
            indent(&mut s, 3);
            s.push_str("],\n");

            // The Shaccour & Mansour-style summary: how much of the
            // workload's repetition the top-k loops alone explain.
            let total_rep = p.total_repeated();
            let top_k_rep = p.top_k_repeated(self.top);
            indent(&mut s, 3);
            s.push_str("\"redundancy\": {\n");
            push_kv_u64(&mut s, 4, "total_repeated", total_rep, true);
            push_kv_u64(&mut s, 4, "loop_repeated", p.loop_repeated(), true);
            push_kv_u64(&mut s, 4, "top_k", self.top as u64, true);
            push_kv_u64(&mut s, 4, "top_k_repeated", top_k_rep, true);
            let cover = |n: u64| if total_rep == 0 { 0.0 } else { n as f64 / total_rep as f64 };
            push_kv_f64(&mut s, 4, "top_k_coverage", cover(top_k_rep), true);
            push_kv_f64(&mut s, 4, "loop_coverage", cover(p.loop_repeated()), false);
            indent(&mut s, 3);
            s.push_str("}\n");

            indent(&mut s, 2);
            s.push_str(&format!("}}{}\n", comma(wi + 1 < self.workloads.len())));
        }
        indent(&mut s, 1);
        s.push_str("]\n}\n");
        s
    }

    /// Renders collapsed-stack lines keyed by loop-nest path:
    ///
    /// ```text
    /// <workload>;executed;<func>@0x<outer>;<func>@0x<inner> <exec>
    /// <workload>;repeated;(no-loop) <repeated>
    /// ```
    ///
    /// The `executed`/`repeated` frame keeps the two weightings of the
    /// same stacks from merging; zero-count lines are omitted
    /// (flamegraph tools reject them).
    pub fn to_folded(&self) -> String {
        let mut s = String::with_capacity(
            self.workloads.iter().map(|(_, p)| p.paths.len()).sum::<usize>() * 2 * 48,
        );
        for (name, p) in &self.workloads {
            for weight in ["executed", "repeated"] {
                for path in &p.paths {
                    let n = if weight == "executed" { path.exec } else { path.repeated };
                    if n == 0 {
                        continue;
                    }
                    let stack = if path.headers.is_empty() {
                        "(no-loop)".to_string()
                    } else {
                        path.headers.iter().map(|&h| p.frame(h)).collect::<Vec<String>>().join(";")
                    };
                    s.push_str(&format!("{name};{weight};{stack} {n}\n"));
                }
            }
        }
        s
    }
}

/// Emits one loop object at indent level 4.
fn push_loop(s: &mut String, l: &LoopRecord, more: bool) {
    indent(s, 4);
    s.push_str("{\n");
    push_kv_raw(s, 5, "header", &format!("\"{:#010x}\"", l.header), true);
    push_kv_raw(s, 5, "end", &format!("\"{:#010x}\"", l.end), true);
    push_kv_str(s, 5, "function", &l.func, true);
    push_kv_u64(s, 5, "line_lo", u64::from(l.line_lo), true);
    push_kv_u64(s, 5, "line_hi", u64::from(l.line_hi), true);
    push_kv_u64(s, 5, "depth", u64::from(l.depth), true);
    push_kv_u64(s, 5, "trips", l.trips, true);
    push_kv_u64(s, 5, "entries", l.entries, true);
    push_kv_u64(s, 5, "exec", l.exec, true);
    push_kv_u64(s, 5, "repeated", l.repeated, true);
    push_kv_u64(s, 5, "unique_repeatable", l.unique_repeatable, true);
    push_kv_f64(s, 5, "repeat_rate", l.repeat_rate(), false);
    indent(s, 4);
    s.push_str(&format!("}}{}\n", comma(more)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisConfig;
    use crate::Session;
    use instrep_isa::abi::TEXT_BASE;
    use instrep_isa::{AluOp, Insn, Reg};
    use instrep_minicc::build;

    fn profiled(src: &str) -> (LoopNestProfile, crate::WorkloadReport) {
        let image = build(src).unwrap();
        let ir = Session::new(AnalysisConfig::default())
            .loops(true)
            .run_one(&image, Vec::new())
            .unwrap();
        (ir.loops.expect("loops were requested"), ir.report)
    }

    const NEST_SRC: &str = r#"int main() {
    int i;
    int j;
    int s = 0;
    for (i = 0; i < 40; i++) {
        for (j = 0; j < 25; j++) {
            s += (i * j) & 15;
        }
    }
    return s & 0xff;
}
"#;

    #[test]
    fn detects_a_two_deep_nest_with_exact_trip_counts() {
        let (p, report) = profiled(NEST_SRC);
        assert!(p.max_depth >= 2, "nest depth {}", p.max_depth);
        assert_eq!(p.total_exec(), report.dynamic_total);
        assert_eq!(p.total_repeated(), report.dynamic_repeated);
        // The inner loop's self exec dominates, and its trip count
        // reflects 40 entries of ~25 trips.
        let inner = p.loops.iter().max_by_key(|l| l.exec).unwrap();
        assert!(inner.depth >= 2, "hottest loop is the inner one: {inner:?}");
        assert!(inner.trips >= 40 * 24, "trips {}", inner.trips);
        assert!(inner.entries >= 40, "entries {}", inner.entries);
        assert!(inner.line_lo >= 5 && inner.line_hi >= inner.line_lo, "{inner:?}");
        assert_eq!(inner.func, "main");
        // Attribution conserves: loop self counts + no-loop = totals.
        let self_exec: u64 = p.loops.iter().map(|l| l.exec).sum();
        assert_eq!(self_exec + p.no_loop_exec, p.total_exec());
        // Well-formed structure flags.
        assert!(p.back_edges > 1000);
        assert!(p.loops.windows(2).all(|w| w[0].header < w[1].header));
    }

    #[test]
    fn rollups_conserve_totals() {
        let (p, _) = profiled(NEST_SRC);
        let depths = p.depth_rollups();
        assert_eq!(depths.iter().map(|r| r.2).sum::<u64>(), p.total_exec());
        assert_eq!(depths.iter().map(|r| r.3).sum::<u64>(), p.total_repeated());
        assert!(depths.iter().any(|r| r.0 >= 2), "a depth-2 row exists: {depths:?}");
        let classes = p.class_rollups();
        assert_eq!(classes.len(), 6);
        assert_eq!(classes.iter().map(|c| c.1).sum::<u64>(), p.loop_exec());
        assert_eq!(classes.iter().map(|c| c.2).sum::<u64>(), p.loop_repeated());
        // Top-k coverage is monotone in k and bounded by loop coverage.
        assert!(p.top_k_repeated(1) <= p.top_k_repeated(2));
        assert!(p.top_k_repeated(usize::MAX) == p.loop_repeated());
    }

    #[test]
    fn calls_from_a_loop_attribute_the_callee_to_the_loop() {
        let (p, report) = profiled(
            r#"int work(int x) {
    return (x * 3) & 127;
}
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 200; i++) {
        s += work(i & 7);
    }
    return s & 0xff;
}
"#,
        );
        // The callee's instructions land under the caller's loop: the
        // loop's self exec far exceeds its own body size * trips.
        let hot = p.loops.iter().max_by_key(|l| l.exec).unwrap();
        assert!(hot.exec > report.dynamic_total / 2, "{hot:?} of {}", report.dynamic_total);
        assert_eq!(p.total_exec(), report.dynamic_total);
    }

    #[test]
    fn zero_iteration_loops_are_invisible_and_harmless() {
        // The inner while never runs (condition false on entry): no
        // back edge, no loop record, nothing lost.
        let (p, report) = profiled(
            r#"int main() {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++) {
        while (s > 1000000) {
            s -= 1;
        }
        s += i & 3;
    }
    return s & 0xff;
}
"#,
        );
        assert_eq!(p.total_exec(), report.dynamic_total);
        assert!(p.max_depth >= 1);
        // Only the for loop (plus any runtime loops) shows up in main.
        let in_main: Vec<&LoopRecord> = p.loops.iter().filter(|l| l.func == "main").collect();
        assert_eq!(in_main.len(), 1, "zero-iteration while detected: {in_main:?}");
    }

    #[test]
    fn do_while_single_back_edge_body_counts_once_per_trip() {
        // `while` with a body that always runs at least once and a
        // single backward branch — the do-while shape at the ISA level.
        let (p, _) = profiled(
            r#"int main() {
    int n = 77;
    int steps = 0;
    while (n != 1) {
        if (n & 1) { n = 3 * n + 1; } else { n = n / 2; }
        steps += 1;
    }
    return steps & 0xff;
}
"#,
        );
        let hot = p.loops.iter().filter(|l| l.func == "main").max_by_key(|l| l.trips).unwrap();
        assert!(hot.trips >= 20, "collatz(77) runs 22 steps: {hot:?}");
        assert!(hot.exec > 0 && hot.depth >= 1);
    }

    // --- synthetic-event edge cases -----------------------------------

    /// A minimal event at static index `idx` with control effect `ctrl`.
    fn ev(idx: u32, ctrl: Option<CtrlEffect>) -> Event {
        Event {
            pc: TEXT_BASE + idx * 4,
            index: idx,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1: 0,
            in2: 0,
            out: Some(0),
            mem: None,
            ctrl,
        }
    }

    fn back(idx: u32, to: u32) -> Event {
        ev(idx, Some(CtrlEffect::Branch { taken: true, target: TEXT_BASE + to * 4 }))
    }

    #[test]
    fn irregular_multi_entry_flow_is_counted_not_fatal() {
        let mut p = LoopProfiler::new(64);
        // Open a loop with header 10, body to 20.
        for _ in 0..3 {
            for i in 10..20 {
                p.observe(&ev(i, None), true);
            }
            p.observe(&back(20, 10), true);
        }
        assert_eq!(p.loops_discovered(), 1);
        // Now a back edge from inside that body to 5 — below the active
        // header: crosses the loop boundary. Counted, not fatal.
        p.observe(&back(15, 5), true);
        assert_eq!(p.irregular(), 1);
        assert_eq!(p.loops_discovered(), 2);
        // The profiler keeps attributing events afterwards.
        for i in 5..8 {
            p.observe(&ev(i, None), true);
        }
        assert!(p.back_edges() >= 4);
    }

    #[test]
    fn returns_unwind_nest_levels_opened_in_the_callee() {
        let mut p = LoopProfiler::new(64);
        // Caller loop at header 2.
        p.observe(&back(6, 2), true);
        assert_eq!(p.max_depth(), 1);
        // Call into a function with its own loop.
        p.observe(&ev(3, Some(CtrlEffect::Call { target: 0, args: [0; 8], sp: 0, ra: 0 })), true);
        p.observe(&back(40, 30), true);
        assert_eq!(p.max_depth(), 2);
        // Return: the callee's level closes even though its body region
        // is nowhere near the return target.
        p.observe(&ev(42, Some(CtrlEffect::Return { target: TEXT_BASE + 16, v0: 0 })), true);
        p.observe(&ev(4, None), true);
        // Still inside the caller loop only.
        p.observe(&back(6, 2), true);
        assert_eq!(p.loops_discovered(), 2);
        assert_eq!(p.max_depth(), 2);
    }

    #[test]
    fn skip_phase_discovers_nothing_but_tracks_call_depth() {
        let mut p = LoopProfiler::new(64);
        p.observe(&back(6, 2), false);
        assert_eq!(p.loops_discovered(), 0);
        assert_eq!(p.back_edges(), 0);
        p.observe(&ev(3, Some(CtrlEffect::Call { target: 0, args: [0; 8], sp: 0, ra: 0 })), false);
        // Measured events then nest correctly relative to the skip-phase
        // call depth.
        p.observe(&back(40, 30), true);
        p.observe(&ev(42, Some(CtrlEffect::Return { target: TEXT_BASE, v0: 0 })), true);
        assert_eq!(p.loops_discovered(), 1);
    }

    #[test]
    fn json_and_folded_are_well_formed() {
        let (p, report) = profiled(NEST_SRC);
        let doc = LoopsReport {
            scale: "tiny".into(),
            seed: 1,
            top: 3,
            workloads: vec![("nest".into(), p)],
        };
        let json = doc.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n  \"kind\": \"loops\",\n"));
        for key in ["\"loops\": [", "\"depths\": [", "\"classes\": [", "\"redundancy\": {"] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let folded = doc.to_folded();
        let mut exec_total = 0u64;
        let mut rep_total = 0u64;
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            let count: u64 = count.parse().unwrap();
            assert!(count > 0, "zero-weight folded line: {line}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert_eq!(frames[0], "nest");
            match frames[1] {
                "executed" => exec_total += count,
                "repeated" => rep_total += count,
                other => panic!("bad weight frame {other}"),
            }
            assert!(frames[2] == "(no-loop)" || frames[2].contains("@0x"), "{stack}");
        }
        assert_eq!(exec_total, report.dynamic_total);
        assert_eq!(rep_total, report.dynamic_repeated);
    }

    #[test]
    fn empty_profile_renders_cleanly() {
        let p = LoopNestProfile::default();
        assert_eq!(p.total_exec(), 0);
        assert!(p.top_loops(5).is_empty());
        assert_eq!(p.class_rollups().len(), 6);
        let doc = LoopsReport {
            scale: "tiny".into(),
            seed: 0,
            top: 5,
            workloads: vec![("empty".into(), p)],
        };
        assert!(doc.to_folded().is_empty());
        assert!(doc.to_json().contains("\"loops_discovered\": 0,"));
    }
}
