//! Word-granular paged shadow-tag storage.
//!
//! The global and local source analyses shadow every written memory word
//! with a one-byte tag. Workloads touch those words millions of times,
//! so the store mirrors the simulator's memory layout: a flat page table
//! over 4 KiB pages allocated on first write, keeping a lookup to one
//! bounds check and two dereferences instead of a hash-map probe. A
//! byte value of `0` means "no tag recorded"; callers layer their own
//! encoding (and any occupancy counting) on top of that.

/// Words shadowed per page (4 KiB of simulated memory).
const WORDS_PER_PAGE: usize = 1 << 10;
const NUM_PAGES: usize = 1 << 20;

type Page = [u8; WORDS_PER_PAGE];

/// A sparse map from memory word to tag byte, zero meaning absent.
#[derive(Debug)]
pub(crate) struct ShadowPages {
    pages: Vec<Option<Box<Page>>>,
}

impl ShadowPages {
    pub(crate) fn new() -> ShadowPages {
        ShadowPages { pages: vec![None; NUM_PAGES] }
    }

    /// Tag byte of the word containing `addr` (0 when never set).
    #[inline]
    pub(crate) fn get(&self, addr: u32) -> u8 {
        match &self.pages[(addr >> 12) as usize] {
            Some(p) => p[((addr >> 2) as usize) & (WORDS_PER_PAGE - 1)],
            None => 0,
        }
    }

    /// Mutable tag byte of the word containing `addr`, materializing its
    /// (zero-filled) page on first touch.
    #[inline]
    pub(crate) fn slot_mut(&mut self, addr: u32) -> &mut u8 {
        let page = self.pages[(addr >> 12) as usize]
            .get_or_insert_with(|| Box::new([0u8; WORDS_PER_PAGE]));
        &mut page[((addr >> 2) as usize) & (WORDS_PER_PAGE - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_words_read_zero_and_writes_round_trip() {
        let mut s = ShadowPages::new();
        assert_eq!(s.get(0x1000_0000), 0);
        assert_eq!(s.get(0xffff_fffc), 0);
        *s.slot_mut(0x1000_0000) = 7;
        assert_eq!(s.get(0x1000_0000), 7);
        // Sub-word addresses alias their containing word.
        assert_eq!(s.get(0x1000_0003), 7);
        *s.slot_mut(0x1000_0002) = 9;
        assert_eq!(s.get(0x1000_0000), 9);
        // Neighbouring words are independent.
        assert_eq!(s.get(0x1000_0004), 0);
    }
}
