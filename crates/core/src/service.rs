//! Typed wire contract for the `instrep-serve` analysis daemon.
//!
//! The daemon speaks newline-delimited JSON over a Unix domain socket:
//! each request is one line, each response is one line, and both carry
//! [`SERVICE_SCHEMA_VERSION`] so either side can reject a peer from a
//! different release *by name* instead of misparsing it. This module is
//! the single source of truth for that contract — the daemon
//! (`crates/serve`), the `instrep_client` example, and the stress tests
//! all encode and decode through the same [`Request`] / [`Response`]
//! types, so they cannot drift apart.
//!
//! Encoding is canonical: fixed field order, compact (no insignificant
//! whitespace), and deterministic for deterministic inputs. The
//! `report` payload in particular ([`report_json`]) is a pure function
//! of the [`WorkloadReport`], which is what lets the stress suite
//! assert a daemon response is *byte-identical* to a direct
//! [`Session`](crate::Session) run. Decoded responses keep the raw
//! payload text (see [`ReportPayload::report`]) so that comparison
//! needs no re-encoding step.
//!
//! # Examples
//!
//! ```
//! use instrep_core::service::{Request, Response};
//!
//! let req = Request::workload(7, "compress").scale("tiny").seed(1998);
//! let line = req.encode();
//! assert_eq!(Request::decode(&line).unwrap(), req);
//! ```

use std::collections::BTreeMap;

use crate::loops::LoopNestProfile;
use crate::metrics::{json_f64, json_string, WorkloadMetrics};
use crate::pipeline::WorkloadReport;
use crate::profile::InstructionProfile;
use crate::session::CacheOutcome;
use instrep_sim::RunOutcome;

/// Version of the request/response wire schema. Bump on any change to
/// field names, meanings, or structure; peers reject other versions by
/// name (see [`RequestError::UnsupportedVersion`]).
pub const SERVICE_SCHEMA_VERSION: u32 = 1;

/// `(skip, window)` analysis windows per scale name, mirroring
/// `instrep-repro`'s scale handling so a daemon request for
/// `{"workload": "compress", "scale": "tiny"}` derives the same
/// [`CacheKey`](crate::CacheKey) as the CLI run — warm daemon requests
/// hit entries a CLI run populated and vice versa.
pub fn scale_windows(scale: &str) -> Option<(u64, u64)> {
    match scale {
        "tiny" => Some((20_000, 400_000)),
        "small" => Some((200_000, 4_000_000)),
        "full" => Some((1_000_000, 25_000_000)),
        _ => None,
    }
}

/// What a [`Request`] asks the daemon to analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestSource {
    /// A named workload from the in-tree roster
    /// (`instrep_workloads::by_name`).
    Workload(String),
    /// Raw MiniC source, compiled by the daemon before analysis.
    Source(String),
}

/// One analysis request. Build with [`Request::workload`] or
/// [`Request::raw_source`] plus the setter methods, then
/// [`Request::encode`] to a wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to analyze.
    pub source: RequestSource,
    /// Scale name (`"tiny"`, `"small"`, `"full"`) selecting the default
    /// skip/window pair ([`scale_windows`]).
    pub scale: String,
    /// Input-generation seed (named workloads only).
    pub seed: u64,
    /// Override the scale's skip count.
    pub skip: Option<u64>,
    /// Override the scale's measurement window.
    pub window: Option<u64>,
    /// Override the default top-k for the report's coverage vectors.
    pub top_k: Option<usize>,
    /// Also return a phase-metrics payload (wall times are
    /// nondeterministic, so this payload is excluded from byte-identity
    /// guarantees).
    pub want_metrics: bool,
    /// Also return a per-PC profile summary (bypasses the cache).
    pub want_profile: bool,
    /// Also return a loop-nest profile summary (bypasses the cache).
    pub want_loops: bool,
}

impl Request {
    /// A request for a named in-tree workload at the default
    /// tiny/seed-1998 point.
    pub fn workload(id: u64, name: &str) -> Request {
        Request::new(id, RequestSource::Workload(name.to_string()))
    }

    /// A request carrying raw MiniC source for the daemon to compile.
    pub fn raw_source(id: u64, minic: &str) -> Request {
        Request::new(id, RequestSource::Source(minic.to_string()))
    }

    fn new(id: u64, source: RequestSource) -> Request {
        Request {
            id,
            source,
            scale: "tiny".to_string(),
            seed: 1998,
            skip: None,
            window: None,
            top_k: None,
            want_metrics: false,
            want_profile: false,
            want_loops: false,
        }
    }

    /// Sets the scale name.
    pub fn scale(mut self, scale: &str) -> Request {
        self.scale = scale.to_string();
        self
    }

    /// Sets the input seed.
    pub fn seed(mut self, seed: u64) -> Request {
        self.seed = seed;
        self
    }

    /// Overrides the skip count.
    pub fn skip(mut self, skip: u64) -> Request {
        self.skip = Some(skip);
        self
    }

    /// Overrides the measurement window.
    pub fn window(mut self, window: u64) -> Request {
        self.window = Some(window);
        self
    }

    /// Requests the phase-metrics payload.
    pub fn with_metrics(mut self) -> Request {
        self.want_metrics = true;
        self
    }

    /// Requests the profile payload.
    pub fn with_profile(mut self) -> Request {
        self.want_profile = true;
        self
    }

    /// Requests the loops payload.
    pub fn with_loops(mut self) -> Request {
        self.want_loops = true;
        self
    }

    /// Canonical one-line encoding (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!("{{\"schema_version\":{SERVICE_SCHEMA_VERSION},\"id\":{}", self.id));
        match &self.source {
            RequestSource::Workload(name) => {
                s.push_str(&format!(
                    ",\"workload\":{},\"scale\":{},\"seed\":{}",
                    json_string(name),
                    json_string(&self.scale),
                    self.seed
                ));
            }
            RequestSource::Source(minic) => {
                s.push_str(&format!(
                    ",\"source\":{},\"scale\":{}",
                    json_string(minic),
                    json_string(&self.scale)
                ));
            }
        }
        if let Some(skip) = self.skip {
            s.push_str(&format!(",\"skip\":{skip}"));
        }
        if let Some(window) = self.window {
            s.push_str(&format!(",\"window\":{window}"));
        }
        if let Some(top_k) = self.top_k {
            s.push_str(&format!(",\"top_k\":{top_k}"));
        }
        let mut want = Vec::new();
        if self.want_metrics {
            want.push("\"metrics\"");
        }
        if self.want_profile {
            want.push("\"profile\"");
        }
        if self.want_loops {
            want.push("\"loops\"");
        }
        if !want.is_empty() {
            s.push_str(&format!(",\"want\":[{}]", want.join(",")));
        }
        s.push('}');
        s
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// [`RequestError::UnsupportedVersion`] when the line carries a
    /// schema version this release does not speak;
    /// [`RequestError::Malformed`] for everything else (bad JSON,
    /// missing/conflicting fields, unknown scale or want entry).
    pub fn decode(line: &str) -> Result<Request, RequestError> {
        let doc =
            Json::parse(line).map_err(|e| RequestError::Malformed(format!("bad JSON: {e}")))?;
        let version = doc
            .get("schema_version")
            .and_then(Json::num)
            .ok_or_else(|| RequestError::Malformed("missing schema_version".to_string()))?;
        if version != f64::from(SERVICE_SCHEMA_VERSION) {
            return Err(RequestError::UnsupportedVersion { got: version as u64 });
        }
        let id = doc
            .get("id")
            .and_then(Json::num)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or_else(|| RequestError::Malformed("missing or non-integer id".to_string()))?
            as u64;
        let source = match (doc.get("workload"), doc.get("source")) {
            (Some(w), None) => RequestSource::Workload(
                w.str()
                    .ok_or_else(|| {
                        RequestError::Malformed("workload must be a string".to_string())
                    })?
                    .to_string(),
            ),
            (None, Some(s)) => RequestSource::Source(
                s.str()
                    .ok_or_else(|| RequestError::Malformed("source must be a string".to_string()))?
                    .to_string(),
            ),
            (Some(_), Some(_)) => {
                return Err(RequestError::Malformed(
                    "request carries both workload and source".to_string(),
                ))
            }
            (None, None) => {
                return Err(RequestError::Malformed(
                    "request needs a workload name or raw source".to_string(),
                ))
            }
        };
        let mut req = Request::new(id, source);
        if let Some(scale) = doc.get("scale") {
            let scale = scale
                .str()
                .ok_or_else(|| RequestError::Malformed("scale must be a string".to_string()))?;
            if scale_windows(scale).is_none() {
                return Err(RequestError::Malformed(format!(
                    "unknown scale `{scale}` (expected tiny, small, or full)"
                )));
            }
            req.scale = scale.to_string();
        }
        req.seed = opt_u64(&doc, "seed")?.unwrap_or(req.seed);
        req.skip = opt_u64(&doc, "skip")?;
        req.window = opt_u64(&doc, "window")?;
        req.top_k = opt_u64(&doc, "top_k")?.map(|k| k as usize);
        if let Some(want) = doc.get("want") {
            for item in want.items() {
                match item.str() {
                    Some("metrics") => req.want_metrics = true,
                    Some("profile") => req.want_profile = true,
                    Some("loops") => req.want_loops = true,
                    other => {
                        return Err(RequestError::Malformed(format!(
                            "unknown want entry {:?} (expected metrics, profile, or loops)",
                            other.unwrap_or("<non-string>")
                        )))
                    }
                }
            }
        }
        Ok(req)
    }
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            v.num().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| Some(n as u64)).ok_or_else(
                || RequestError::Malformed(format!("{key} must be a non-negative integer")),
            )
        }
    }
}

/// Why a [`Request`] line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line carried a schema version this release does not speak.
    UnsupportedVersion {
        /// The version the peer asked for.
        got: u64,
    },
    /// Anything else: bad JSON, missing fields, unknown values.
    Malformed(String),
}

impl RequestError {
    /// Human-readable description, naming the version mismatch when
    /// that is the cause.
    pub fn message(&self) -> String {
        match self {
            RequestError::UnsupportedVersion { got } => format!(
                "unsupported schema version {got} (this daemon speaks version \
                 {SERVICE_SCHEMA_VERSION})"
            ),
            RequestError::Malformed(msg) => msg.clone(),
        }
    }
}

/// Machine-readable error category carried by an error [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not decode, or named an unknown workload,
    /// or its raw source failed to compile.
    BadRequest,
    /// The request's schema version is not spoken here.
    UnsupportedVersion,
    /// The request line exceeded the daemon's size cap.
    Oversized,
    /// The bounded request queue is full; retry after
    /// [`ServiceError::retry_after_ms`].
    Overloaded,
    /// The request's wall-clock budget expired before a result was
    /// ready. The result, if one is still being computed, is abandoned.
    Timeout,
    /// The daemon is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The simulation trapped or the daemon hit an internal fault.
    AnalysisFailed,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::AnalysisFailed => "analysis_failed",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        [
            ErrorKind::BadRequest,
            ErrorKind::UnsupportedVersion,
            ErrorKind::Oversized,
            ErrorKind::Overloaded,
            ErrorKind::Timeout,
            ErrorKind::ShuttingDown,
            ErrorKind::AnalysisFailed,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// An error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// The request id this answers (0 when the request never decoded
    /// far enough to learn one).
    pub id: u64,
    /// Error category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorKind::Overloaded`]: how long the client should wait
    /// before retrying.
    pub retry_after_ms: Option<u64>,
}

/// A successful analysis response. The payload fields hold canonical
/// JSON object *text* (produced by [`report_json`] and friends), kept
/// as raw strings through decode so clients can compare bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportPayload {
    /// The request id this answers.
    pub id: u64,
    /// How the shared analysis cache participated.
    pub cache: CacheOutcome,
    /// Canonical report object ([`report_json`]).
    pub report: String,
    /// Phase-metrics object, when requested (wall times are
    /// nondeterministic).
    pub metrics: Option<String>,
    /// Profile summary object, when requested.
    pub profile: Option<String>,
    /// Loop-nest summary object, when requested.
    pub loops: Option<String>,
}

/// One wire response: a report or an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Analysis succeeded.
    Report(ReportPayload),
    /// Analysis was rejected or failed.
    Error(ServiceError),
}

/// Wire name of a [`CacheOutcome`].
pub fn cache_outcome_name(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Uncached => "uncached",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Hit => "hit",
        CacheOutcome::VerifyOk => "verify_ok",
        CacheOutcome::VerifyMismatch => "verify_mismatch",
    }
}

fn cache_outcome_from_name(name: &str) -> Option<CacheOutcome> {
    [
        CacheOutcome::Uncached,
        CacheOutcome::Miss,
        CacheOutcome::Hit,
        CacheOutcome::VerifyOk,
        CacheOutcome::VerifyMismatch,
    ]
    .into_iter()
    .find(|o| cache_outcome_name(*o) == name)
}

impl Response {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Report(p) => p.id,
            Response::Error(e) => e.id,
        }
    }

    /// Canonical one-line encoding (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Report(p) => {
                let mut s = format!(
                    "{{\"schema_version\":{SERVICE_SCHEMA_VERSION},\"id\":{},\"ok\":true,\
                     \"cache\":{},\"report\":{}",
                    p.id,
                    json_string(cache_outcome_name(p.cache)),
                    p.report
                );
                if let Some(m) = &p.metrics {
                    s.push_str(&format!(",\"metrics\":{m}"));
                }
                if let Some(pr) = &p.profile {
                    s.push_str(&format!(",\"profile\":{pr}"));
                }
                if let Some(l) = &p.loops {
                    s.push_str(&format!(",\"loops\":{l}"));
                }
                s.push('}');
                s
            }
            Response::Error(e) => {
                let mut s = format!(
                    "{{\"schema_version\":{SERVICE_SCHEMA_VERSION},\"id\":{},\"ok\":false,\
                     \"error\":{},\"message\":{}",
                    e.id,
                    json_string(e.kind.name()),
                    json_string(&e.message)
                );
                if let Some(ms) = e.retry_after_ms {
                    s.push_str(&format!(",\"retry_after_ms\":{ms}"));
                }
                s.push('}');
                s
            }
        }
    }

    /// Parses one wire line, preserving payload objects as raw text.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for lines that are not a
    /// valid response of this schema version.
    pub fn decode(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let version =
            doc.get("schema_version").and_then(Json::num).ok_or("missing schema_version")?;
        if version != f64::from(SERVICE_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported schema version {version} (this client speaks version \
                 {SERVICE_SCHEMA_VERSION})"
            ));
        }
        let id = doc.get("id").and_then(Json::num).ok_or("missing id")? as u64;
        match doc.get("ok").and_then(Json::bool) {
            Some(true) => {
                let cache = doc
                    .get("cache")
                    .and_then(Json::str)
                    .and_then(cache_outcome_from_name)
                    .ok_or("missing or unknown cache outcome")?;
                let report =
                    raw_member(line, "report").ok_or("missing report payload")?.to_string();
                Ok(Response::Report(ReportPayload {
                    id,
                    cache,
                    report,
                    metrics: raw_member(line, "metrics").map(str::to_string),
                    profile: raw_member(line, "profile").map(str::to_string),
                    loops: raw_member(line, "loops").map(str::to_string),
                }))
            }
            Some(false) => {
                let kind = doc
                    .get("error")
                    .and_then(Json::str)
                    .and_then(ErrorKind::from_name)
                    .ok_or("missing or unknown error kind")?;
                let message =
                    doc.get("message").and_then(Json::str).unwrap_or_default().to_string();
                let retry_after_ms =
                    doc.get("retry_after_ms").and_then(Json::num).map(|n| n as u64);
                Ok(Response::Error(ServiceError { id, kind, message, retry_after_ms }))
            }
            None => Err("missing ok flag".to_string()),
        }
    }
}

/// Extracts the raw text of a top-level object-valued member from a
/// canonically encoded line: the bytes from the member's `{` through
/// its matching `}`, brace-counted with string awareness. Returns
/// `None` when the key is absent (or not at the top level).
fn raw_member<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\":");
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                // A top-level key match must start exactly here.
                if depth == 1 && line[i..].starts_with(&needle) {
                    let start = i + needle.len();
                    if bytes.get(start) == Some(&b'{') {
                        return raw_object(line, start);
                    }
                }
                in_string = true;
                i += 1;
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// The object starting at `start` (which must be a `{`), through its
/// matching close brace.
fn raw_object(line: &str, start: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (off, &b) in bytes[start..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..start + off + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

// --- canonical payload encoders ---------------------------------------

/// Canonical compact JSON object for a [`WorkloadReport`]'s headline
/// scalars — the same figures `export::csv_summary` flattens, in fixed
/// order with 6-decimal rates. A pure function of the report, so two
/// equal reports encode byte-identically.
pub fn report_json(r: &WorkloadReport) -> String {
    let outcome = match r.outcome {
        RunOutcome::Exited(code) => format!("exited:{code}"),
        RunOutcome::MaxedOut => "maxed_out".to_string(),
    };
    format!(
        "{{\"outcome\":{},\"dynamic_total\":{},\"dynamic_repeated\":{},\
         \"repetition_rate\":{:.6},\"static_total\":{},\"static_executed\":{},\
         \"static_repeated\":{},\"unique_repeatable\":{},\"avg_repeats\":{:.3},\
         \"funcs_called\":{},\"dynamic_calls\":{},\"all_arg_rate\":{:.6},\
         \"no_arg_rate\":{:.6},\"pure_rate\":{:.6},\"pure_all_arg_rate\":{:.6},\
         \"reuse_hit_rate\":{:.6},\"reuse_capture_rate\":{:.6},\"lvp_hit_rate\":{:.6},\
         \"stride_hit_rate\":{:.6},\"prologue_coverage\":{:.6}}}",
        json_string(&outcome),
        r.dynamic_total,
        r.dynamic_repeated,
        r.repetition_rate(),
        r.static_total,
        r.static_executed,
        r.static_repeated,
        r.unique_repeatable,
        r.avg_repeats,
        r.funcs_called,
        r.dynamic_calls,
        r.all_arg_rate,
        r.no_arg_rate,
        r.pure_rate,
        r.pure_all_arg_rate,
        r.reuse.hit_rate(),
        r.reuse.repeated_capture_rate(),
        r.predict.hit_rate(),
        r.stride.hit_rate(),
        r.prologue_coverage,
    )
}

/// Compact phase-metrics object. Wall times come from the clock, so
/// this payload is *not* part of the byte-identity contract.
pub fn metrics_json(m: &WorkloadMetrics) -> String {
    let phases: Vec<String> = m
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"wall_ms\":{},\"events\":{}}}",
                json_string(p.name),
                json_f64(p.wall_ms()),
                p.events
            )
        })
        .collect();
    format!("{{\"events_total\":{},\"phases\":[{}]}}", m.events_total(), phases.join(","))
}

/// Compact profile summary: site count plus the top-`k` sites by
/// repeated executions (ties broken by pc — deterministic).
pub fn profile_json(p: &InstructionProfile, k: usize) -> String {
    let mut sites: Vec<_> = p.sites.iter().collect();
    sites.sort_by(|a, b| b.repeated.cmp(&a.repeated).then(a.pc.cmp(&b.pc)));
    let top: Vec<String> = sites
        .iter()
        .take(k)
        .map(|s| {
            format!(
                "{{\"pc\":{},\"func\":{},\"line\":{},\"exec\":{},\"repeated\":{}}}",
                s.pc,
                json_string(&s.func),
                s.line,
                s.exec,
                s.repeated
            )
        })
        .collect();
    format!("{{\"sites\":{},\"top\":[{}]}}", p.sites.len(), top.join(","))
}

/// Compact loop-nest summary: totals plus the top-`k` loops by
/// repeated executions.
pub fn loops_json(p: &LoopNestProfile, k: usize) -> String {
    let top: Vec<String> = p
        .top_loops(k)
        .iter()
        .map(|l| {
            format!(
                "{{\"header\":{},\"func\":{},\"depth\":{},\"trips\":{},\"exec\":{},\
                 \"repeated\":{}}}",
                l.header,
                json_string(&l.func),
                l.depth,
                l.trips,
                l.exec,
                l.repeated
            )
        })
        .collect();
    format!(
        "{{\"total_exec\":{},\"total_repeated\":{},\"loop_exec\":{},\"loop_repeated\":{},\
         \"top\":[{}]}}",
        p.total_exec(),
        p.total_repeated(),
        p.loop_exec(),
        p.loop_repeated(),
        top.join(",")
    )
}

// --- minimal strict JSON parser ---------------------------------------

/// A parsed JSON value. The workspace is hermetic (no serde); this
/// covers the full JSON grammar except `\uXXXX` escapes beyond the
/// Basic Multilingual Plane, which the canonical encoders never emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicates rejected).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset for the first violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected byte `{}` at offset {}", c as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                c if c < 0x20 => return Err("raw control character in string".to_string()),
                _ => {
                    // Consume one UTF-8 scalar (input came from a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisConfig;
    use crate::session::Session;

    fn small_report() -> WorkloadReport {
        let image = instrep_minicc::build(
            "int main() { int i; int s = 0; for (i = 0; i < 400; i++) s += i & 7; return s & 0xff; }",
        )
        .unwrap();
        Session::new(AnalysisConfig::default()).run_one(&image, Vec::new()).unwrap().report
    }

    #[test]
    fn request_roundtrips_canonically() {
        let cases = [
            Request::workload(1, "compress"),
            Request::workload(42, "go").scale("small").seed(7).skip(100).window(5000),
            Request::raw_source(3, "int main() { return 0; }").with_metrics().with_loops(),
            Request::workload(9, "perl").with_profile(),
        ];
        for req in cases {
            let line = req.encode();
            assert!(!line.contains('\n'), "one line: {line}");
            let back = Request::decode(&line).unwrap();
            assert_eq!(back, req);
            // Canonical: re-encoding the decoded request is byte-identical.
            assert_eq!(back.encode(), line);
        }
    }

    #[test]
    fn request_rejects_unknown_versions_by_name() {
        let line = r#"{"schema_version":99,"id":1,"workload":"compress"}"#;
        let err = Request::decode(line).unwrap_err();
        assert_eq!(err, RequestError::UnsupportedVersion { got: 99 });
        assert!(err.message().contains("unsupported schema version 99"));
        assert!(err.message().contains("speaks version 1"));
    }

    #[test]
    fn request_rejects_malformed_lines() {
        for line in [
            "not json at all",
            r#"{"id":1,"workload":"compress"}"#,
            r#"{"schema_version":1,"workload":"compress"}"#,
            r#"{"schema_version":1,"id":1}"#,
            r#"{"schema_version":1,"id":1,"workload":"go","source":"int main(){}"}"#,
            r#"{"schema_version":1,"id":1,"workload":"go","scale":"huge"}"#,
            r#"{"schema_version":1,"id":1,"workload":"go","want":["everything"]}"#,
            r#"{"schema_version":1,"id":1,"workload":"go","seed":-3}"#,
        ] {
            assert!(
                matches!(Request::decode(line), Err(RequestError::Malformed(_))),
                "should reject: {line}"
            );
        }
    }

    #[test]
    fn report_json_is_deterministic_and_flat() {
        let r = small_report();
        let a = report_json(&r);
        let b = report_json(&r);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"outcome\":"));
        // Flat object: parses, and no nested objects (raw_member relies
        // on report being extractable by simple brace matching).
        let doc = Json::parse(&a).unwrap();
        assert!(doc.get("dynamic_total").and_then(Json::num).unwrap() > 0.0);
        assert!(doc.get("repetition_rate").is_some());
        assert_eq!(a.matches('{').count(), 1);
    }

    #[test]
    fn response_roundtrips_and_preserves_report_bytes() {
        let r = small_report();
        let payload = ReportPayload {
            id: 17,
            cache: CacheOutcome::Hit,
            report: report_json(&r),
            metrics: None,
            profile: None,
            loops: None,
        };
        let resp = Response::Report(payload.clone());
        let line = resp.encode();
        assert!(!line.contains('\n'));
        let back = Response::decode(&line).unwrap();
        match back {
            Response::Report(p) => {
                assert_eq!(p.id, 17);
                assert_eq!(p.cache, CacheOutcome::Hit);
                // The decoded payload is the exact bytes the encoder put
                // on the wire — the byte-identity hook for the stress
                // suite.
                assert_eq!(p.report, payload.report);
                assert!(p.metrics.is_none());
            }
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn response_carries_optional_payloads_with_nested_arrays() {
        let mut m = WorkloadMetrics::default();
        m.record_phase_ns("measure", 2_000_000, 1000);
        m.record_phase_ns("finalize", 1_000_000, 0);
        let payload = ReportPayload {
            id: 4,
            cache: CacheOutcome::Uncached,
            report: report_json(&small_report()),
            metrics: Some(metrics_json(&m)),
            profile: None,
            loops: None,
        };
        let line = Response::Report(payload.clone()).encode();
        let back = Response::decode(&line).unwrap();
        match back {
            Response::Report(p) => {
                assert_eq!(p.metrics.as_deref(), payload.metrics.as_deref());
                let mdoc = Json::parse(p.metrics.as_deref().unwrap()).unwrap();
                assert_eq!(mdoc.get("events_total").and_then(Json::num), Some(1000.0));
                assert_eq!(mdoc.get("phases").map(|p| p.items().len()), Some(2));
            }
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn error_responses_roundtrip() {
        let err = ServiceError {
            id: 0,
            kind: ErrorKind::Overloaded,
            message: "queue full (4 waiting)".to_string(),
            retry_after_ms: Some(50),
        };
        let line = Response::Error(err.clone()).encode();
        match Response::decode(&line).unwrap() {
            Response::Error(e) => {
                assert_eq!(e, err);
                assert_eq!(e.kind.name(), "overloaded");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn raw_member_is_string_aware() {
        // A string value containing braces and the key name must not
        // confuse the extractor.
        let line = r#"{"a":"not {the} \"report\":{","report":{"x":1,"ys":[{"z":2}]},"b":3}"#;
        assert_eq!(raw_member(line, "report"), Some(r#"{"x":1,"ys":[{"z":2}]}"#));
        assert_eq!(raw_member(line, "missing"), None);
        // Non-top-level keys are not extracted.
        let nested = r#"{"outer":{"report":{"x":1}}}"#;
        assert_eq!(raw_member(nested, "report"), None);
    }

    #[test]
    fn scale_windows_match_the_cli() {
        assert_eq!(scale_windows("tiny"), Some((20_000, 400_000)));
        assert_eq!(scale_windows("small"), Some((200_000, 4_000_000)));
        assert_eq!(scale_windows("full"), Some((1_000_000, 25_000_000)));
        assert_eq!(scale_windows("huge"), None);
    }
}
