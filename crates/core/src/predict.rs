//! Last-value predictor — the value-prediction comparison point for the
//! paper's §7 discussion.
//!
//! Where the reuse buffer (Table 10) requires the *inputs* to match
//! before supplying a result non-speculatively, a last-value predictor
//! (Lipasti & Shen) speculates that an instruction will produce the same
//! *output* as its previous instance, inputs unseen. Comparing the two
//! hit rates on the same trace quantifies the paper's point that
//! repetition characteristics should inform both mechanisms.

use instrep_sim::Event;

use crate::fxhash::FxHashMap;

/// Statistics from the predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Instructions with a register result observed.
    pub predictable: u64,
    /// Correct last-value predictions.
    pub correct: u64,
    /// Correct predictions whose instruction the tracker also classified
    /// repeated (input-and-output match).
    pub correct_and_repeated: u64,
}

impl PredictStats {
    /// Last-value hit rate over result-producing instructions.
    pub fn hit_rate(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictable as f64
        }
    }

    /// Fraction of correct predictions that were *not* full repetitions:
    /// output repeated while inputs changed — the value-locality surplus
    /// a predictor exploits and a reuse buffer cannot.
    pub fn output_only_share(&self) -> f64 {
        if self.correct == 0 {
            0.0
        } else {
            (self.correct - self.correct_and_repeated) as f64 / self.correct as f64
        }
    }
}

/// An unbounded per-static-instruction last-value table.
///
/// Unbounded capacity makes this the *upper bound* for any finite
/// last-value predictor, the cleanest comparison against Table 10.
#[derive(Debug, Default)]
pub struct LastValuePredictor {
    last: FxHashMap<u32, u32>,
    stats: PredictStats,
}

impl LastValuePredictor {
    /// Creates an empty predictor.
    pub fn new() -> LastValuePredictor {
        LastValuePredictor::default()
    }

    /// Observes one retired instruction; returns whether the last-value
    /// prediction would have been correct. Instructions without a
    /// register result are not predicted.
    pub fn observe(&mut self, ev: &Event, repeated: bool) -> bool {
        let Some(out) = ev.out else { return false };
        self.stats.predictable += 1;
        let hit = match self.last.insert(ev.index, out) {
            Some(prev) => prev == out,
            None => false,
        };
        if hit {
            self.stats.correct += 1;
            if repeated {
                self.stats.correct_and_repeated += 1;
            }
        }
        hit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PredictStats {
        &self.stats
    }

    /// Static instructions with a table entry (occupancy gauge).
    pub fn table_entries(&self) -> u64 {
        self.last.len() as u64
    }
}

/// Statistics from the stride predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// Instructions with a register result observed.
    pub predictable: u64,
    /// Correct stride predictions.
    pub correct: u64,
}

impl StrideStats {
    /// Stride hit rate over result-producing instructions.
    pub fn hit_rate(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictable as f64
        }
    }
}

/// An unbounded two-delta stride predictor (Wang & Franklin's hybrid
/// component): predicts `last + stride`, updating the stride only after
/// it has been observed twice in a row, which filters one-off jumps.
///
/// Together with [`LastValuePredictor`] this brackets the §7 discussion:
/// last-value captures constancy, stride captures arithmetic sequences
/// (loop counters, addresses) that never *repeat* under the paper's
/// definition at all.
#[derive(Debug, Default)]
pub struct StridePredictor {
    /// Per static instruction: (last value, confirmed stride, candidate
    /// stride).
    table: FxHashMap<u32, (u32, u32, u32)>,
    stats: StrideStats,
}

impl StridePredictor {
    /// Creates an empty predictor.
    pub fn new() -> StridePredictor {
        StridePredictor::default()
    }

    /// Observes one retired instruction; returns whether the stride
    /// prediction would have been correct.
    pub fn observe(&mut self, ev: &Event) -> bool {
        let Some(out) = ev.out else { return false };
        self.stats.predictable += 1;
        let hit = match self.table.get_mut(&ev.index) {
            None => {
                self.table.insert(ev.index, (out, 0, 0));
                false
            }
            Some((last, stride, candidate)) => {
                let predicted = last.wrapping_add(*stride);
                let hit = predicted == out;
                let new_delta = out.wrapping_sub(*last);
                if new_delta == *candidate {
                    *stride = new_delta;
                } else {
                    *candidate = new_delta;
                }
                *last = out;
                hit
            }
        };
        if hit {
            self.stats.correct += 1;
        }
        hit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StrideStats {
        &self.stats
    }

    /// Static instructions with a table entry (occupancy gauge).
    pub fn table_entries(&self) -> u64 {
        self.table.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, Insn, Reg};

    fn ev(index: u32, in1: u32, out: Option<u32>) -> Event {
        Event {
            pc: 0x40_0000 + index * 4,
            index,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1,
            in2: 0,
            out,
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn predicts_stable_outputs() {
        let mut p = LastValuePredictor::new();
        assert!(!p.observe(&ev(0, 1, Some(7)), false)); // cold
        assert!(p.observe(&ev(0, 1, Some(7)), true)); // same in+out
        assert!(p.observe(&ev(0, 2, Some(7)), false)); // same OUT, new inputs
        assert!(!p.observe(&ev(0, 2, Some(9)), false)); // output changed
        let s = p.stats();
        assert_eq!(s.predictable, 4);
        assert_eq!(s.correct, 2);
        assert_eq!(s.correct_and_repeated, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert!((s.output_only_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ignores_resultless_instructions() {
        let mut p = LastValuePredictor::new();
        assert!(!p.observe(&ev(0, 1, None), false));
        assert_eq!(p.stats().predictable, 0);
    }

    #[test]
    fn per_static_isolation() {
        let mut p = LastValuePredictor::new();
        p.observe(&ev(0, 1, Some(5)), false);
        assert!(!p.observe(&ev(1, 1, Some(5)), false)); // different pc
        assert!(p.observe(&ev(1, 1, Some(5)), true));
    }

    #[test]
    fn stride_predicts_arithmetic_sequences() {
        let mut p = StridePredictor::new();
        // Loop counter 10, 13, 16, 19, ...: two observations confirm the
        // stride, after which every value hits.
        let mut hits = 0;
        for (i, v) in (0..10).map(|i| (i, 10 + 3 * i)).collect::<Vec<_>>() {
            hits += u32::from(p.observe(&ev(0, i, Some(v))));
        }
        // First value is cold; second has stride 0; third confirms the
        // candidate stride; values from the fourth onward all hit.
        assert_eq!(hits, 7, "stats: {:?}", p.stats());
        // A last-value predictor scores zero on the same stream.
        let mut lvp = LastValuePredictor::new();
        let mut lvp_hits = 0;
        for (i, v) in (0..10).map(|i| (i, 10 + 3 * i)).collect::<Vec<_>>() {
            lvp_hits += u32::from(lvp.observe(&ev(0, i, Some(v)), false));
        }
        assert_eq!(lvp_hits, 0);
    }

    #[test]
    fn stride_zero_degenerates_to_last_value() {
        let mut p = StridePredictor::new();
        assert!(!p.observe(&ev(0, 0, Some(7))));
        assert!(p.observe(&ev(0, 0, Some(7))));
        assert!(p.observe(&ev(0, 0, Some(7))));
        assert!((p.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn one_off_jump_does_not_destroy_stride() {
        let mut p = StridePredictor::new();
        for v in [0u32, 1, 2, 3] {
            p.observe(&ev(0, 0, Some(v)));
        }
        // Jump, then resume the old stride from the new base: the
        // confirmed stride (1) survives the single disturbance.
        assert!(!p.observe(&ev(0, 0, Some(100))));
        assert!(p.observe(&ev(0, 0, Some(101))));
    }
}
