//! Value predictors — the value-prediction comparison points for the
//! paper's §7 discussion.
//!
//! Where the reuse buffer (Table 10) requires the *inputs* to match
//! before supplying a result non-speculatively, a last-value predictor
//! (Lipasti & Shen) speculates that an instruction will produce the same
//! *output* as its previous instance, inputs unseen; a two-delta stride
//! predictor (Wang & Franklin's hybrid component) extends that to
//! arithmetic sequences. Comparing their hit rates on the same trace
//! quantifies the paper's point that repetition characteristics should
//! inform both mechanisms.
//!
//! Both predictors key on the same per-static-instruction slot, so they
//! share one dense table ([`ValuePredictors`]): one index computation
//! and one cache line per event instead of two of each.

use instrep_sim::Event;

/// Statistics from the last-value predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Instructions with a register result observed.
    pub predictable: u64,
    /// Correct last-value predictions.
    pub correct: u64,
    /// Correct predictions whose instruction the tracker also classified
    /// repeated (input-and-output match).
    pub correct_and_repeated: u64,
}

impl PredictStats {
    /// Last-value hit rate over result-producing instructions.
    pub fn hit_rate(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictable as f64
        }
    }

    /// Fraction of correct predictions that were *not* full repetitions:
    /// output repeated while inputs changed — the value-locality surplus
    /// a predictor exploits and a reuse buffer cannot.
    pub fn output_only_share(&self) -> f64 {
        if self.correct == 0 {
            0.0
        } else {
            (self.correct - self.correct_and_repeated) as f64 / self.correct as f64
        }
    }
}

/// Statistics from the stride predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// Instructions with a register result observed.
    pub predictable: u64,
    /// Correct stride predictions.
    pub correct: u64,
}

impl StrideStats {
    /// Stride hit rate over result-producing instructions.
    pub fn hit_rate(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictable as f64
        }
    }
}

/// One dense per-static-instruction predictor slot.
///
/// `lvp` is `0` when empty, else bit 32 plus the last observed value.
/// `seen == 0` marks the stride half empty; both halves fill on the
/// same event (the first observed register result at this index).
/// `pub(crate)` so the fused tier (`core::fused`) can embed one per hot
/// row.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PredSlot {
    lvp: u64,
    last: u32,
    stride: u32,
    candidate: u32,
    seen: u32,
}

/// What one [`step_slot`] call did, for the caller's bookkeeping.
pub(crate) struct StepOutcome {
    /// The slot was empty before this event (count it as a new entry).
    pub new_entry: bool,
    /// The last-value prediction would have been correct.
    pub lvp_hit: bool,
    /// The stride prediction would have been correct.
    pub stride_hit: bool,
}

/// Advances one predictor slot by one observed register result and
/// accumulates the hit statistics — the single source of truth for both
/// predictor halves, shared by [`ValuePredictors::observe`] and the
/// fused tier's hot-row slots.
#[inline]
pub(crate) fn step_slot(
    s: &mut PredSlot,
    out: u32,
    repeated: bool,
    lvp_stats: &mut PredictStats,
    stride_stats: &mut StrideStats,
) -> StepOutcome {
    lvp_stats.predictable += 1;
    stride_stats.predictable += 1;

    // Last-value half.
    let prev = s.lvp;
    let new_entry = prev == 0;
    s.lvp = (1 << 32) | u64::from(out);
    let lvp_hit = prev != 0 && prev as u32 == out;
    if lvp_hit {
        lvp_stats.correct += 1;
        if repeated {
            lvp_stats.correct_and_repeated += 1;
        }
    }

    // Two-delta stride half.
    let stride_hit = if s.seen == 0 {
        s.last = out;
        s.stride = 0;
        s.candidate = 0;
        s.seen = 1;
        false
    } else {
        let predicted = s.last.wrapping_add(s.stride);
        let hit = predicted == out;
        let new_delta = out.wrapping_sub(s.last);
        if new_delta == s.candidate {
            s.stride = new_delta;
        } else {
            s.candidate = new_delta;
        }
        s.last = out;
        hit
    };
    if stride_hit {
        stride_stats.correct += 1;
    }
    StepOutcome { new_entry, lvp_hit, stride_hit }
}

/// Unbounded per-static-instruction last-value and two-delta stride
/// predictors over one shared table.
///
/// Unbounded capacity makes these the *upper bound* for any finite
/// predictor, the cleanest comparison against Table 10. The last-value
/// half captures constancy; the stride half captures arithmetic
/// sequences (loop counters, addresses) that never *repeat* under the
/// paper's definition at all. The two-delta stride updates its stride
/// only after the same delta is observed twice in a row, which filters
/// one-off jumps.
#[derive(Debug, Default)]
pub struct ValuePredictors {
    /// Dense slots indexed by `Event::index`. The text segment is small
    /// and indices are dense, so a flat table beats a hash map on the
    /// per-event path.
    table: Vec<PredSlot>,
    entries: u64,
    lvp_stats: PredictStats,
    stride_stats: StrideStats,
}

impl ValuePredictors {
    /// Creates empty predictors.
    pub fn new() -> ValuePredictors {
        ValuePredictors::default()
    }

    /// Observes one retired instruction; returns whether the last-value
    /// and stride predictions would have been correct. Instructions
    /// without a register result are not predicted.
    pub fn observe(&mut self, ev: &Event, repeated: bool) -> (bool, bool) {
        let Some(out) = ev.out else { return (false, false) };
        let idx = ev.index as usize;
        if idx >= self.table.len() {
            self.table.resize(idx + 1, PredSlot::default());
        }
        let step = step_slot(
            &mut self.table[idx],
            out,
            repeated,
            &mut self.lvp_stats,
            &mut self.stride_stats,
        );
        if step.new_entry {
            self.entries += 1;
        }
        (step.lvp_hit, step.stride_hit)
    }

    /// Accumulated last-value statistics.
    pub fn lvp_stats(&self) -> &PredictStats {
        &self.lvp_stats
    }

    /// Accumulated stride statistics.
    pub fn stride_stats(&self) -> &StrideStats {
        &self.stride_stats
    }

    /// Static instructions with a last-value entry (occupancy gauge).
    pub fn lvp_entries(&self) -> u64 {
        self.entries
    }

    /// Static instructions with a stride entry (occupancy gauge; fills
    /// on the same events as the last-value half).
    pub fn stride_entries(&self) -> u64 {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, Insn, Reg};

    fn ev(index: u32, in1: u32, out: Option<u32>) -> Event {
        Event {
            pc: 0x40_0000 + index * 4,
            index,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1,
            in2: 0,
            out,
            mem: None,
            ctrl: None,
        }
    }

    fn lvp(p: &mut ValuePredictors, e: &Event, repeated: bool) -> bool {
        p.observe(e, repeated).0
    }

    fn stride(p: &mut ValuePredictors, e: &Event) -> bool {
        p.observe(e, false).1
    }

    #[test]
    fn predicts_stable_outputs() {
        let mut p = ValuePredictors::new();
        assert!(!lvp(&mut p, &ev(0, 1, Some(7)), false)); // cold
        assert!(lvp(&mut p, &ev(0, 1, Some(7)), true)); // same in+out
        assert!(lvp(&mut p, &ev(0, 2, Some(7)), false)); // same OUT, new inputs
        assert!(!lvp(&mut p, &ev(0, 2, Some(9)), false)); // output changed
        let s = p.lvp_stats();
        assert_eq!(s.predictable, 4);
        assert_eq!(s.correct, 2);
        assert_eq!(s.correct_and_repeated, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert!((s.output_only_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ignores_resultless_instructions() {
        let mut p = ValuePredictors::new();
        assert_eq!(p.observe(&ev(0, 1, None), false), (false, false));
        assert_eq!(p.lvp_stats().predictable, 0);
        assert_eq!(p.stride_stats().predictable, 0);
    }

    #[test]
    fn per_static_isolation() {
        let mut p = ValuePredictors::new();
        lvp(&mut p, &ev(0, 1, Some(5)), false);
        assert!(!lvp(&mut p, &ev(1, 1, Some(5)), false)); // different pc
        assert!(lvp(&mut p, &ev(1, 1, Some(5)), true));
        assert_eq!(p.lvp_entries(), 2);
        assert_eq!(p.stride_entries(), 2);
    }

    #[test]
    fn stride_predicts_arithmetic_sequences() {
        let mut p = ValuePredictors::new();
        // Loop counter 10, 13, 16, 19, ...: two observations confirm the
        // stride, after which every value hits.
        let mut hits = 0;
        let mut lvp_hits = 0;
        for (i, v) in (0..10).map(|i| (i, 10 + 3 * i)) {
            let (l, s) = p.observe(&ev(0, i, Some(v)), false);
            hits += u32::from(s);
            lvp_hits += u32::from(l);
        }
        // First value is cold; second has stride 0; third confirms the
        // candidate stride; values from the fourth onward all hit.
        assert_eq!(hits, 7, "stats: {:?}", p.stride_stats());
        // The last-value half scores zero on the same stream.
        assert_eq!(lvp_hits, 0);
    }

    #[test]
    fn stride_zero_degenerates_to_last_value() {
        let mut p = ValuePredictors::new();
        assert!(!stride(&mut p, &ev(0, 0, Some(7))));
        assert!(stride(&mut p, &ev(0, 0, Some(7))));
        assert!(stride(&mut p, &ev(0, 0, Some(7))));
        assert!((p.stride_stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn one_off_jump_does_not_destroy_stride() {
        let mut p = ValuePredictors::new();
        for v in [0u32, 1, 2, 3] {
            p.observe(&ev(0, 0, Some(v)), false);
        }
        // Jump, then resume the old stride from the new base: the
        // confirmed stride (1) survives the single disturbance.
        assert!(!stride(&mut p, &ev(0, 0, Some(100))));
        assert!(stride(&mut p, &ev(0, 0, Some(101))));
    }
}
