//! Hardware reuse-buffer model (paper §7, Table 10).
//!
//! Models the `S_v` reuse scheme of Sodani & Sohi's "Dynamic Instruction
//! Reuse": a PC-indexed, set-associative buffer storing each
//! instruction's operand values and result. An instruction *reuses* a
//! buffered entry when its PC and operand values match. Load safety is
//! modeled with oracle invalidation: a matching entry whose recorded
//! outcome no longer equals the actual outcome (memory was clobbered)
//! counts as a miss and is refreshed — equivalent to a buffer with
//! perfect store-invalidations.

use instrep_sim::Event;

/// Geometry of a [`ReuseBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseConfig {
    /// Total entries (must be a multiple of `ways`).
    pub entries: usize,
    /// Set associativity.
    pub ways: usize,
}

impl ReuseConfig {
    /// The paper's configuration: 8K entries, 4-way set associative.
    pub fn paper() -> ReuseConfig {
        ReuseConfig { entries: 8192, ways: 4 }
    }

    fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

impl Default for ReuseConfig {
    fn default() -> ReuseConfig {
        ReuseConfig::paper()
    }
}

/// Match state of one buffer entry. Kept apart from the LRU stamps so a
/// set's four keys fit one cache line on the per-event lookup path; the
/// stamp array doubles as the valid flag (`lru == 0` means never filled,
/// the clock starts at 1).
#[derive(Debug, Clone, Copy, Default)]
struct Key {
    pc: u32,
    in1: u32,
    in2: u32,
    outcome: u32,
}

/// Statistics reported by the reuse buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Instructions observed.
    pub total: u64,
    /// Instructions that hit (reused a buffered result).
    pub hits: u64,
    /// Hits among instructions the tracker classified repeated.
    pub repeated_hits: u64,
    /// Instructions the tracker classified repeated.
    pub repeated_total: u64,
    /// Matching entries invalidated by a changed outcome (stale loads).
    pub stale: u64,
}

impl ReuseStats {
    /// Table 10 column 1: fraction of all instructions reused.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.total)
    }

    /// Table 10 column 2: fraction of repeated instructions captured.
    pub fn repeated_capture_rate(&self) -> f64 {
        ratio(self.repeated_hits, self.repeated_total)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A set-associative reuse buffer.
///
/// # Examples
///
/// ```
/// use instrep_core::{ReuseBuffer, ReuseConfig};
///
/// let buf = ReuseBuffer::new(ReuseConfig::paper());
/// assert_eq!(buf.stats().total, 0);
/// ```
#[derive(Debug)]
pub struct ReuseBuffer {
    cfg: ReuseConfig,
    /// `sets - 1` when the set count is a power of two (the paper
    /// geometry and every test geometry), so the per-event set index is
    /// a mask instead of an integer division; `None` falls back to
    /// modulo for odd geometries.
    set_mask: Option<usize>,
    keys: Vec<Key>,
    lru: Vec<u64>,
    clock: u64,
    stats: ReuseStats,
}

impl ReuseBuffer {
    /// Creates a buffer with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `ways` is zero, or `entries` is not a
    /// multiple of `ways`.
    pub fn new(cfg: ReuseConfig) -> ReuseBuffer {
        assert!(cfg.ways > 0 && cfg.entries > 0, "reuse buffer must have entries");
        assert_eq!(cfg.entries % cfg.ways, 0, "entries must be a multiple of ways");
        ReuseBuffer {
            cfg,
            set_mask: cfg.sets().is_power_of_two().then(|| cfg.sets() - 1),
            keys: vec![Key::default(); cfg.entries],
            lru: vec![0; cfg.entries],
            clock: 0,
            stats: ReuseStats::default(),
        }
    }

    /// Observes an instruction; returns whether it hit.
    pub fn observe(&mut self, ev: &Event, repeated: bool) -> bool {
        self.observe_with_outcome(ev, repeated, ev.outcome())
    }

    /// [`ReuseBuffer::observe`] with the event's outcome supplied by the
    /// caller — the fused tier computes `ev.outcome()` exactly once per
    /// event and threads it to every consumer.
    pub(crate) fn observe_with_outcome(
        &mut self,
        ev: &Event,
        repeated: bool,
        outcome: u32,
    ) -> bool {
        self.clock += 1;
        self.stats.total += 1;
        if repeated {
            self.stats.repeated_total += 1;
        }
        let pc_word = (ev.pc >> 2) as usize;
        let set = match self.set_mask {
            Some(mask) => pc_word & mask,
            None => pc_word % self.cfg.sets(),
        };
        let base = set * self.cfg.ways;
        // One bounds check for the whole set; the way loops below are
        // then branch-free on indexing.
        let keys = &mut self.keys[base..base + self.cfg.ways];
        let lru = &mut self.lru[base..base + self.cfg.ways];

        // Lookup.
        for (e, stamp) in keys.iter_mut().zip(lru.iter_mut()) {
            if *stamp != 0 && e.pc == ev.pc && e.in1 == ev.in1 && e.in2 == ev.in2 {
                if e.outcome == outcome {
                    *stamp = self.clock;
                    self.stats.hits += 1;
                    if repeated {
                        self.stats.repeated_hits += 1;
                    }
                    return true;
                }
                // Oracle invalidation: memory changed under a load.
                e.outcome = outcome;
                *stamp = self.clock;
                self.stats.stale += 1;
                return false;
            }
        }

        // Miss: insert via LRU (a zero stamp — never filled — is the
        // least recent of all, so invalid ways are claimed first).
        let victim = (0..lru.len()).min_by_key(|&i| lru[i]).expect("ways is non-empty");
        keys[victim] = Key { pc: ev.pc, in1: ev.in1, in2: ev.in2, outcome };
        lru[victim] = self.clock;
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ReuseStats {
        &self.stats
    }

    /// Number of valid entries currently resident (occupancy gauge;
    /// bounded by `entries`).
    pub fn occupancy(&self) -> u64 {
        self.lru.iter().filter(|&&stamp| stamp != 0).count() as u64
    }

    /// The buffer geometry.
    pub fn config(&self) -> ReuseConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, Insn, Reg};

    fn ev(pc: u32, in1: u32, in2: u32, out: u32) -> Event {
        Event {
            pc,
            index: (pc - 0x40_0000) / 4,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1,
            in2,
            out: Some(out),
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn basic_reuse() {
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 8, ways: 2 });
        assert!(!b.observe(&ev(0x40_0000, 1, 2, 3), false));
        assert!(b.observe(&ev(0x40_0000, 1, 2, 3), true));
        assert!(!b.observe(&ev(0x40_0000, 9, 2, 11), false)); // different inputs
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().repeated_hits, 1);
        assert_eq!(b.stats().total, 3);
    }

    #[test]
    fn stale_outcome_counts_as_miss() {
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 8, ways: 2 });
        b.observe(&ev(0x40_0000, 1, 0, 100), false);
        // Same operands, different outcome: a clobbered load.
        assert!(!b.observe(&ev(0x40_0000, 1, 0, 200), false));
        assert_eq!(b.stats().stale, 1);
        // Entry refreshed: the new outcome now hits.
        assert!(b.observe(&ev(0x40_0000, 1, 0, 200), true));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: three distinct PCs mapping to the same set.
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 2, ways: 2 });
        b.observe(&ev(0x40_0000, 1, 1, 1), false);
        b.observe(&ev(0x40_0004, 2, 2, 2), false);
        // Touch the first to make the second LRU.
        assert!(b.observe(&ev(0x40_0000, 1, 1, 1), true));
        // Insert a third; evicts pc 0x40_0004 (the LRU way).
        b.observe(&ev(0x40_0008, 3, 3, 3), false);
        assert!(!b.observe(&ev(0x40_0004, 2, 2, 2), true)); // miss: was evicted
                                                            // That miss re-inserted pc 0x40_0004 over the now-LRU pc 0x40_0000;
                                                            // pc 0x40_0008 must still be resident.
        assert!(b.observe(&ev(0x40_0008, 3, 3, 3), true));
    }

    #[test]
    fn distinct_pcs_do_not_alias() {
        let mut b = ReuseBuffer::new(ReuseConfig::paper());
        b.observe(&ev(0x40_0000, 1, 2, 3), false);
        assert!(!b.observe(&ev(0x40_2000, 1, 2, 3), false));
    }

    #[test]
    fn capture_rates() {
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 4, ways: 4 });
        b.observe(&ev(0x40_0000, 1, 1, 1), false);
        b.observe(&ev(0x40_0000, 1, 1, 1), true);
        b.observe(&ev(0x40_0000, 2, 2, 2), false);
        assert!((b.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((b.stats().repeated_capture_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = ReuseBuffer::new(ReuseConfig { entries: 6, ways: 4 });
    }

    #[test]
    #[should_panic(expected = "must have entries")]
    fn zero_entries_rejected() {
        let _ = ReuseBuffer::new(ReuseConfig { entries: 0, ways: 4 });
    }

    #[test]
    #[should_panic(expected = "must have entries")]
    fn zero_ways_rejected() {
        let _ = ReuseBuffer::new(ReuseConfig { entries: 8, ways: 0 });
    }

    #[test]
    fn invalid_ways_are_filled_before_any_eviction() {
        // 1 set, 4 ways: four distinct PCs all fit — inserting a new
        // entry must claim an invalid way, never evict a valid one.
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 4, ways: 4 });
        for pc in [0x40_0000u32, 0x40_0004, 0x40_0008, 0x40_000c] {
            assert!(!b.observe(&ev(pc, pc, 0, pc), false));
        }
        assert_eq!(b.occupancy(), 4);
        for pc in [0x40_0000u32, 0x40_0004, 0x40_0008, 0x40_000c] {
            assert!(b.observe(&ev(pc, pc, 0, pc), true), "pc {pc:#x} was evicted prematurely");
        }
    }

    #[test]
    fn oracle_refresh_makes_entry_most_recently_used() {
        // 1 set, 2 ways. A stale refresh must also update recency:
        // the refreshed entry survives the next eviction.
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 2, ways: 2 });
        b.observe(&ev(0x40_0000, 1, 0, 100), false);
        b.observe(&ev(0x40_0004, 2, 2, 2), false);
        // Clobbered load at the first pc: outcome changed, refresh.
        assert!(!b.observe(&ev(0x40_0000, 1, 0, 200), false));
        assert_eq!(b.stats().stale, 1);
        // A third pc evicts the LRU way — now pc 0x40_0004.
        b.observe(&ev(0x40_0008, 3, 3, 3), false);
        assert!(b.observe(&ev(0x40_0000, 1, 0, 200), true), "refreshed entry was evicted");
        assert!(!b.observe(&ev(0x40_0004, 2, 2, 2), true), "stale-LRU entry survived");
    }

    #[test]
    fn oracle_refresh_only_rewrites_outcome() {
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 8, ways: 2 });
        b.observe(&ev(0x40_0000, 1, 0, 100), false);
        // Clobbered: same operands, new outcome — refresh, not hit.
        assert!(!b.observe(&ev(0x40_0000, 1, 0, 200), false));
        // Different operands still miss (the refresh kept the operand
        // match intact rather than wildcarding the entry).
        assert!(!b.observe(&ev(0x40_0000, 9, 0, 200), false));
        // The refreshed (1, 0) -> 200 instance hits; stale counted once.
        // (The operand-9 miss LRU-inserted into the second way, leaving
        // the refreshed entry resident.)
        assert!(b.observe(&ev(0x40_0000, 1, 0, 200), true));
        assert_eq!(b.stats().stale, 1);
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn occupancy_counts_valid_entries_only() {
        let mut b = ReuseBuffer::new(ReuseConfig { entries: 8, ways: 2 });
        assert_eq!(b.occupancy(), 0);
        b.observe(&ev(0x40_0000, 1, 1, 1), false);
        b.observe(&ev(0x40_0000, 2, 2, 2), false);
        assert_eq!(b.occupancy(), 2);
        // A hit does not create a new entry.
        b.observe(&ev(0x40_0000, 1, 1, 1), true);
        assert_eq!(b.occupancy(), 2);
    }
}
