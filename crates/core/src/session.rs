//! The unified analysis entry point: a builder that owns the probe
//! bundle and the cache client.
//!
//! Four PRs of probe growth left `core::pipeline` with six parallel
//! `analyze*` functions, each new feature threading one more parameter
//! through all of them. [`Session`] replaces that surface: configure
//! once, attach whichever observers you want, then [`Session::run`] a
//! batch (or [`Session::run_one`] a single workload). The old functions
//! served their one release as `#[deprecated]` shims and are gone.
//!
//! A configured `Session` is `Send` (pinned by the compile-time
//! assertions in `tests/send_clean.rs`): every borrowed observer is
//! either exclusively owned (`&mut SpanTracer`) or `Sync`
//! ([`AnalysisCache`], [`TelemetryRegistry`]), so a worker pool — the
//! `instrep-serve` daemon — can move per-request sessions freely
//! across threads while sharing one cache and one registry.
//!
//! ```
//! use instrep_core::{AnalysisConfig, AnalysisJob, Session, SpanTracer};
//!
//! let image = instrep_minicc::build(
//!     "int main() { int i; int s = 0; for (i = 0; i < 300; i++) s += i & 7; return s & 0xff; }",
//! )?;
//! let mut tracer = SpanTracer::new();
//! let results = Session::new(AnalysisConfig::default())
//!     .jobs(2)
//!     .metrics(true)
//!     .interval(1000)
//!     .profile(true)
//!     .trace(&mut tracer)
//!     .run(vec![
//!         AnalysisJob { image: &image, input: Vec::new(), label: "a" },
//!         AnalysisJob { image: &image, input: Vec::new(), label: "b" },
//!     ]);
//! for r in results {
//!     let ir = r?;
//!     assert!(ir.report.dynamic_total > 300);
//!     assert!(ir.metrics.is_some() && ir.intervals.is_some() && ir.profile.is_some());
//! }
//! assert_eq!(tracer.spans().iter().filter(|s| s.cat == "workload").count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Caching
//!
//! Attaching an [`AnalysisCache`] makes the session memoize whole
//! workloads: before simulating a job it derives the job's
//! [`CacheKey`](crate::CacheKey) and, on a hit, returns the stored
//! report without executing a single instruction (the job's metrics
//! then contain one `"cache"` phase and nothing else). Misses run
//! normally and populate the cache. [`Session::cache_verify`] turns
//! hits into recompute-and-compare runs — the poisoned-cache detector.
//!
//! Interval sampling and profiling *bypass* the cache (outcome
//! [`CacheOutcome::Uncached`]): entries store only the report, and a
//! hit that silently dropped the requested time series or profile
//! would be worse than a recomputation.

use instrep_asm::Image;
use instrep_sim::{InterpTier, SimError};

use crate::cache::{encode_report, AnalysisCache, CacheKey};
use crate::fused::{AnalysisTier, SplitObservers};
use crate::interval::IntervalSampler;
use crate::loops::LoopProfiler;
use crate::metrics::{PhaseTimer, WorkloadMetrics};
use crate::pipeline::{
    parallel_map_indexed, run_probed, AnalysisConfig, AnalysisJob, InstrumentedReport, Probes,
};
use crate::profile::InstructionProfile;
use crate::telemetry::{LanePhase, PipelineTelemetry, TelemetryRegistry};
use crate::trace_span::{SpanLane, SpanTracer};

/// How the analysis cache participated in producing one job's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache attached, or the probe set bypassed it (see the module
    /// docs).
    Uncached,
    /// Cache attached, no usable entry: the job ran and stored one.
    Miss,
    /// Entry found and returned without running the simulator.
    Hit,
    /// Verify mode: entry found, job recomputed, results identical.
    VerifyOk,
    /// Verify mode: entry found but it does **not** match the
    /// recomputation — the cache is poisoned or stale. The report
    /// returned is the fresh one.
    VerifyMismatch,
}

/// Builder for one batch of workload analyses — the crate's single
/// entry point (see the module docs for an example).
///
/// Builder methods consume and return the session, so a configured run
/// is one expression. The lifetime `'t` ties borrowed observers (the
/// span tracer, the cache) to the session; everything else is owned.
#[derive(Debug)]
pub struct Session<'t> {
    cfg: AnalysisConfig,
    threads: usize,
    metrics: bool,
    interval: Option<u64>,
    profile: bool,
    loops: bool,
    tracer: Option<&'t mut SpanTracer>,
    cache: Option<&'t AnalysisCache>,
    telemetry: Option<&'t TelemetryRegistry>,
    verify: bool,
    tier: InterpTier,
    analysis: AnalysisTier,
    observers: SplitObservers,
}

impl<'t> Session<'t> {
    /// A session with no probes, no cache, and one worker thread.
    pub fn new(cfg: AnalysisConfig) -> Session<'t> {
        Session {
            cfg,
            threads: 1,
            metrics: false,
            interval: None,
            profile: false,
            loops: false,
            tracer: None,
            cache: None,
            telemetry: None,
            verify: false,
            tier: InterpTier::default(),
            analysis: AnalysisTier::default(),
            observers: SplitObservers::all(),
        }
    }

    /// Interpreter tier driving the simulation ([`InterpTier::default`]
    /// unless overridden). Tiers produce byte-identical event streams,
    /// so reports — and [cache](Session::cache) keys — never depend on
    /// this choice: an entry stored under one tier is served under the
    /// other.
    pub fn interp(mut self, tier: InterpTier) -> Session<'t> {
        self.tier = tier;
        self
    }

    /// Analysis tier computing the report ([`AnalysisTier::default`]
    /// unless overridden): the fused per-event hot row, or the seven
    /// free-standing observers kept as its differential oracle. Tiers
    /// produce byte-identical results, so reports — and
    /// [cache](Session::cache) keys — never depend on this choice.
    pub fn analysis(mut self, tier: AnalysisTier) -> Session<'t> {
        self.analysis = tier;
        self
    }

    /// Restrict the split tier to a subset of its observers — the
    /// mechanism behind `--disable-observer`, which `scripts/bench.sh`
    /// uses to measure each observer's marginal per-event cost. A
    /// partial mask produces a report with the disabled observers'
    /// sections zeroed, so such runs bypass the cache. Ignored by the
    /// fused tier (which has no per-observer seams).
    pub fn split_observers(mut self, observers: SplitObservers) -> Session<'t> {
        self.observers = observers;
        self
    }

    /// Worker threads for [`Session::run`], clamped to `[1, jobs]` at
    /// run time. Pass [`crate::default_parallelism`] for "use the
    /// machine". Results are bit-identical for every value, including 1.
    pub fn jobs(mut self, threads: usize) -> Session<'t> {
        self.threads = threads;
        self
    }

    /// Collect a [`WorkloadMetrics`] per job (phase timers, throughput,
    /// occupancy gauges).
    pub fn metrics(mut self, on: bool) -> Session<'t> {
        self.metrics = on;
        self
    }

    /// Sample an interval time series per job, closing a window every
    /// `insns` measured instructions. Bypasses the cache.
    pub fn interval(mut self, insns: u64) -> Session<'t> {
        self.interval = Some(insns);
        self
    }

    /// Fill an [`InstructionProfile`] per job (per-PC attribution).
    /// Bypasses the cache.
    pub fn profile(mut self, on: bool) -> Session<'t> {
        self.profile = on;
        self
    }

    /// Fill a [`LoopNestProfile`](crate::LoopNestProfile) per job —
    /// dynamic loop detection from back edges with exec/repeated
    /// attribution per loop nest. Bypasses the cache.
    pub fn loops(mut self, on: bool) -> Session<'t> {
        self.loops = on;
        self
    }

    /// Record span traces into `tracer`: one lane per worker thread
    /// (lane `1 + worker index`; lane 0 is the driver's), one
    /// `"workload"` span per job wrapping the pipeline's `"phase"`
    /// spans. Lanes are merged into the tracer in job order.
    pub fn trace(mut self, tracer: &'t mut SpanTracer) -> Session<'t> {
        self.tracer = Some(tracer);
        self
    }

    /// Memoize whole-workload results in `cache` (see the module docs
    /// for hit/miss/bypass semantics).
    pub fn cache(mut self, cache: &'t AnalysisCache) -> Session<'t> {
        self.cache = Some(cache);
        self
    }

    /// Publish live telemetry into `registry`: per-worker-lane icount
    /// and phase ([`crate::telemetry::LaneTelemetry`]), shared
    /// `phase_ns_*` wall-time counters, `session_*` run counters, and
    /// `cache_verify_*` outcomes. Updates are relaxed atomics read
    /// concurrently by the wall-clock heartbeat sampler; like every
    /// probe, attaching a registry cannot perturb the reports.
    pub fn telemetry(mut self, registry: &'t TelemetryRegistry) -> Session<'t> {
        self.telemetry = Some(registry);
        self
    }

    /// On a cache hit, recompute anyway and compare — reporting
    /// [`CacheOutcome::VerifyOk`] or [`CacheOutcome::VerifyMismatch`]
    /// instead of skipping the run. No effect without
    /// [`Session::cache`].
    pub fn cache_verify(mut self, on: bool) -> Session<'t> {
        self.verify = on;
        self
    }

    /// Runs every job, returning results **in job order** regardless of
    /// scheduling. Reports are byte-identical to an unprobed, uncached
    /// run for every thread count — probes observe, the cache memoizes,
    /// neither perturbs.
    ///
    /// # Errors
    ///
    /// Each slot carries its own simulator outcome; one trapped
    /// workload does not poison the others.
    pub fn run(self, jobs: Vec<AnalysisJob<'_>>) -> Vec<Result<InstrumentedReport, SimError>> {
        let Session {
            cfg,
            threads,
            metrics,
            interval,
            profile,
            loops,
            mut tracer,
            cache,
            telemetry,
            verify,
            tier,
            analysis,
            observers,
        } = self;
        // Entries store only the report; serving a hit that silently
        // dropped a requested time series or profile would be wrong, so
        // those probe sets bypass the cache entirely. So does a partial
        // observer mask: its zeroed report must neither be stored under
        // nor served for the full-analysis key.
        let cache = if interval.is_some() || profile || loops || !observers.is_all() {
            None
        } else {
            cache
        };
        let epoch = tracer.as_ref().map(|t| t.epoch());

        // Telemetry handles, interned up front (one mutex pass): one
        // lane per worker the pool will actually spawn, plus the shared
        // session counters. The worker closure only touches atomics.
        let lane_count = threads.clamp(1, jobs.len().max(1));
        let lanes: Vec<PipelineTelemetry> = telemetry
            .map(|r| (0..lane_count).map(|w| r.pipeline_lane(w)).collect())
            .unwrap_or_default();
        let runs_started = telemetry.map(|r| r.counter("session_runs_started"));
        let runs_finished = telemetry.map(|r| r.counter("session_runs_finished"));
        let verify_ok = telemetry.map(|r| r.counter("cache_verify_ok"));
        let verify_mismatch = telemetry.map(|r| r.counter("cache_verify_mismatch"));
        // Loop-profiler instruments, registered only when the probe is
        // on so an off run leaves no zero-valued ghosts in expositions.
        let loop_tel = telemetry.filter(|_| loops).map(|r| {
            (
                r.counter("loops_discovered"),
                r.counter("loops_back_edges"),
                r.counter("loops_irregular"),
                r.gauge("loops_max_depth"),
            )
        });
        if let Some(r) = telemetry {
            r.counter("session_jobs_submitted").add(jobs.len() as u64);
        }

        let results = parallel_map_indexed(jobs, threads, |worker, job| {
            let tel = lanes.get(worker);
            if let Some(c) = &runs_started {
                c.inc();
            }
            let mut m = metrics.then(WorkloadMetrics::default);
            let mut lane = epoch.map(|e| SpanLane::new(worker as u32 + 1, e));
            let label = job.label.to_string();
            if let Some(t) = tel {
                t.lane().set_label(&label);
            }
            let job_span = lane.as_mut().map(|l| l.begin());

            // Cache lookup, timed as its own pipeline phase.
            let mut key = None;
            let mut cached = None;
            if let Some(cache) = cache {
                let timer = m.as_ref().map(|_| PhaseTimer::start());
                let span = lane.as_mut().map(|l| l.begin());
                let lt = tel.map(|t| t.begin(LanePhase::Cache));
                let k = CacheKey::derive(job.image, &job.input, &cfg);
                cached = cache.load(&k);
                key = Some(k);
                if let Some(m) = m.as_mut() {
                    m.record_phase("cache", timer.expect("timer started with metrics"), 0);
                }
                if let Some(l) = lane.as_mut() {
                    l.end(span.expect("span opened with lane"), "cache", "phase", 0);
                }
                if let Some(t) = tel {
                    t.end(LanePhase::Cache, lt.expect("telemetry timer started"));
                }
            }

            if let Some(report) = cached.take_if(|_| !verify) {
                // Pure hit: the stored report stands in for the whole
                // simulation — zero instructions execute.
                if let Some(l) = lane.as_mut() {
                    l.end(job_span.expect("span opened with lane"), label, "workload", 0);
                }
                if let Some(t) = tel {
                    t.lane().job_done();
                    t.lane().set_phase(LanePhase::Idle);
                    t.lane().set_label("");
                }
                if let Some(c) = &runs_finished {
                    c.inc();
                }
                let instrumented = InstrumentedReport {
                    report,
                    metrics: m,
                    intervals: None,
                    profile: None,
                    loops: None,
                    cache: CacheOutcome::Hit,
                };
                return (Ok(instrumented), lane.map(SpanLane::into_spans));
            }

            let mut sampler = interval.map(IntervalSampler::new);
            let mut prof = profile.then(InstructionProfile::default);
            let mut lp = loops.then(|| LoopProfiler::new(job.image.text.len()));
            let result = run_probed(
                job.image,
                job.input,
                &cfg,
                tier,
                analysis,
                observers,
                Probes {
                    metrics: m.as_mut(),
                    spans: lane.as_mut(),
                    sampler: sampler.as_mut(),
                    profile: prof.as_mut(),
                    telemetry: tel,
                    loops: lp.as_mut(),
                },
            );
            if let (Some((discovered, back_edges, irregular, max_depth)), Some(p)) =
                (&loop_tel, &lp)
            {
                discovered.add(p.loops_discovered());
                back_edges.add(p.back_edges());
                irregular.add(p.irregular());
                max_depth.set_max(u64::from(p.max_depth()));
            }

            let mut outcome = CacheOutcome::Uncached;
            if let (Some(cache), Some(key), Ok(report)) = (cache, key.as_ref(), &result) {
                outcome = match cached {
                    // Verified hit: canonical encodings are equal iff
                    // every report field is.
                    Some(prior) if encode_report(&prior) == encode_report(report) => {
                        if let Some(c) = &verify_ok {
                            c.inc();
                        }
                        CacheOutcome::VerifyOk
                    }
                    Some(_) => {
                        if let Some(c) = &verify_mismatch {
                            c.inc();
                        }
                        CacheOutcome::VerifyMismatch
                    }
                    None => {
                        // Best-effort store: a full disk costs us the
                        // memoization, not the run.
                        let _ = cache.store(key, report);
                        CacheOutcome::Miss
                    }
                };
            }

            if let (Some(l), Ok(_)) = (lane.as_mut(), &result) {
                l.end(job_span.expect("span opened with lane"), label, "workload", 0);
            }
            if let Some(t) = tel {
                t.lane().job_done();
                t.lane().set_phase(LanePhase::Idle);
                t.lane().set_label("");
            }
            if let (Some(c), Ok(_)) = (&runs_finished, &result) {
                c.inc();
            }
            let spans = lane.map(SpanLane::into_spans);
            let instrumented = result.map(|report| InstrumentedReport {
                report,
                metrics: m,
                intervals: sampler.map(IntervalSampler::into_windows),
                profile: prof,
                loops: lp.map(LoopProfiler::finish),
                cache: outcome,
            });
            (instrumented, spans)
        });

        results
            .into_iter()
            .map(|(r, spans)| {
                if let (Some(t), Some(spans)) = (tracer.as_deref_mut(), spans) {
                    t.extend(spans);
                }
                r
            })
            .collect()
    }

    /// Runs a single workload — [`Session::run`] with one unlabeled
    /// job.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps ([`SimError`]); a trap indicates a
    /// workload or compiler bug, not a property of the analyses.
    pub fn run_one(self, image: &Image, input: Vec<u8>) -> Result<InstrumentedReport, SimError> {
        self.run(vec![AnalysisJob { image, input, label: "" }])
            .pop()
            .expect("one job in, one result out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_minicc::build;
    use std::path::PathBuf;

    fn small_image() -> Image {
        build(
            r#"
            int tab[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
            int lookup(int i) { return tab[i & 15]; }
            int main() {
                int s = 0;
                int i;
                for (i = 0; i < 500; i++) s += lookup(i & 7);
                return s & 0xff;
            }
            "#,
        )
        .unwrap()
    }

    fn tmp_cache(tag: &str) -> (PathBuf, AnalysisCache) {
        let dir =
            std::env::temp_dir().join(format!("instrep-session-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = AnalysisCache::open(&dir).unwrap();
        (dir, cache)
    }

    #[test]
    fn session_matches_direct_pipeline_at_every_thread_count() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let direct = {
            let r = run_probed(
                &image,
                Vec::new(),
                &cfg,
                InterpTier::default(),
                AnalysisTier::default(),
                SplitObservers::all(),
                Probes::none(),
            );
            format!("{:?}", r.unwrap())
        };
        for threads in [1, 2, 7] {
            let jobs: Vec<AnalysisJob<'_>> = (0..4)
                .map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" })
                .collect();
            for r in Session::new(cfg).jobs(threads).run(jobs) {
                let ir = r.unwrap();
                assert_eq!(format!("{:?}", ir.report), direct, "threads={threads}");
                assert_eq!(ir.cache, CacheOutcome::Uncached);
                assert!(ir.metrics.is_none() && ir.intervals.is_none() && ir.profile.is_none());
            }
        }
    }

    #[test]
    fn interp_tiers_report_identically_and_share_cache_entries() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let fast =
            Session::new(cfg).interp(InterpTier::Predecoded).run_one(&image, Vec::new()).unwrap();
        let legacy =
            Session::new(cfg).interp(InterpTier::Legacy).run_one(&image, Vec::new()).unwrap();
        assert_eq!(format!("{:?}", fast.report), format!("{:?}", legacy.report));

        // Cache keys are tier-invariant: an entry stored by the legacy
        // interpreter is a plain hit under the predecoded one.
        let (dir, cache) = tmp_cache("tier");
        let s = Session::new(cfg).interp(InterpTier::Legacy).cache(&cache);
        assert_eq!(s.run_one(&image, Vec::new()).unwrap().cache, CacheOutcome::Miss);
        let s = Session::new(cfg).interp(InterpTier::Predecoded).cache(&cache);
        let warm = s.run_one(&image, Vec::new()).unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(format!("{:?}", warm.report), format!("{:?}", fast.report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analysis_tiers_report_identically_and_share_cache_entries() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let fused =
            Session::new(cfg).analysis(AnalysisTier::Fused).run_one(&image, Vec::new()).unwrap();
        let split =
            Session::new(cfg).analysis(AnalysisTier::Split).run_one(&image, Vec::new()).unwrap();
        assert_eq!(format!("{:?}", fused.report), format!("{:?}", split.report));

        // Cache keys are tier-invariant: an entry stored by the split
        // oracle is a plain hit under the fused tier.
        let (dir, cache) = tmp_cache("analysis-tier");
        let s = Session::new(cfg).analysis(AnalysisTier::Split).cache(&cache);
        assert_eq!(s.run_one(&image, Vec::new()).unwrap().cache, CacheOutcome::Miss);
        let s = Session::new(cfg).analysis(AnalysisTier::Fused).cache(&cache);
        let warm = s.run_one(&image, Vec::new()).unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(format!("{:?}", warm.report), format!("{:?}", fused.report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_observer_masks_bypass_the_cache() {
        let (dir, cache) = tmp_cache("mask");
        let image = small_image();
        let cfg = AnalysisConfig::default();
        // Prime the cache so a lookup *would* hit.
        Session::new(cfg).cache(&cache).run_one(&image, Vec::new()).unwrap();

        let mut obs = SplitObservers::all();
        obs.disable("reuse").unwrap();
        let s = Session::new(cfg).analysis(AnalysisTier::Split).split_observers(obs).cache(&cache);
        let ir = s.run_one(&image, Vec::new()).unwrap();
        assert_eq!(ir.cache, CacheOutcome::Uncached);
        assert_eq!(ir.report.reuse.hits, 0, "disabled observer reports zeroes");

        // The zeroed run must not have poisoned the full-analysis entry.
        let warm = Session::new(cfg).cache(&cache).run_one(&image, Vec::new()).unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert!(warm.report.reuse.hits > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_miss_then_hit_returns_identical_report() {
        let (dir, cache) = tmp_cache("hit");
        let image = small_image();
        let cfg = AnalysisConfig::default();

        let cold = Session::new(cfg).metrics(true).cache(&cache).run_one(&image, Vec::new());
        let cold = cold.unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        let cold_phases: Vec<&str> =
            cold.metrics.as_ref().unwrap().phases.iter().map(|p| p.name).collect();
        assert_eq!(cold_phases, ["cache", "setup", "skip", "measure", "finalize"]);

        let warm = Session::new(cfg).metrics(true).cache(&cache).run_one(&image, Vec::new());
        let warm = warm.unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(format!("{:?}", warm.report), format!("{:?}", cold.report));
        // A hit executes nothing: the only phase is the cache lookup.
        let m = warm.metrics.unwrap();
        let warm_phases: Vec<&str> = m.phases.iter().map(|p| p.name).collect();
        assert_eq!(warm_phases, ["cache"]);
        assert_eq!(m.phases.iter().map(|p| p.events).sum::<u64>(), 0);
        assert!(m.gauges.is_empty(), "no simulator ran, so no gauges");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_batch_is_identical_across_thread_counts() {
        let (dir, cache) = tmp_cache("batch");
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = |n: usize| -> Vec<AnalysisJob<'_>> {
            (0..n).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect()
        };
        let plain: Vec<String> = Session::new(cfg)
            .run(jobs(3))
            .into_iter()
            .map(|r| format!("{:?}", r.unwrap().report))
            .collect();
        for threads in [1, 4] {
            let cached: Vec<String> = Session::new(cfg)
                .jobs(threads)
                .cache(&cache)
                .run(jobs(3))
                .into_iter()
                .map(|r| format!("{:?}", r.unwrap().report))
                .collect();
            assert_eq!(cached, plain, "threads={threads}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_on_honest_entries_and_catches_poison() {
        let (dir, cache) = tmp_cache("verify");
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let key = CacheKey::derive(&image, &[], &cfg);

        // Verify on a cold cache is a plain miss (nothing to compare).
        let s = Session::new(cfg).cache(&cache).cache_verify(true);
        assert_eq!(s.run_one(&image, Vec::new()).unwrap().cache, CacheOutcome::Miss);

        // Honest entry: verification recomputes and agrees.
        let s = Session::new(cfg).cache(&cache).cache_verify(true);
        assert_eq!(s.run_one(&image, Vec::new()).unwrap().cache, CacheOutcome::VerifyOk);

        // Poison the entry *through the front door*: store a
        // well-formed report with one counter nudged. A plain hit
        // serves the lie; verify catches it and returns the fresh
        // report.
        let mut poisoned = cache.load(&key).unwrap();
        poisoned.dynamic_repeated += 1;
        cache.store(&key, &poisoned).unwrap();
        let served = Session::new(cfg).cache(&cache).run_one(&image, Vec::new()).unwrap();
        assert_eq!(served.cache, CacheOutcome::Hit);
        assert_eq!(served.report.dynamic_repeated, poisoned.dynamic_repeated);
        let s = Session::new(cfg).cache(&cache).cache_verify(true);
        let verified = s.run_one(&image, Vec::new()).unwrap();
        assert_eq!(verified.cache, CacheOutcome::VerifyMismatch);
        assert_ne!(verified.report.dynamic_repeated, poisoned.dynamic_repeated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interval_and_profile_probes_bypass_the_cache() {
        let (dir, cache) = tmp_cache("bypass");
        let image = small_image();
        let cfg = AnalysisConfig::default();
        // Prime the cache so a lookup *would* hit.
        Session::new(cfg).cache(&cache).run_one(&image, Vec::new()).unwrap();

        let ir =
            Session::new(cfg).cache(&cache).interval(1000).run_one(&image, Vec::new()).unwrap();
        assert_eq!(ir.cache, CacheOutcome::Uncached);
        assert!(ir.intervals.is_some());

        let ir = Session::new(cfg).cache(&cache).profile(true).run_one(&image, Vec::new()).unwrap();
        assert_eq!(ir.cache, CacheOutcome::Uncached);
        assert!(ir.profile.is_some());

        let ir = Session::new(cfg).cache(&cache).loops(true).run_one(&image, Vec::new()).unwrap();
        assert_eq!(ir.cache, CacheOutcome::Uncached);
        assert!(ir.loops.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loop_probe_is_identical_across_threads_and_publishes_telemetry() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = |n: usize| -> Vec<AnalysisJob<'_>> {
            (0..n).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect()
        };
        let serial: Vec<_> = Session::new(cfg)
            .loops(true)
            .run(jobs(3))
            .into_iter()
            .map(|r| r.unwrap().loops.expect("loops were requested"))
            .collect();
        assert!(serial.iter().all(|p| !p.loops.is_empty() && p.max_depth >= 1));
        let registry = TelemetryRegistry::new();
        let parallel: Vec<_> = Session::new(cfg)
            .jobs(4)
            .loops(true)
            .telemetry(&registry)
            .run(jobs(3))
            .into_iter()
            .map(|r| r.unwrap().loops.expect("loops were requested"))
            .collect();
        assert_eq!(serial, parallel);
        // Each job contributed its counts; the depth gauge holds the max.
        assert_eq!(registry.counter("loops_discovered").get(), 3 * serial[0].loops.len() as u64);
        assert_eq!(registry.counter("loops_back_edges").get(), 3 * serial[0].back_edges);
        assert_eq!(registry.gauge("loops_max_depth").get(), u64::from(serial[0].max_depth));
    }

    #[test]
    fn telemetry_counts_runs_and_cache_outcomes() {
        let (dir, mut cache) = tmp_cache("telemetry");
        let registry = TelemetryRegistry::new();
        cache.attach_telemetry(&registry);
        let image = small_image();
        let cfg = AnalysisConfig { skip: 500, ..AnalysisConfig::default() };
        let counter = |name: &str| registry.counter(name).get();

        // Cold: one run, one miss, one store.
        let cold = Session::new(cfg)
            .cache(&cache)
            .telemetry(&registry)
            .run_one(&image, Vec::new())
            .unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(counter("session_jobs_submitted"), 1);
        assert_eq!(counter("session_runs_started"), 1);
        assert_eq!(counter("session_runs_finished"), 1);
        assert_eq!(counter("cache_miss"), 1);
        assert_eq!(counter("cache_store"), 1);
        assert_eq!(counter("cache_hit"), 0);

        // The lane's live icount is exact after the run: the skip
        // window plus every measured instruction, and one job done.
        let snap = registry.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.lanes[0].icount, cfg.skip + cold.report.dynamic_total);
        assert_eq!(snap.lanes[0].jobs_done, 1);
        assert_eq!(snap.lanes[0].phase, LanePhase::Idle);
        for phase in ["cache", "setup", "skip", "measure", "finalize"] {
            assert!(counter(&format!("phase_ns_{phase}")) > 0, "phase_ns_{phase} unrecorded");
        }

        // Warm: a pure hit, no simulation.
        let warm = Session::new(cfg)
            .cache(&cache)
            .telemetry(&registry)
            .run_one(&image, Vec::new())
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(counter("cache_hit"), 1);
        assert_eq!(counter("session_runs_finished"), 2);
        assert_eq!(registry.snapshot().lanes[0].icount, cfg.skip + cold.report.dynamic_total);

        // Verify mode recomputes and agrees.
        let verified = Session::new(cfg)
            .cache(&cache)
            .cache_verify(true)
            .telemetry(&registry)
            .run_one(&image, Vec::new())
            .unwrap();
        assert_eq!(verified.cache, CacheOutcome::VerifyOk);
        assert_eq!(counter("cache_verify_ok"), 1);
        assert_eq!(counter("cache_verify_mismatch"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_does_not_perturb_reports() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = |n: usize| -> Vec<AnalysisJob<'_>> {
            (0..n).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect()
        };
        let plain: Vec<String> = Session::new(cfg)
            .jobs(2)
            .run(jobs(3))
            .into_iter()
            .map(|r| format!("{:?}", r.unwrap().report))
            .collect();
        let registry = TelemetryRegistry::new();
        let with: Vec<String> = Session::new(cfg)
            .jobs(2)
            .telemetry(&registry)
            .run(jobs(3))
            .into_iter()
            .map(|r| format!("{:?}", r.unwrap().report))
            .collect();
        assert_eq!(plain, with);
        // All three jobs landed on some lane; the total is exact.
        let snap = registry.snapshot();
        assert_eq!(snap.lanes.iter().map(|l| l.jobs_done).sum::<u64>(), 3);
        assert_eq!(registry.counter("session_runs_finished").get(), 3);
    }

    #[test]
    fn cached_runs_trace_a_cache_span_per_job() {
        let (dir, cache) = tmp_cache("spans");
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = || vec![AnalysisJob { image: &image, input: Vec::new(), label: "lookup" }];

        let mut cold = SpanTracer::new();
        Session::new(cfg).cache(&cache).trace(&mut cold).run(jobs());
        let cold_names: Vec<&str> = cold.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(cold_names, ["cache", "setup", "skip", "measure", "finalize", "lookup"]);

        let mut warm = SpanTracer::new();
        Session::new(cfg).cache(&cache).trace(&mut warm).run(jobs());
        let warm_names: Vec<&str> = warm.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(warm_names, ["cache", "lookup"], "a hit traces no pipeline phases");
        std::fs::remove_dir_all(&dir).ok();
    }
}
