//! Instruction-repetition tracking (the paper's central measurement).
//!
//! A dynamic instance of a static instruction is *repeated* when an
//! earlier instance of the same static instruction consumed the same
//! operand values and produced the same outcome (paper §2). The tracker
//! buffers up to [`TrackerConfig::max_instances`] *unique* instances per
//! static instruction — 2000 in the paper — and classifies each retired
//! instruction against that buffer.
//!
//! A *unique repeatable instance* (paper Figure 2) is a buffered instance
//! that has been repeated at least once; the first occurrence of an
//! instance is never itself a repetition.

use instrep_sim::Event;

/// Configuration for [`RepetitionTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// Maximum unique instances buffered per static instruction.
    /// Instances beyond the cap execute normally but are classified
    /// non-repeated and are not buffered (matching the paper's setup).
    pub max_instances: usize,
}

impl Default for TrackerConfig {
    /// The paper's configuration: 2000 instances per static instruction.
    fn default() -> TrackerConfig {
        TrackerConfig { max_instances: 2000 }
    }
}

/// The key identifying one dynamic instance: operand values plus outcome.
type InstanceKey = (u32, u32, u32);

/// One slot of a static instruction's open-addressed instance table.
///
/// `count_plus` is the instance's repeat count plus one, so `0` doubles
/// as the empty-slot marker and a buffered-but-never-repeated instance
/// is `1`. 24 bytes per slot keeps a probe to a single cache line.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    in1: u32,
    in2: u32,
    outcome: u32,
    count_plus: u64,
}

/// Per-static-instruction repetition state.
///
/// Instances live in a flat open-addressed table (power-of-two capacity,
/// linear probing, no deletion) rather than a hash map: the classify
/// path runs once per retired instruction and the flat layout removes
/// the map's entry indirection from it. Classification depends only on
/// exact key equality, never on hash order, so results are identical to
/// the map-based implementation.
#[derive(Debug, Clone, Default)]
struct StaticEntry {
    /// Buffered unique instances; empty until the first insert.
    slots: Vec<Slot>,
    /// Occupied slot count (`<= cfg.max_instances`).
    len: u32,
    /// Dynamic executions observed.
    exec: u64,
    /// Dynamic executions classified repeated.
    repeated: u64,
}

/// Mixes an instance key into a table index seed (fxhash-style multiply;
/// quality only affects probe lengths, never classification results).
#[inline]
fn hash_key(in1: u32, in2: u32, outcome: u32) -> usize {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let h = (u64::from(in1).wrapping_mul(K))
        .wrapping_add(u64::from(in2))
        .wrapping_mul(K)
        .wrapping_add(u64::from(outcome))
        .wrapping_mul(K);
    (h >> 32) as usize
}

/// The gauge model both analysis tiers report for
/// `tracker_table_bytes_est`: buffered instances times their split-tier
/// slot footprint plus the split-tier per-static entry structs. The
/// fused tier's real layout differs, but the gauge must be
/// tier-invariant, so both tiers report this shared estimate.
pub(crate) fn table_bytes_estimate(instances: u64, statics: usize) -> u64 {
    let per_instance = std::mem::size_of::<Slot>() as u64;
    let per_static = std::mem::size_of::<StaticEntry>() as u64;
    instances * per_instance + statics as u64 * per_static
}

impl StaticEntry {
    /// Inserts a new instance known to be absent, growing at 7/8 load.
    fn insert_new(&mut self, key: InstanceKey) {
        if self.slots.is_empty() {
            self.slots = vec![Slot::default(); 8];
        } else if (self.len as usize + 1) * 8 > self.slots.len() * 7 {
            let doubled = vec![Slot::default(); self.slots.len() * 2];
            let old = std::mem::replace(&mut self.slots, doubled);
            for s in old.into_iter().filter(|s| s.count_plus > 0) {
                let mask = self.slots.len() - 1;
                let mut i = hash_key(s.in1, s.in2, s.outcome) & mask;
                while self.slots[i].count_plus > 0 {
                    i = (i + 1) & mask;
                }
                self.slots[i] = s;
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_key(key.0, key.1, key.2) & mask;
        while self.slots[i].count_plus > 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot { in1: key.0, in2: key.1, outcome: key.2, count_plus: 1 };
        self.len += 1;
    }

    /// Repeat counts of occupied slots (count excludes first occurrence).
    fn counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter(|s| s.count_plus > 0).map(|s| s.count_plus - 1)
    }
}

/// Statistics for one static instruction, as exposed to reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticStats {
    /// Static instruction index (`(pc - TEXT_BASE) / 4`).
    pub index: u32,
    /// Dynamic executions.
    pub exec: u64,
    /// Dynamic executions classified repeated.
    pub repeated: u64,
    /// Number of unique repeatable instances (buffered instances that
    /// repeated at least once).
    pub unique_repeatable: u64,
}

/// Tracks instruction repetition over a simulation's event stream.
///
/// # Examples
///
/// ```
/// use instrep_core::{RepetitionTracker, TrackerConfig};
///
/// let tracker = RepetitionTracker::new(TrackerConfig::default(), 16);
/// assert_eq!(tracker.dynamic_total(), 0);
/// ```
#[derive(Debug)]
pub struct RepetitionTracker {
    cfg: TrackerConfig,
    entries: Vec<StaticEntry>,
    dyn_total: u64,
    dyn_repeated: u64,
    buffered: u64,
}

impl RepetitionTracker {
    /// Creates a tracker for a program with `static_count` text
    /// instructions.
    pub fn new(cfg: TrackerConfig, static_count: usize) -> RepetitionTracker {
        RepetitionTracker {
            cfg,
            entries: vec![StaticEntry::default(); static_count],
            dyn_total: 0,
            dyn_repeated: 0,
            buffered: 0,
        }
    }

    /// Observes one retired instruction and reports whether it is a
    /// repetition of a buffered instance.
    ///
    /// # Panics
    ///
    /// Panics if `ev.index` is out of range for the program this tracker
    /// was sized for.
    pub fn observe(&mut self, ev: &Event) -> bool {
        let entry = &mut self.entries[ev.index as usize];
        entry.exec += 1;
        self.dyn_total += 1;
        let key = (ev.in1, ev.in2, ev.outcome());
        if !entry.slots.is_empty() {
            let mask = entry.slots.len() - 1;
            let mut i = hash_key(key.0, key.1, key.2) & mask;
            loop {
                let s = &mut entry.slots[i];
                if s.count_plus == 0 {
                    break;
                }
                if (s.in1, s.in2, s.outcome) == key {
                    s.count_plus += 1;
                    entry.repeated += 1;
                    self.dyn_repeated += 1;
                    return true;
                }
                i = (i + 1) & mask;
            }
        }
        if (entry.len as usize) < self.cfg.max_instances {
            entry.insert_new(key);
            self.buffered += 1;
        }
        false
    }

    /// Total dynamic instructions observed.
    pub fn dynamic_total(&self) -> u64 {
        self.dyn_total
    }

    /// Dynamic instructions classified repeated.
    pub fn dynamic_repeated(&self) -> u64 {
        self.dyn_repeated
    }

    /// Number of static instructions the tracker covers (text size).
    pub fn static_total(&self) -> usize {
        self.entries.len()
    }

    /// Number of static instructions executed at least once.
    pub fn static_executed(&self) -> usize {
        self.entries.iter().filter(|e| e.exec > 0).count()
    }

    /// Number of executed static instructions with at least one repeated
    /// dynamic instance.
    pub fn static_repeated(&self) -> usize {
        self.entries.iter().filter(|e| e.repeated > 0).count()
    }

    /// Total unique repeatable instances across all static instructions
    /// (paper Table 2, *Count*).
    pub fn unique_repeatable_instances(&self) -> u64 {
        self.entries.iter().map(|e| e.counts().filter(|&c| c > 0).count() as u64).sum()
    }

    /// Average number of repeats per unique repeatable instance (paper
    /// Table 2, *Avg. Repeats*). Returns 0.0 when nothing repeated.
    pub fn avg_repeats(&self) -> f64 {
        let uri = self.unique_repeatable_instances();
        if uri == 0 {
            0.0
        } else {
            self.dyn_repeated as f64 / uri as f64
        }
    }

    /// Per-static-instruction statistics for executed instructions.
    pub fn static_stats(&self) -> Vec<StaticStats> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.exec > 0)
            .map(|(i, e)| StaticStats {
                index: i as u32,
                exec: e.exec,
                repeated: e.repeated,
                unique_repeatable: e.counts().filter(|&c| c > 0).count() as u64,
            })
            .collect()
    }

    /// Repeat counts of every unique repeatable instance (unsorted).
    /// Input for the Figure 4 coverage curve.
    pub fn instance_repeat_counts(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.extend(e.counts().filter(|&c| c > 0));
        }
        out
    }

    /// Share of total dynamic repetition contributed by static
    /// instructions whose unique-repeatable-instance count falls in each
    /// bucket: `1`, `2..=10`, `11..=100`, `101..=1000`, `1001..`
    /// (paper Figure 3). Fractions sum to 1 when any repetition exists.
    pub fn instance_histogram(&self) -> [f64; 5] {
        let mut sums = [0u64; 5];
        for e in &self.entries {
            if e.repeated == 0 {
                continue;
            }
            let uri = e.counts().filter(|&c| c > 0).count() as u64;
            let bucket = match uri {
                0 => continue,
                1 => 0,
                2..=10 => 1,
                11..=100 => 2,
                101..=1000 => 3,
                _ => 4,
            };
            sums[bucket] += e.repeated;
        }
        let total: u64 = sums.iter().sum();
        if total == 0 {
            return [0.0; 5];
        }
        sums.map(|s| s as f64 / total as f64)
    }

    /// Total unique instances currently buffered across all static
    /// instructions (occupancy gauge; bounded by
    /// `static_executed * max_instances`). Maintained incrementally, so
    /// it is O(1) — the interval sampler reads it at every window
    /// boundary.
    pub fn instances_buffered(&self) -> u64 {
        self.buffered
    }

    /// Rough bytes held by the instance tables (occupancy gauge): buffered
    /// instances times their slot footprint plus the per-static entry
    /// structs. An estimate — open-addressed tables carry empty-slot
    /// slack — but monotone in the real cost, which is what a trajectory
    /// needs.
    pub fn approx_table_bytes(&self) -> u64 {
        table_bytes_estimate(self.instances_buffered(), self.entries.len())
    }

    /// Fraction of dynamic instructions repeated, in `[0, 1]`.
    pub fn repetition_rate(&self) -> f64 {
        if self.dyn_total == 0 {
            0.0
        } else {
            self.dyn_repeated as f64 / self.dyn_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, Insn, Reg};

    fn ev(index: u32, in1: u32, in2: u32, out: u32) -> Event {
        Event {
            pc: 0x40_0000 + index * 4,
            index,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1,
            in2,
            out: Some(out),
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn paper_figure_2_example() {
        // I1 unique never repeated; I2 repeated as I3; I4 repeated as
        // I5, I6, I7 => 2 unique repeatable instances, 4 repetitions.
        let mut t = RepetitionTracker::new(TrackerConfig::default(), 1);
        let seq = [(10, 20, 30), (1, 2, 3), (1, 2, 3), (4, 5, 9), (4, 5, 9), (4, 5, 9), (4, 5, 9)];
        let repeated: Vec<bool> = seq.iter().map(|&(a, b, c)| t.observe(&ev(0, a, b, c))).collect();
        assert_eq!(repeated, [false, false, true, false, true, true, true]);
        assert_eq!(t.dynamic_total(), 7);
        assert_eq!(t.dynamic_repeated(), 4);
        assert_eq!(t.unique_repeatable_instances(), 2);
        assert_eq!(t.avg_repeats(), 2.0);
        assert_eq!(t.static_executed(), 1);
        assert_eq!(t.static_repeated(), 1);
    }

    #[test]
    fn same_inputs_different_output_not_repeated() {
        // A load reading a clobbered address: operands repeat, outcome
        // does not => not a repetition.
        let mut t = RepetitionTracker::new(TrackerConfig::default(), 1);
        assert!(!t.observe(&ev(0, 1, 0, 100)));
        assert!(!t.observe(&ev(0, 1, 0, 200)));
        assert!(t.observe(&ev(0, 1, 0, 100)));
        assert_eq!(t.unique_repeatable_instances(), 1);
    }

    #[test]
    fn buffer_cap_limits_tracking() {
        let mut t = RepetitionTracker::new(TrackerConfig { max_instances: 2 }, 1);
        assert!(!t.observe(&ev(0, 1, 1, 1)));
        assert!(!t.observe(&ev(0, 2, 2, 2)));
        assert!(!t.observe(&ev(0, 3, 3, 3))); // beyond cap, not buffered
        assert!(!t.observe(&ev(0, 3, 3, 3))); // still not repeated
        assert!(t.observe(&ev(0, 1, 1, 1))); // buffered ones still hit
        assert_eq!(t.dynamic_repeated(), 1);
    }

    #[test]
    fn per_static_isolation() {
        let mut t = RepetitionTracker::new(TrackerConfig::default(), 2);
        assert!(!t.observe(&ev(0, 1, 1, 1)));
        // Same values at a different static instruction: not repeated.
        assert!(!t.observe(&ev(1, 1, 1, 1)));
        assert!(t.observe(&ev(0, 1, 1, 1)));
        assert_eq!(t.static_executed(), 2);
        assert_eq!(t.static_repeated(), 1);
        let stats = t.static_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].repeated, 1);
        assert_eq!(stats[1].repeated, 0);
    }

    #[test]
    fn histogram_buckets() {
        let mut t = RepetitionTracker::new(TrackerConfig::default(), 2);
        // Static 0: one unique repeatable instance, 5 repetitions.
        for _ in 0..6 {
            t.observe(&ev(0, 1, 1, 1));
        }
        // Static 1: three unique repeatable instances, 3 repetitions.
        for v in [1u32, 2, 3] {
            t.observe(&ev(1, v, v, v));
            t.observe(&ev(1, v, v, v));
        }
        let h = t.instance_histogram();
        assert!((h[0] - 5.0 / 8.0).abs() < 1e-9);
        assert!((h[1] - 3.0 / 8.0).abs() < 1e-9);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn buffered_counter_matches_recount() {
        let mut t = RepetitionTracker::new(TrackerConfig { max_instances: 2 }, 2);
        for (idx, v) in [(0, 1u32), (0, 2), (0, 3), (0, 1), (1, 1), (1, 1)] {
            t.observe(&ev(idx, v, v, v));
        }
        let recount: u64 = t
            .entries
            .iter()
            .map(|e| e.slots.iter().filter(|s| s.count_plus > 0).count() as u64)
            .sum();
        assert_eq!(t.instances_buffered(), recount);
        assert_eq!(t.instances_buffered(), 3); // cap of 2 at static 0, 1 at static 1
    }

    #[test]
    fn instance_counts_for_coverage() {
        let mut t = RepetitionTracker::new(TrackerConfig::default(), 1);
        for _ in 0..4 {
            t.observe(&ev(0, 7, 7, 7));
        }
        t.observe(&ev(0, 8, 8, 8));
        t.observe(&ev(0, 8, 8, 8));
        let mut counts = t.instance_repeat_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 3]);
        assert!((t.repetition_rate() - 4.0 / 6.0).abs() < 1e-9);
    }
}
