//! One-pass analysis pipeline: runs a program on the simulator with every
//! analysis attached, mirroring the paper's methodology (skip the
//! initialization phase, then measure a fixed window).
//!
//! During the skip phase all analyses still *propagate state* (dataflow
//! tags, call stacks, shadow memory) but accumulate no statistics, so the
//! measured window has correct provenance for every value it observes.
//!
//! The public entry point is [`Session`](crate::Session) in
//! `core::session`; this module holds the engine (`run_probed`) and the
//! configuration and report types. The pre-`Session` `analyze*` shims
//! served their one release of deprecation and are gone —
//! `scripts/ci.sh` greps the tree so they cannot reappear.

use instrep_asm::Image;
use instrep_sim::{InterpTier, Machine, RunOutcome, SimError};

use instrep_isa::abi::Region;
use instrep_sim::Event;

use crate::classes::{ClassAnalysis, ClassCounts};
use crate::coverage::Coverage;
use crate::function::FunctionAnalysis;
use crate::fused::{AnalysisTier, FusedAnalysis, SplitObservers};
use crate::global::{GlobalAnalysis, GlobalCounts};
use crate::interval::{IntervalSampler, IntervalWindow};
use crate::local::{LocalAnalysis, LocalCounts};
use crate::loops::{LoopNestProfile, LoopProfiler};
use crate::metrics::{PhaseTimer, WorkloadMetrics};
use crate::predict::{PredictStats, StrideStats, ValuePredictors};
use crate::profile::InstructionProfile;
use crate::reuse::{ReuseBuffer, ReuseConfig, ReuseStats};
use crate::telemetry::{LanePhase, LiveCount, PipelineTelemetry};
use crate::trace_span::SpanLane;
use crate::tracker::{self, RepetitionTracker, StaticStats, TrackerConfig};

/// Configuration for an analysis run ([`Session`](crate::Session)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Repetition-tracker configuration (instance buffer size).
    pub tracker: TrackerConfig,
    /// Reuse-buffer geometry (Table 10).
    pub reuse: ReuseConfig,
    /// Instructions to execute before measurement begins (the paper
    /// skipped 0.5–2.5 billion; scale to the workload).
    pub skip: u64,
    /// Maximum instructions to measure after the skip.
    pub window: u64,
    /// `k` for the top-k reports (Table 9, Figures 5 and 6).
    pub top_k: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            tracker: TrackerConfig::default(),
            reuse: ReuseConfig::paper(),
            skip: 0,
            window: u64::MAX,
            top_k: 5,
        }
    }
}

/// Everything the paper reports for one benchmark, produced by a single
/// simulation pass. See `DESIGN.md` for the experiment-by-experiment map.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Whether the program ran to completion inside the window.
    pub outcome: RunOutcome,
    /// Dynamic instructions measured (Table 1, *Total*).
    pub dynamic_total: u64,
    /// Measured instructions classified repeated (Table 1, *Repeat %*).
    pub dynamic_repeated: u64,
    /// Static instructions in the text segment (Table 1, *Total*).
    pub static_total: usize,
    /// Static instructions executed in the window (Table 1, *Executed*).
    pub static_executed: usize,
    /// Executed static instructions with repetition (Table 1, *Repeated*).
    pub static_repeated: usize,
    /// Unique repeatable instances (Table 2, *Count*).
    pub unique_repeatable: u64,
    /// Average repeats per unique repeatable instance (Table 2).
    pub avg_repeats: f64,
    /// Figure 1: coverage of dynamic repetition by repeated static
    /// instructions (heaviest first).
    pub static_coverage: Coverage,
    /// Figure 3: repetition share by unique-repeatable-instance bucket.
    pub instance_histogram: [f64; 5],
    /// Figure 4: coverage of repetition by unique repeatable instances.
    pub instance_coverage: Coverage,
    /// Table 3: global source analysis counters.
    pub global: GlobalCounts,
    /// Static functions called (Table 4).
    pub funcs_called: usize,
    /// Dynamic calls (Table 4).
    pub dynamic_calls: u64,
    /// Fraction of calls with all arguments repeated (Table 4).
    pub all_arg_rate: f64,
    /// Fraction of calls with no argument repeated (Table 4).
    pub no_arg_rate: f64,
    /// Fraction of calls that were side-effect- and implicit-input-free
    /// (Table 8, column 2).
    pub pure_rate: f64,
    /// Fraction of all-arg-repeated calls that were pure (Table 8,
    /// column 3).
    pub pure_all_arg_rate: f64,
    /// Figure 5: all-arg repetition covered by top-k argument sets,
    /// `k = 1..=top_k`.
    pub argset_coverage: Vec<f64>,
    /// Tables 5–7: local category counters.
    pub local: LocalCounts,
    /// Table 9: top prologue/epilogue contributors
    /// `(name, static size, repeated P/E instructions)` and the fraction
    /// of all P/E repetition they cover.
    pub prologue_top: Vec<(String, u32, u64)>,
    /// Table 9 coverage column.
    pub prologue_coverage: f64,
    /// Figure 6: global+heap load repetition covered by each load's
    /// top-k values, `k = 1..=top_k`.
    pub load_value_coverage: Vec<f64>,
    /// Table 10: reuse-buffer statistics.
    pub reuse: ReuseStats,
    /// Extension: per-instruction-class breakdown (the total analysis
    /// the paper's §2 defers).
    pub classes: ClassCounts,
    /// Extension: unbounded last-value-predictor statistics (the §7
    /// value-prediction comparison point).
    pub predict: PredictStats,
    /// Extension: unbounded two-delta stride-predictor statistics.
    pub stride: StrideStats,
}

impl WorkloadReport {
    /// Fraction of measured dynamic instructions repeated.
    pub fn repetition_rate(&self) -> f64 {
        if self.dynamic_total == 0 {
            0.0
        } else {
            self.dynamic_repeated as f64 / self.dynamic_total as f64
        }
    }

    /// Fraction of static instructions executed.
    pub fn static_executed_rate(&self) -> f64 {
        if self.static_total == 0 {
            0.0
        } else {
            self.static_executed as f64 / self.static_total as f64
        }
    }

    /// Fraction of executed static instructions that repeated.
    pub fn static_repeated_rate(&self) -> f64 {
        if self.static_executed == 0 {
            0.0
        } else {
            self.static_repeated as f64 / self.static_executed as f64
        }
    }
}

/// The pipeline's optional observability hooks, all riding the same
/// `Option<&mut …>` pattern: any subset may be attached, none of them
/// can perturb the [`WorkloadReport`], and an all-`None` bundle is the
/// plain uninstrumented path. [`Session`](crate::Session) assembles
/// this bundle internally from its builder flags.
#[derive(Debug, Default)]
pub struct Probes<'a> {
    /// Phase timers, throughput, and end-of-run gauges (`core::metrics`).
    pub metrics: Option<&'a mut WorkloadMetrics>,
    /// Span lane for Chrome-trace export (`core::trace_span`); one
    /// span per pipeline phase is recorded into it.
    pub spans: Option<&'a mut SpanLane>,
    /// Windowed repetition time-series sampler (`core::interval`),
    /// driven every retired instruction of the measurement phase.
    pub sampler: Option<&'a mut IntervalSampler>,
    /// Per-static-instruction attribution profile (`core::profile`),
    /// filled once during finalize from the tracker's per-PC counters —
    /// no per-event cost at all.
    pub profile: Option<&'a mut InstructionProfile>,
    /// Live lane telemetry (`core::telemetry`): current phase, batched
    /// instruction counts, and per-phase wall-time counters, published
    /// through relaxed atomics for the wall-clock heartbeat sampler. A
    /// shared reference — unlike the other probes it is read
    /// concurrently while the run executes.
    pub telemetry: Option<&'a PipelineTelemetry>,
    /// Dynamic loop-nest profiler (`core::loops`): online back-edge
    /// loop detection plus a per-event path assignment, joined against
    /// the tracker's per-static stats at finalize. The one probe with a
    /// per-event cost on the analysis side, so the engine is
    /// re-monomorphized with it attached and the probe-off hot path is
    /// untouched.
    pub loops: Option<&'a mut LoopProfiler>,
}

impl Probes<'_> {
    /// No probes attached: exactly the uninstrumented path.
    pub fn none() -> Probes<'static> {
        Probes::default()
    }
}

/// One simulation pass with any combination of [`Probes`] attached —
/// the entry everything else (the `Session` builder,
/// `steady_state_check`) runs on. Dispatches once, before any
/// event retires, to the per-event engine the analysis tier selects;
/// the phase scaffolding and the report/gauge assembly are shared, so
/// the two tiers cannot drift in anything but the per-event hot path.
///
/// Metrics and spans sample the clock at phase boundaries only; the
/// interval sampler adds one counter increment per measured instruction
/// and reads gauges at window boundaries. None of them feed back into
/// the analyses, so the report is byte-identical whatever is attached.
pub(crate) fn run_probed(
    image: &Image,
    input: Vec<u8>,
    cfg: &AnalysisConfig,
    interp: InterpTier,
    analysis: AnalysisTier,
    observers: SplitObservers,
    mut probes: Probes<'_>,
) -> Result<WorkloadReport, SimError> {
    // The loop profiler is the one probe with per-event analysis work,
    // so it wraps the engine instead of hanging off the event loop:
    // each (tier, probe) combination monomorphizes separately and the
    // probe-off paths compile exactly as before.
    let loops = probes.loops.take();
    match (analysis, loops) {
        (AnalysisTier::Fused, None) => {
            let engine = FusedAnalysis::new(image, cfg.tracker, cfg.reuse);
            run_engine(image, input, cfg, interp, engine, probes)
        }
        (AnalysisTier::Fused, Some(lp)) => {
            let engine =
                LoopedEngine { inner: FusedAnalysis::new(image, cfg.tracker, cfg.reuse), lp };
            run_engine(image, input, cfg, interp, engine, probes)
        }
        (AnalysisTier::Split, None) => {
            let engine = SplitEngine::new(image, cfg, observers);
            run_engine(image, input, cfg, interp, engine, probes)
        }
        (AnalysisTier::Split, Some(lp)) => {
            let engine = LoopedEngine { inner: SplitEngine::new(image, cfg, observers), lp };
            run_engine(image, input, cfg, interp, engine, probes)
        }
    }
}

/// The per-event half of an analysis tier, monomorphized into the
/// measure loop (no dynamic dispatch on the hot path). The finalize
/// half hands back tier-independent aggregates so the report and gauge
/// assembly in [`run_engine`] is literally shared code.
trait AnalysisEngine {
    /// Skip-phase event: propagate state, count nothing.
    fn skip(&mut self, ev: &Event, region: Option<Region>);
    /// Measurement-phase event.
    fn measure(&mut self, ev: &Event, region: Option<Region>);
    /// `(dynamic_repeated, reuse_hits, instances_buffered)` for the
    /// interval sampler's window flush.
    fn sampler_gauges(&self) -> (u64, u64, u64);
    /// Tracker-equivalent aggregates for the report (takes `&mut self`
    /// so a tier may flush deferred per-event state first).
    fn numbers(&mut self) -> TrackerNumbers;
    /// Borrowed views of the non-tracker observers and predictor stats.
    fn parts(&self) -> ObserverParts<'_>;
    /// Finalize hook for the loop profiler: joins the per-static stats
    /// against the recorded loop paths. A no-op unless the engine is
    /// wrapped in [`LoopedEngine`].
    fn finalize_loops(&mut self, _image: &Image, _stats: &[StaticStats]) {}
}

/// An [`AnalysisEngine`] with the loop-nest profiler fused into its
/// per-event path — the mechanism behind [`Probes::loops`]. Pure
/// delegation plus one `LoopProfiler::observe` per event; the profiler
/// reads the event stream only, so the inner engine's report is
/// byte-identical with or without the wrapper.
struct LoopedEngine<'a, E> {
    inner: E,
    lp: &'a mut LoopProfiler,
}

impl<E: AnalysisEngine> AnalysisEngine for LoopedEngine<'_, E> {
    fn skip(&mut self, ev: &Event, region: Option<Region>) {
        self.lp.observe(ev, false);
        self.inner.skip(ev, region);
    }

    fn measure(&mut self, ev: &Event, region: Option<Region>) {
        self.lp.observe(ev, true);
        self.inner.measure(ev, region);
    }

    fn sampler_gauges(&self) -> (u64, u64, u64) {
        self.inner.sampler_gauges()
    }

    fn numbers(&mut self) -> TrackerNumbers {
        self.inner.numbers()
    }

    fn parts(&self) -> ObserverParts<'_> {
        self.inner.parts()
    }

    fn finalize_loops(&mut self, image: &Image, stats: &[StaticStats]) {
        self.lp.fill_from_stats(image, stats);
    }
}

/// The tracker-side aggregates a tier produces for the report — the
/// split [`RepetitionTracker`] accessor family, materialized.
struct TrackerNumbers {
    dynamic_total: u64,
    dynamic_repeated: u64,
    static_total: usize,
    static_executed: usize,
    static_repeated: usize,
    unique_repeatable: u64,
    avg_repeats: f64,
    instance_histogram: [f64; 5],
    static_stats: Vec<StaticStats>,
    /// Repeat counts of every unique repeatable instance; order is
    /// unspecified (every consumer sorts).
    instance_counts: Vec<u64>,
    instances_buffered: u64,
}

/// Borrowed views of the observers whose state both tiers keep in the
/// same structures, plus the (Copy) predictor statistics.
struct ObserverParts<'a> {
    global: &'a GlobalAnalysis,
    function: &'a FunctionAnalysis,
    local: &'a LocalAnalysis,
    reuse: &'a ReuseBuffer,
    classes: &'a ClassAnalysis,
    predict: PredictStats,
    stride: StrideStats,
    lvp_entries: u64,
}

/// The split tier: the seven free-standing observers, each gated by its
/// [`SplitObservers`] flag (the mechanism behind `--disable-observer`,
/// which `scripts/bench.sh` uses to measure marginal per-event costs).
/// With every flag set this is exactly the pre-fusion pipeline — the
/// differential oracle.
struct SplitEngine {
    obs: SplitObservers,
    tracker: RepetitionTracker,
    global: GlobalAnalysis,
    function: FunctionAnalysis,
    local: LocalAnalysis,
    reuse: ReuseBuffer,
    classes: ClassAnalysis,
    values: ValuePredictors,
}

impl SplitEngine {
    fn new(image: &Image, cfg: &AnalysisConfig, obs: SplitObservers) -> SplitEngine {
        SplitEngine {
            obs,
            tracker: RepetitionTracker::new(cfg.tracker, image.text.len()),
            global: GlobalAnalysis::new(image),
            function: FunctionAnalysis::new(image),
            local: LocalAnalysis::new(image),
            reuse: ReuseBuffer::new(cfg.reuse),
            classes: ClassAnalysis::new(),
            values: ValuePredictors::new(),
        }
    }
}

impl AnalysisEngine for SplitEngine {
    fn skip(&mut self, ev: &Event, region: Option<Region>) {
        if self.obs.global {
            self.global.observe(ev, false, false);
        }
        if self.obs.function {
            self.function.observe(ev, false, region);
        }
        if self.obs.local {
            self.local.observe(ev, false, false, region);
        }
    }

    fn measure(&mut self, ev: &Event, region: Option<Region>) {
        let repeated = if self.obs.tracker { self.tracker.observe(ev) } else { false };
        if self.obs.global {
            self.global.observe(ev, repeated, true);
        }
        if self.obs.function {
            self.function.observe(ev, true, region);
        }
        if self.obs.local {
            self.local.observe(ev, repeated, true, region);
        }
        if self.obs.reuse {
            self.reuse.observe(ev, repeated);
        }
        if self.obs.classes {
            self.classes.observe(ev, repeated, true);
        }
        if self.obs.predict {
            self.values.observe(ev, repeated);
        }
    }

    fn sampler_gauges(&self) -> (u64, u64, u64) {
        (
            self.tracker.dynamic_repeated(),
            self.reuse.stats().hits,
            self.tracker.instances_buffered(),
        )
    }

    fn numbers(&mut self) -> TrackerNumbers {
        TrackerNumbers {
            dynamic_total: self.tracker.dynamic_total(),
            dynamic_repeated: self.tracker.dynamic_repeated(),
            static_total: self.tracker.static_total(),
            static_executed: self.tracker.static_executed(),
            static_repeated: self.tracker.static_repeated(),
            unique_repeatable: self.tracker.unique_repeatable_instances(),
            avg_repeats: self.tracker.avg_repeats(),
            instance_histogram: self.tracker.instance_histogram(),
            static_stats: self.tracker.static_stats(),
            instance_counts: self.tracker.instance_repeat_counts(),
            instances_buffered: self.tracker.instances_buffered(),
        }
    }

    fn parts(&self) -> ObserverParts<'_> {
        ObserverParts {
            global: &self.global,
            function: &self.function,
            local: &self.local,
            reuse: &self.reuse,
            classes: &self.classes,
            predict: *self.values.lvp_stats(),
            stride: *self.values.stride_stats(),
            lvp_entries: self.values.lvp_entries(),
        }
    }
}

impl AnalysisEngine for FusedAnalysis {
    fn skip(&mut self, ev: &Event, region: Option<Region>) {
        self.skip_event(ev, region);
    }

    fn measure(&mut self, ev: &Event, region: Option<Region>) {
        self.measure_event(ev, region);
    }

    fn sampler_gauges(&self) -> (u64, u64, u64) {
        (self.dynamic_repeated(), self.reuse.stats().hits, self.instances_buffered())
    }

    fn numbers(&mut self) -> TrackerNumbers {
        let s = self.tracker_summary();
        TrackerNumbers {
            dynamic_total: self.dynamic_total(),
            dynamic_repeated: self.dynamic_repeated(),
            static_total: self.static_total(),
            static_executed: s.static_executed,
            static_repeated: s.static_repeated,
            unique_repeatable: s.unique_repeatable,
            avg_repeats: s.avg_repeats,
            instance_histogram: s.histogram,
            static_stats: s.static_stats,
            instance_counts: s.instance_counts,
            instances_buffered: self.instances_buffered(),
        }
    }

    fn parts(&self) -> ObserverParts<'_> {
        ObserverParts {
            global: &self.global,
            function: &self.function,
            local: &self.local,
            reuse: &self.reuse,
            classes: &self.classes,
            predict: *self.lvp_stats(),
            stride: *self.stride_stats(),
            lvp_entries: self.lvp_entries(),
        }
    }
}

/// The tier-independent pipeline: phase scaffolding, probe plumbing,
/// and the shared report/gauge assembly around one [`AnalysisEngine`].
fn run_engine<E: AnalysisEngine>(
    image: &Image,
    input: Vec<u8>,
    cfg: &AnalysisConfig,
    interp: InterpTier,
    mut engine: E,
    mut probes: Probes<'_>,
) -> Result<WorkloadReport, SimError> {
    let tel = probes.telemetry;
    let timer = probes.metrics.as_ref().map(|_| PhaseTimer::start());
    let span = probes.spans.as_mut().map(|l| l.begin());
    let lt = tel.map(|t| t.begin(LanePhase::Setup));
    let mut machine = Machine::with_tier(image, interp);
    machine.set_input(input);

    // Region classification: the simulator traps accesses between the
    // real heap break and the stack region, so any surviving address in
    // (data_end, STACK_REGION_BASE) is heap — pass the stack base as the
    // effective break.
    let pseudo_brk = instrep_isa::abi::STACK_REGION_BASE;
    let data_end = image.data_end();
    if let Some(m) = probes.metrics.as_deref_mut() {
        m.record_phase("setup", timer.expect("timer started with metrics"), 0);
    }
    if let Some(l) = probes.spans.as_deref_mut() {
        l.end(span.expect("span opened with lane"), "setup", "phase", 0);
    }
    if let Some(t) = tel {
        t.end(LanePhase::Setup, lt.expect("telemetry timer started"));
    }

    // Skip phase: propagate analysis state without counting. The tracker
    // is idle during the skip (buffering starts with measurement, as in
    // the paper).
    let timer = probes.metrics.as_ref().map(|_| PhaseTimer::start());
    let span = probes.spans.as_mut().map(|l| l.begin());
    let lt = tel.map(|t| t.begin(LanePhase::Skip));
    let mut outcome = RunOutcome::MaxedOut;
    if cfg.skip > 0 {
        outcome = match tel {
            None => machine.run(cfg.skip, |ev| {
                let region =
                    ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                engine.skip(ev, region);
            })?,
            Some(t) => {
                let mut live = LiveCount::new(t.lane());
                let outcome = machine.run(cfg.skip, |ev| {
                    let region =
                        ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                    engine.skip(ev, region);
                    live.tick();
                })?;
                live.flush();
                outcome
            }
        };
    }
    if let Some(m) = probes.metrics.as_deref_mut() {
        m.record_phase("skip", timer.expect("timer started with metrics"), machine.icount());
    }
    if let Some(l) = probes.spans.as_deref_mut() {
        l.end(span.expect("span opened with lane"), "skip", "phase", machine.icount());
    }
    if let Some(t) = tel {
        t.end(LanePhase::Skip, lt.expect("telemetry timer started"));
    }

    // Measurement window; the sampler variant adds one tick per event
    // and reads gauges only at window boundaries.
    let timer = probes.metrics.as_ref().map(|_| PhaseTimer::start());
    let span = probes.spans.as_mut().map(|l| l.begin());
    let lt = tel.map(|t| t.begin(LanePhase::Measure));
    let measured_from = machine.icount();
    if machine.exit_code().is_none() {
        outcome = match (probes.sampler.as_deref_mut(), tel) {
            (None, None) => machine.run(cfg.window, |ev| {
                let region =
                    ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                engine.measure(ev, region);
            })?,
            (None, Some(t)) => {
                let mut live = LiveCount::new(t.lane());
                let outcome = machine.run(cfg.window, |ev| {
                    let region =
                        ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                    engine.measure(ev, region);
                    live.tick();
                })?;
                live.flush();
                outcome
            }
            (Some(s), None) => machine.run(cfg.window, |ev| {
                let region =
                    ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                engine.measure(ev, region);
                if s.tick() {
                    let (repeated, reuse_hits, buffered) = engine.sampler_gauges();
                    s.flush(repeated, reuse_hits, buffered);
                }
            })?,
            (Some(s), Some(t)) => {
                let mut live = LiveCount::new(t.lane());
                let outcome = machine.run(cfg.window, |ev| {
                    let region =
                        ev.mem.map(|m| instrep_isa::abi::region_of(m.addr, data_end, pseudo_brk));
                    engine.measure(ev, region);
                    live.tick();
                    if s.tick() {
                        let (repeated, reuse_hits, buffered) = engine.sampler_gauges();
                        s.flush(repeated, reuse_hits, buffered);
                    }
                })?;
                live.flush();
                outcome
            }
        };
    }
    if let Some(s) = probes.sampler.as_deref_mut() {
        let (repeated, reuse_hits, buffered) = engine.sampler_gauges();
        s.finish(repeated, reuse_hits, buffered);
    }
    if let Some(m) = probes.metrics.as_deref_mut() {
        let t = timer.expect("timer started with metrics");
        m.record_phase("measure", t, machine.icount() - measured_from);
    }
    if let Some(l) = probes.spans.as_deref_mut() {
        let sp = span.expect("span opened with lane");
        l.end(sp, "measure", "phase", machine.icount() - measured_from);
    }
    if let Some(t) = tel {
        t.end(LanePhase::Measure, lt.expect("telemetry timer started"));
    }

    let timer = probes.metrics.as_ref().map(|_| PhaseTimer::start());
    let span = probes.spans.as_mut().map(|l| l.begin());
    let lt = tel.map(|t| t.begin(LanePhase::Finalize));
    let mut tn = engine.numbers();
    let parts = engine.parts();
    let static_coverage =
        tn.static_stats.iter().filter(|s| s.repeated > 0).map(|s| s.repeated).collect();
    let instance_coverage = Coverage::new(std::mem::take(&mut tn.instance_counts));
    let (prologue_top, prologue_coverage) = parts.local.prologue_report(cfg.top_k);

    let report = WorkloadReport {
        outcome,
        dynamic_total: tn.dynamic_total,
        dynamic_repeated: tn.dynamic_repeated,
        static_total: tn.static_total,
        static_executed: tn.static_executed,
        static_repeated: tn.static_repeated,
        unique_repeatable: tn.unique_repeatable,
        avg_repeats: tn.avg_repeats,
        static_coverage,
        instance_histogram: tn.instance_histogram,
        instance_coverage,
        global: *parts.global.counts(),
        funcs_called: parts.function.static_called(),
        dynamic_calls: parts.function.total_calls(),
        all_arg_rate: parts.function.all_arg_rate(),
        no_arg_rate: parts.function.no_arg_rate(),
        pure_rate: parts.function.pure_rate(),
        pure_all_arg_rate: parts.function.pure_all_arg_rate(),
        argset_coverage: parts.function.top_argset_coverage(cfg.top_k),
        local: *parts.local.counts(),
        prologue_top,
        prologue_coverage,
        load_value_coverage: parts.local.load_value_coverage(cfg.top_k),
        reuse: *parts.reuse.stats(),
        classes: *parts.classes.counts(),
        predict: parts.predict,
        stride: parts.stride,
    };

    if let Some(p) = probes.profile {
        // Pull-based: one pass over state the tier accumulated anyway.
        p.fill_from_stats(image, &tn.static_stats);
    }
    if let Some(m) = probes.metrics {
        m.record_phase("finalize", timer.expect("timer started with metrics"), 0);
        // Occupancy gauges, in a fixed order (deterministic documents).
        // All of them are tier-invariant: the fused tier reports the
        // same logical occupancies (and the same split-layout byte
        // estimate) as the oracle observers.
        m.gauge("tracker_static_entries", tn.static_total as u64);
        m.gauge("tracker_instances_buffered", tn.instances_buffered);
        m.gauge(
            "tracker_table_bytes_est",
            tracker::table_bytes_estimate(tn.instances_buffered, tn.static_total),
        );
        m.gauge("reuse_entries_valid", parts.reuse.occupancy());
        m.gauge("global_shadow_words", parts.global.shadow_words());
        m.gauge("function_argtuples", parts.function.distinct_argtuples());
        m.gauge("local_stack_tag_words", parts.local.shadow_stack_words());
        m.gauge("local_load_sites", parts.local.load_sites());
        m.gauge("local_load_values", parts.local.load_values_tracked());
        m.gauge("predict_lvp_entries", parts.lvp_entries);
        m.gauge("predict_stride_entries", parts.lvp_entries);
        let fp = machine.footprint();
        m.gauge("sim_resident_pages", fp.resident_pages as u64);
        m.gauge("sim_resident_bytes", fp.resident_bytes as u64);
        m.gauge("sim_output_bytes", fp.output_bytes as u64);
    }
    // Pull-based like the profile: one pass over state the tier (and
    // the wrapper's path assignments) accumulated anyway. A no-op for
    // unwrapped engines.
    engine.finalize_loops(image, &tn.static_stats);
    if let Some(l) = probes.spans {
        l.end(span.expect("span opened with lane"), "finalize", "phase", 0);
    }
    if let Some(t) = tel {
        t.end(LanePhase::Finalize, lt.expect("telemetry timer started"));
    }

    Ok(report)
}

/// One unit of work for [`Session::run`](crate::Session::run): a built
/// image plus its input stream.
#[derive(Debug)]
pub struct AnalysisJob<'a> {
    /// The compiled workload image.
    pub image: &'a Image,
    /// The workload's input stream (consumed by the run).
    pub input: Vec<u8>,
    /// Display label (workload name) used for span traces; `""` is fine
    /// when tracing is off.
    pub label: &'a str,
}

/// One job's report plus whatever telemetry the
/// [`Session`](crate::Session) was configured to collect.
#[derive(Debug)]
pub struct InstrumentedReport {
    /// The analysis report — byte-identical to the uninstrumented run.
    pub report: WorkloadReport,
    /// Phase metrics, when `Session::metrics` was set.
    pub metrics: Option<WorkloadMetrics>,
    /// Interval windows, when `Session::interval` was set.
    pub intervals: Option<Vec<IntervalWindow>>,
    /// Per-PC attribution profile, when `Session::profile` was set.
    pub profile: Option<InstructionProfile>,
    /// Loop-nest attribution profile, when `Session::loops` was set.
    pub loops: Option<LoopNestProfile>,
    /// How the analysis cache participated, if one was attached.
    pub cache: crate::CacheOutcome,
}

/// The number of worker threads [`Session::jobs`](crate::Session::jobs)
/// should default to: the machine's available parallelism, or 1 if that
/// cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Order-preserving parallel map over owned items using scoped threads,
/// passing each call the index of the worker thread running it
/// (`0..threads`) — the span tracer's lane key.
///
/// Items are claimed from a shared atomic cursor, so long and short jobs
/// balance across workers; each result lands in its item's original
/// slot, which is what makes downstream iteration deterministic.
pub(crate) fn parallel_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(|item| f(0, item)).collect();
    }

    // Items move to whichever worker claims their index; results are
    // written back under a short-lived lock (contention is negligible —
    // one lock per *workload*, not per instruction).
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let (f, work, results, cursor) = (&f, &work, &results, &cursor);
        for worker in 0..threads {
            // `move` captures only the shared references plus this
            // worker's index.
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("each index claimed once");
                let r = f(worker, item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// The paper's §3 steady-state verification: runs the overall local
/// analysis at two window sizes and returns the largest absolute
/// difference in category shares. Small values indicate the short window
/// measures a steady-state region.
///
/// # Errors
///
/// Propagates simulator traps.
pub fn steady_state_check(
    image: &Image,
    input: Vec<u8>,
    cfg: &AnalysisConfig,
    factor: u64,
) -> Result<f64, SimError> {
    let short = run_probed(
        image,
        input.clone(),
        cfg,
        InterpTier::default(),
        AnalysisTier::default(),
        SplitObservers::all(),
        Probes::none(),
    )?;
    let mut long_cfg = *cfg;
    long_cfg.window = cfg.window.saturating_mul(factor);
    let long = run_probed(
        image,
        input,
        &long_cfg,
        InterpTier::default(),
        AnalysisTier::default(),
        SplitObservers::all(),
        Probes::none(),
    )?;
    let mut max_dev: f64 = 0.0;
    for cat in crate::local::LocalCat::ALL {
        let dev = (short.local.overall_share(cat) - long.local.overall_share(cat)).abs();
        max_dev = max_dev.max(dev);
    }
    Ok(max_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_span::{Span, SpanTracer};
    use crate::Session;
    use instrep_minicc::build;

    fn small_image() -> Image {
        build(
            r#"
            int tab[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
            int lookup(int i) { return tab[i & 15]; }
            int main() {
                int s = 0;
                int i;
                for (i = 0; i < 500; i++) s += lookup(i & 7);
                return s & 0xff;
            }
            "#,
        )
        .unwrap()
    }

    /// One plain run through the public builder.
    fn quick(image: &Image, cfg: &AnalysisConfig) -> WorkloadReport {
        Session::new(*cfg).run_one(image, Vec::new()).unwrap().report
    }

    #[test]
    fn end_to_end_analysis() {
        let image = small_image();
        let report = quick(&image, &AnalysisConfig::default());
        assert!(matches!(report.outcome, RunOutcome::Exited(_)));
        assert!(report.dynamic_total > 1000);
        // A tight loop calling a pure-ish lookup repeats heavily.
        assert!(report.repetition_rate() > 0.6, "rate = {}", report.repetition_rate());
        assert!(report.dynamic_calls >= 500);
        // lookup(i & 7) cycles through 8 tuples: heavy all-arg repetition.
        assert!(report.all_arg_rate > 0.9);
        // Counters are consistent.
        assert_eq!(report.global.total(), report.dynamic_total);
        assert_eq!(report.local.total(), report.dynamic_total);
        assert_eq!(report.reuse.total, report.dynamic_total);
        assert_eq!(report.static_coverage.total(), report.dynamic_repeated);
        assert_eq!(report.instance_coverage.total(), report.dynamic_repeated);
        let h: f64 = report.instance_histogram.iter().sum();
        assert!((h - 1.0).abs() < 1e-9);
        // The reuse buffer captures a large share of such a small loop.
        assert!(report.reuse.repeated_capture_rate() > 0.5);
        // Prologue/epilogue exist (lookup is called from main).
        use crate::local::LocalCat;
        assert!(report.local.overall[LocalCat::Prologue as usize] > 0);
        assert!(report.local.overall[LocalCat::Return as usize] >= 500);
    }

    #[test]
    fn skip_phase_excludes_startup() {
        let image = small_image();
        let full = quick(&image, &AnalysisConfig::default());
        let skipped = quick(&image, &AnalysisConfig { skip: 1000, ..AnalysisConfig::default() });
        assert_eq!(skipped.dynamic_total + 1000, full.dynamic_total);
        // Repetition persists in the steady-state region.
        assert!(skipped.repetition_rate() > 0.6);
    }

    #[test]
    fn window_truncates() {
        let image = small_image();
        let cfg = AnalysisConfig { window: 2000, ..AnalysisConfig::default() };
        let report = quick(&image, &cfg);
        assert_eq!(report.outcome, RunOutcome::MaxedOut);
        assert_eq!(report.dynamic_total, 2000);
    }

    #[test]
    fn steady_state_is_stable_for_uniform_loop() {
        let image = small_image();
        let cfg = AnalysisConfig { skip: 2000, window: 4000, ..AnalysisConfig::default() };
        let dev = steady_state_check(&image, Vec::new(), &cfg, 4).unwrap();
        assert!(dev < 0.15, "deviation {dev}");
    }

    #[test]
    fn batch_run_matches_serial_for_every_thread_count() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let serial: Vec<u64> = (0..4).map(|_| quick(&image, &cfg).dynamic_repeated).collect();
        for threads in [1, 2, 7] {
            let jobs: Vec<AnalysisJob<'_>> = (0..4)
                .map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" })
                .collect();
            let parallel: Vec<u64> = Session::new(cfg)
                .jobs(threads)
                .run(jobs)
                .into_iter()
                .map(|r| r.unwrap().report.dynamic_repeated)
                .collect();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn metrics_sink_does_not_perturb_report() {
        let image = small_image();
        let cfg = AnalysisConfig { skip: 500, ..AnalysisConfig::default() };
        let plain = quick(&image, &cfg);
        let mut m = WorkloadMetrics::default();
        let probes = Probes { metrics: Some(&mut m), ..Probes::none() };
        let instrumented = run_probed(
            &image,
            Vec::new(),
            &cfg,
            InterpTier::default(),
            AnalysisTier::default(),
            SplitObservers::all(),
            probes,
        )
        .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{instrumented:?}"));
        // Phases arrive in pipeline order with the right event counts.
        let names: Vec<&str> = m.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["setup", "skip", "measure", "finalize"]);
        assert_eq!(m.phase("skip").unwrap().events, 500);
        assert_eq!(m.phase("measure").unwrap().events, instrumented.dynamic_total);
        // Gauges are present and consistent with the report.
        let gauge = |n: &str| m.gauges.iter().find(|(g, _)| *g == n).unwrap().1;
        assert_eq!(gauge("tracker_static_entries"), instrumented.static_total as u64);
        assert!(gauge("tracker_instances_buffered") >= instrumented.unique_repeatable);
        assert!(gauge("reuse_entries_valid") > 0);
        assert!(gauge("sim_resident_pages") > 0);
    }

    #[test]
    fn batch_metrics_do_not_perturb_reports() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = |n: usize| -> Vec<AnalysisJob<'_>> {
            (0..n).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect()
        };
        let plain: Vec<String> = Session::new(cfg)
            .jobs(2)
            .run(jobs(3))
            .into_iter()
            .map(|r| format!("{:?}", r.unwrap().report))
            .collect();
        let with: Vec<String> = Session::new(cfg)
            .jobs(2)
            .metrics(true)
            .run(jobs(3))
            .into_iter()
            .map(|r| format!("{:?}", r.unwrap().report))
            .collect();
        assert_eq!(plain, with);
    }

    #[test]
    fn probes_do_not_perturb_report() {
        let image = small_image();
        let cfg = AnalysisConfig { skip: 500, ..AnalysisConfig::default() };
        let plain = quick(&image, &cfg);
        let tracer = SpanTracer::new();
        let mut lane = SpanLane::new(0, tracer.epoch());
        let mut sampler = IntervalSampler::new(700);
        let mut m = WorkloadMetrics::default();
        let mut profile = InstructionProfile::default();
        let mut lp = LoopProfiler::new(image.text.len());
        let registry = crate::TelemetryRegistry::new();
        let tel = registry.pipeline_lane(0);
        let probed = run_probed(
            &image,
            Vec::new(),
            &cfg,
            InterpTier::default(),
            AnalysisTier::default(),
            SplitObservers::all(),
            Probes {
                metrics: Some(&mut m),
                spans: Some(&mut lane),
                sampler: Some(&mut sampler),
                profile: Some(&mut profile),
                telemetry: Some(&tel),
                loops: Some(&mut lp),
            },
        )
        .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{probed:?}"));
        // The live lane count matches exactly after the flushes: skip
        // window plus the measured instructions.
        assert_eq!(tel.lane().icount(), cfg.skip + probed.dynamic_total);
        // One span per pipeline phase, closed in pipeline order.
        let names: Vec<&str> = lane.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["setup", "skip", "measure", "finalize"]);
        assert_eq!(lane.spans()[2].events, probed.dynamic_total);
        // Windows tile the measurement exactly and sum to the report.
        let w = sampler.windows();
        assert!(!w.is_empty());
        assert_eq!(w.iter().map(|w| w.insns).sum::<u64>(), probed.dynamic_total);
        assert_eq!(w.iter().map(|w| w.repeated).sum::<u64>(), probed.dynamic_repeated);
        assert_eq!(w.iter().map(|w| w.reuse_hits).sum::<u64>(), probed.reuse.hits);
        assert!(w[..w.len() - 1].iter().all(|w| !w.partial && w.insns == 700 && w.end % 700 == 0));
        assert_eq!(w.last().unwrap().occupancy, w.iter().map(|w| w.unique_growth).sum::<u64>());
        // The profile covers every measured instruction exactly once.
        assert_eq!(profile.total_exec(), probed.dynamic_total);
        assert_eq!(profile.total_repeated(), probed.dynamic_repeated);
        assert_eq!(profile.sites.len(), probed.static_executed);
        // The loop profiler saw the whole window: its path assignment
        // conserves the report's totals and found the for loop.
        let loops = lp.finish();
        assert_eq!(loops.total_exec(), probed.dynamic_total);
        assert_eq!(loops.total_repeated(), probed.dynamic_repeated);
        assert!(loops.max_depth >= 1 && !loops.loops.is_empty());
    }

    #[test]
    fn exact_interval_multiple_produces_no_tail_window() {
        // When the measured count is an exact multiple of the interval,
        // the final flush lands on the boundary and finish() must not
        // append a zero-width partial window.
        let image = small_image();
        let cfg = AnalysisConfig { window: 2000, ..AnalysisConfig::default() };
        let mut sampler = IntervalSampler::new(500);
        let report = run_probed(
            &image,
            Vec::new(),
            &cfg,
            InterpTier::default(),
            AnalysisTier::default(),
            SplitObservers::all(),
            Probes { sampler: Some(&mut sampler), ..Probes::none() },
        )
        .unwrap();
        assert_eq!(report.dynamic_total, 2000, "window must truncate exactly");
        let w = sampler.windows();
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|w| !w.partial && w.insns == 500));
        assert_eq!(w.last().unwrap().end, 2000);
    }

    #[test]
    fn batch_run_fills_profiles_identically_across_thread_counts() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs = |n: usize| -> Vec<AnalysisJob<'_>> {
            (0..n).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "" }).collect()
        };
        let profiles = |threads: usize| -> Vec<InstructionProfile> {
            Session::new(cfg)
                .jobs(threads)
                .profile(true)
                .run(jobs(3))
                .into_iter()
                .map(|r| r.unwrap().profile.expect("profile was requested"))
                .collect()
        };
        let serial = profiles(1);
        assert!(serial.iter().all(|p| p.total_exec() > 1000));
        assert_eq!(serial, profiles(4));
    }

    #[test]
    fn batch_run_traces_every_job_and_phase() {
        let image = small_image();
        let cfg = AnalysisConfig::default();
        let jobs: Vec<AnalysisJob<'_>> = (0..3)
            .map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "lookup" })
            .collect();
        let mut tracer = SpanTracer::new();
        let results =
            Session::new(cfg).jobs(2).metrics(true).interval(1000).trace(&mut tracer).run(jobs);
        assert_eq!(results.len(), 3);
        for r in results {
            let ir = r.unwrap();
            assert!(ir.metrics.is_some());
            let windows = ir.intervals.unwrap();
            assert_eq!(windows.iter().map(|w| w.insns).sum::<u64>(), ir.report.dynamic_total);
        }
        // One workload span per job, each wrapping the four phase spans,
        // on worker lanes >= 1.
        let spans = tracer.spans();
        let workloads: Vec<&Span> = spans.iter().filter(|s| s.cat == "workload").collect();
        assert_eq!(workloads.len(), 3);
        assert!(workloads.iter().all(|s| s.name == "lookup" && s.lane >= 1));
        for lane in spans.iter().map(|s| s.lane).collect::<crate::FxHashSet<u32>>() {
            let names: Vec<&str> = spans
                .iter()
                .filter(|s| s.lane == lane && s.cat == "phase")
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(names.len() % 4, 0, "lane {lane} has whole jobs only");
            for chunk in names.chunks(4) {
                assert_eq!(chunk, ["setup", "skip", "measure", "finalize"]);
            }
        }
    }

    #[test]
    fn parallel_map_indexed_reports_valid_worker_ids() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let out = parallel_map_indexed((0..8u64).collect(), 3, |worker, i| {
            seen.lock().unwrap().push(worker);
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(seen.lock().unwrap().iter().all(|w| *w < 3));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        // Later items finish first (they sleep less); results must still
        // come back in input order.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_indexed(items, 8, |_, i| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (16 - i)));
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }
}
