//! Windowed repetition time series: how repetition evolves *over* a
//! program's execution, which the paper's end-of-run totals cannot show.
//!
//! An [`IntervalSampler`] closes a window every `interval` retired
//! instructions of the measurement phase and records, per window, the
//! repetition fraction, the reuse-buffer hit rate, the tracker's
//! instance-buffer occupancy, and how many new unique instances were
//! buffered. Sampling is boundary-only: per event the pipeline pays one
//! counter increment and one comparison; gauges are read only when a
//! window closes, so the analyses' output is byte-identical with the
//! sampler on or off.
//!
//! The series is emitted as JSONL ([`to_jsonl`]): a versioned header
//! line ([`INTERVAL_SCHEMA_VERSION`], `"kind": "intervals"`) followed by
//! one line per window, in workload order. Every value derives from the
//! deterministic analyses, so the document is byte-reproducible across
//! runs and `--jobs` counts. Schema in `DESIGN.md` §10.

use crate::metrics::{json_f64, json_string};

/// Version of the interval JSONL document. Bump on any change to field
/// names, meanings, or structure; `scripts/ci.sh` greps for the current
/// value to catch accidental drift.
pub const INTERVAL_SCHEMA_VERSION: u32 = 1;

/// One closed measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalWindow {
    /// Measured instructions retired when the window closed (an exact
    /// multiple of the interval, except for a final partial window).
    pub end: u64,
    /// Instructions in this window (the interval, or the remainder for
    /// a final partial window).
    pub insns: u64,
    /// Instructions classified repeated within the window.
    pub repeated: u64,
    /// Reuse-buffer hits within the window.
    pub reuse_hits: u64,
    /// Tracker instances buffered when the window closed (absolute).
    pub occupancy: u64,
    /// Instances newly buffered during the window (unique-instance
    /// growth).
    pub unique_growth: u64,
    /// Whether this is a final window shorter than the interval.
    pub partial: bool,
}

impl IntervalWindow {
    /// Fraction of the window's instructions classified repeated.
    pub fn repeat_frac(&self) -> f64 {
        frac(self.repeated, self.insns)
    }

    /// Fraction of the window's instructions that hit the reuse buffer.
    pub fn reuse_hit_frac(&self) -> f64 {
        frac(self.reuse_hits, self.insns)
    }
}

fn frac(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Accumulates [`IntervalWindow`]s over one workload's measurement
/// phase.
///
/// The pipeline drives it with [`IntervalSampler::tick`] once per
/// retired instruction and flushes gauges at the boundaries `tick`
/// reports; [`IntervalSampler::finish`] closes a trailing partial
/// window, if any.
///
/// # Examples
///
/// ```
/// use instrep_core::IntervalSampler;
///
/// let mut s = IntervalSampler::new(2);
/// for step in 1..=5u64 {
///     if s.tick() {
///         s.flush(step / 2, step, step * 10); // boundary gauges
///     }
/// }
/// s.finish(2, 5, 50);
/// let w = s.windows();
/// assert_eq!(w.len(), 3);
/// assert_eq!((w[0].end, w[0].insns, w[0].partial), (2, 2, false));
/// assert_eq!((w[2].end, w[2].insns, w[2].partial), (5, 1, true));
/// ```
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    interval: u64,
    in_window: u64,
    measured: u64,
    last_repeated: u64,
    last_hits: u64,
    last_buffered: u64,
    windows: Vec<IntervalWindow>,
}

impl IntervalSampler {
    /// Creates a sampler closing a window every `interval` instructions
    /// (clamped to at least 1).
    pub fn new(interval: u64) -> IntervalSampler {
        IntervalSampler {
            interval: interval.max(1),
            in_window: 0,
            measured: 0,
            last_repeated: 0,
            last_hits: 0,
            last_buffered: 0,
            windows: Vec::new(),
        }
    }

    /// The configured window size.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Counts one retired instruction; returns `true` when it completes
    /// a window (the caller must then call [`IntervalSampler::flush`]).
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.in_window += 1;
        self.measured += 1;
        self.in_window == self.interval
    }

    /// Closes the current (full) window with cumulative gauges:
    /// instructions classified repeated so far, reuse-buffer hits so
    /// far, and the tracker's current buffered-instance count.
    pub fn flush(&mut self, repeated: u64, reuse_hits: u64, buffered: u64) {
        self.close(false, repeated, reuse_hits, buffered);
    }

    /// Closes a trailing partial window, if any instructions retired
    /// since the last boundary. Call once, after the run.
    pub fn finish(&mut self, repeated: u64, reuse_hits: u64, buffered: u64) {
        if self.in_window > 0 {
            self.close(true, repeated, reuse_hits, buffered);
        }
    }

    fn close(&mut self, partial: bool, repeated: u64, reuse_hits: u64, buffered: u64) {
        self.windows.push(IntervalWindow {
            end: self.measured,
            insns: self.in_window,
            repeated: repeated - self.last_repeated,
            reuse_hits: reuse_hits - self.last_hits,
            occupancy: buffered,
            unique_growth: buffered - self.last_buffered,
            partial,
        });
        self.in_window = 0;
        self.last_repeated = repeated;
        self.last_hits = reuse_hits;
        self.last_buffered = buffered;
    }

    /// The closed windows so far.
    pub fn windows(&self) -> &[IntervalWindow] {
        &self.windows
    }

    /// Consumes the sampler, returning its closed windows.
    pub fn into_windows(self) -> Vec<IntervalWindow> {
        self.windows
    }
}

/// Renders the interval JSONL document: a header line followed by one
/// line per window, workloads in the given order.
pub fn to_jsonl(
    scale: &str,
    seed: u64,
    jobs: usize,
    interval: u64,
    series: &[(String, Vec<IntervalWindow>)],
) -> String {
    let mut s =
        String::with_capacity(128 + series.iter().map(|(_, w)| w.len() * 160).sum::<usize>());
    s.push_str(&format!(
        "{{\"schema_version\": {INTERVAL_SCHEMA_VERSION}, \"kind\": \"intervals\", \
         \"scale\": {}, \"seed\": {seed}, \"jobs\": {jobs}, \"interval\": {interval}}}\n",
        json_string(scale),
    ));
    for (name, windows) in series {
        for (i, w) in windows.iter().enumerate() {
            s.push_str(&format!(
                "{{\"workload\": {}, \"window\": {}, \"end\": {}, \"insns\": {}, \
                 \"repeated\": {}, \"repeat_frac\": {}, \"reuse_hits\": {}, \
                 \"reuse_hit_frac\": {}, \"occupancy\": {}, \"unique_growth\": {}, \
                 \"partial\": {}}}\n",
                json_string(name),
                i + 1,
                w.end,
                w.insns,
                w.repeated,
                json_f64(w.repeat_frac()),
                w.reuse_hits,
                json_f64(w.reuse_hit_frac()),
                w.occupancy,
                w.unique_growth,
                w.partial,
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fall_on_exact_multiples() {
        let mut s = IntervalSampler::new(3);
        let mut closed = Vec::new();
        for step in 1..=10u64 {
            if s.tick() {
                s.flush(step / 2, step / 3, step);
                closed.push(step);
            }
        }
        s.finish(5, 3, 10);
        assert_eq!(closed, [3, 6, 9]);
        let w = s.windows();
        assert_eq!(w.len(), 4);
        assert!(w[..3].iter().all(|w| !w.partial && w.insns == 3 && w.end % 3 == 0));
        let last = w[3];
        assert!(last.partial);
        assert_eq!((last.end, last.insns), (10, 1));
        // Window deltas reconstruct the cumulative gauges.
        assert_eq!(w.iter().map(|w| w.repeated).sum::<u64>(), 5);
        assert_eq!(w.iter().map(|w| w.reuse_hits).sum::<u64>(), 3);
        assert_eq!(w.iter().map(|w| w.unique_growth).sum::<u64>(), 10);
        assert_eq!(last.occupancy, 10);
    }

    #[test]
    fn exact_fit_leaves_no_partial_window() {
        let mut s = IntervalSampler::new(2);
        for step in 1..=4u64 {
            if s.tick() {
                s.flush(0, 0, step);
            }
        }
        s.finish(0, 0, 4);
        assert_eq!(s.windows().len(), 2);
        assert!(s.windows().iter().all(|w| !w.partial));
        // No zero-width tail either: every window holds instructions and
        // the windows tile the measured count exactly.
        assert!(s.windows().iter().all(|w| w.insns > 0));
        assert_eq!(s.windows().iter().map(|w| w.insns).sum::<u64>(), 4);
        // A redundant finish stays a no-op even if gauges moved since —
        // close() must never run with an empty window.
        s.finish(9, 9, 9);
        assert_eq!(s.windows().len(), 2);
    }

    #[test]
    fn zero_interval_clamps_to_one() {
        let mut s = IntervalSampler::new(0);
        assert_eq!(s.interval(), 1);
        assert!(s.tick());
    }

    #[test]
    fn fractions() {
        let w = IntervalWindow {
            end: 10,
            insns: 4,
            repeated: 3,
            reuse_hits: 1,
            occupancy: 5,
            unique_growth: 2,
            partial: false,
        };
        assert!((w.repeat_frac() - 0.75).abs() < 1e-12);
        assert!((w.reuse_hit_frac() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jsonl_shape() {
        let windows = vec![
            IntervalWindow {
                end: 2,
                insns: 2,
                repeated: 1,
                reuse_hits: 1,
                occupancy: 2,
                unique_growth: 2,
                partial: false,
            },
            IntervalWindow {
                end: 3,
                insns: 1,
                repeated: 1,
                reuse_hits: 0,
                occupancy: 2,
                unique_growth: 0,
                partial: true,
            },
        ];
        let doc = to_jsonl("tiny", 7, 2, 2, &[("compress".to_string(), windows)]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema_version\": 1"));
        assert!(lines[0].contains("\"kind\": \"intervals\""));
        assert!(lines[0].contains("\"interval\": 2"));
        assert!(lines[1].contains("\"workload\": \"compress\""));
        assert!(lines[1].contains("\"window\": 1"));
        assert!(lines[1].contains("\"partial\": false"));
        assert!(lines[2].contains("\"partial\": true"));
    }
}
