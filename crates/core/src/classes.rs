//! Per-instruction-class total analysis.
//!
//! The paper notes (§2) that the total analysis "can also be carried out
//! for different types of instructions, e.g., loads, stores, ALU
//! operations, etc. (but we do not do so in this paper)". This module is
//! that deferred experiment: repetition rates broken down by instruction
//! class, the first question a value-prediction design asks ("are loads
//! more repetitive than ALU ops?").

use instrep_isa::Insn;
use instrep_sim::Event;

/// Coarse instruction classes for the breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InsnClass {
    /// Register-register and register-immediate arithmetic/logic
    /// (including shifts and `lui`).
    Alu = 0,
    /// Memory loads.
    Load = 1,
    /// Memory stores.
    Store = 2,
    /// Conditional branches.
    Branch = 3,
    /// Jumps, calls, returns.
    Jump = 4,
    /// Environment calls and traps.
    System = 5,
}

impl InsnClass {
    /// All classes in reporting order.
    pub const ALL: [InsnClass; 6] = [
        InsnClass::Alu,
        InsnClass::Load,
        InsnClass::Store,
        InsnClass::Branch,
        InsnClass::Jump,
        InsnClass::System,
    ];

    /// Row label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InsnClass::Alu => "alu",
            InsnClass::Load => "load",
            InsnClass::Store => "store",
            InsnClass::Branch => "branch",
            InsnClass::Jump => "jump",
            InsnClass::System => "system",
        }
    }

    /// Classifies a decoded instruction.
    pub fn of(insn: &Insn) -> InsnClass {
        match insn {
            Insn::Alu { .. } | Insn::Imm { .. } | Insn::Shift { .. } | Insn::Lui { .. } => {
                InsnClass::Alu
            }
            Insn::Mem { op, .. } => {
                if op.is_load() {
                    InsnClass::Load
                } else {
                    InsnClass::Store
                }
            }
            Insn::Branch { .. } => InsnClass::Branch,
            Insn::Jump { .. } | Insn::Jr { .. } | Insn::Jalr { .. } => InsnClass::Jump,
            Insn::Syscall | Insn::Break => InsnClass::System,
        }
    }
}

/// Per-class dynamic and repetition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Dynamic instructions per class.
    pub overall: [u64; 6],
    /// Repeated dynamic instructions per class.
    pub repeated: [u64; 6],
}

impl ClassCounts {
    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.overall.iter().sum()
    }

    /// Share of all dynamic instructions in `class`.
    pub fn overall_share(&self, class: InsnClass) -> f64 {
        ratio(self.overall[class as usize], self.total())
    }

    /// Fraction of the class's instructions that repeated.
    pub fn propensity(&self, class: InsnClass) -> f64 {
        ratio(self.repeated[class as usize], self.overall[class as usize])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The per-class observer.
#[derive(Debug, Default)]
pub struct ClassAnalysis {
    counts: ClassCounts,
}

impl ClassAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> ClassAnalysis {
        ClassAnalysis::default()
    }

    /// Observes one retired instruction.
    pub fn observe(&mut self, ev: &Event, repeated: bool, counting: bool) {
        if !counting {
            return;
        }
        self.count(InsnClass::of(&ev.insn) as u8, repeated);
    }

    /// Bumps the counters for an already-classified instruction — the
    /// fused tier caches the class in its per-static hot row instead of
    /// re-matching the instruction enum per event.
    #[inline]
    pub(crate) fn count(&mut self, class: u8, repeated: bool) {
        self.counts.overall[class as usize] += 1;
        if repeated {
            self.counts.repeated[class as usize] += 1;
        }
    }

    /// Accumulated counters.
    pub fn counts(&self) -> &ClassCounts {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, BranchOp, ImmOp, MemOp, MemWidth, Reg, ShiftOp};

    #[test]
    fn classification_covers_all_forms() {
        use InsnClass::*;
        let cases = [
            (Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1), Alu),
            (Insn::imm(ImmOp::Ori, Reg::T0, Reg::ZERO, 1), Alu),
            (Insn::Shift { op: ShiftOp::Sll, rd: Reg::T0, rt: Reg::T1, shamt: 2 }, Alu),
            (Insn::Lui { rt: Reg::T0, imm: 1 }, Alu),
            (
                Insn::Mem { op: MemOp::Load(MemWidth::Word), rt: Reg::T0, base: Reg::SP, off: 0 },
                Load,
            ),
            (
                Insn::Mem { op: MemOp::Store(MemWidth::Byte), rt: Reg::T0, base: Reg::SP, off: 0 },
                Store,
            ),
            (Insn::Branch { op: BranchOp::Beq, rs: Reg::T0, rt: Reg::T1, off: 1 }, Branch),
            (Insn::Jump { link: true, target: 0 }, Jump),
            (Insn::Jr { rs: Reg::RA }, Jump),
            (Insn::Jalr { rd: Reg::RA, rs: Reg::T9 }, Jump),
            (Insn::Syscall, System),
            (Insn::Break, System),
        ];
        for (insn, want) in cases {
            assert_eq!(InsnClass::of(&insn), want, "{insn}");
        }
    }

    #[test]
    fn counting_and_shares() {
        let mut a = ClassAnalysis::new();
        let ev = |insn| Event {
            pc: 0x40_0000,
            index: 0,
            insn,
            in1: 0,
            in2: 0,
            out: Some(0),
            mem: None,
            ctrl: None,
        };
        let alu = ev(Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1));
        let jr = ev(Insn::Jr { rs: Reg::RA });
        a.observe(&alu, true, true);
        a.observe(&alu, false, true);
        a.observe(&jr, true, true);
        a.observe(&jr, true, false); // gated off
        let c = a.counts();
        assert_eq!(c.total(), 3);
        assert!((c.overall_share(InsnClass::Alu) - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.propensity(InsnClass::Alu) - 0.5).abs() < 1e-9);
        assert!((c.propensity(InsnClass::Jump) - 1.0).abs() < 1e-9);
        assert_eq!(c.propensity(InsnClass::Store), 0.0);
    }
}
