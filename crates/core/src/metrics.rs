//! Observability layer for the analysis pipeline: phase timers,
//! event-throughput counters, per-analysis occupancy gauges, and peak-RSS
//! sampling, emitted as a versioned machine-readable JSON document.
//!
//! Collection is strictly *pull-based*: the pipeline samples monotonic
//! timestamps at phase boundaries and queries each analysis for its table
//! occupancy after the run. Nothing executes per event, so enabling
//! metrics cannot perturb the analyses' output — the tables stay
//! byte-identical with metrics on or off, for every `--jobs` count — and
//! disabling them costs exactly one `Option` branch per phase boundary.
//!
//! Two document kinds share [`METRICS_SCHEMA_VERSION`] (both documented
//! in `DESIGN.md` §9):
//!
//! * `"metrics"` — one run: per-workload phases (wall time, events,
//!   events/sec) and gauges ([`MetricsReport::to_json`]).
//! * `"bench"` — N repeated runs summarized as median + IQR per
//!   workload/phase ([`BenchSummary::to_json`]), the unit of the
//!   `BENCH_*.json` performance trajectory written by `scripts/bench.sh`.

use std::time::Instant;

/// Version of the JSON documents this module emits. Bump on any change
/// to field names, meanings, or structure; `scripts/ci.sh` greps for the
/// current value to catch accidental drift.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// A monotonic-clock stopwatch for one pipeline phase.
///
/// # Examples
///
/// ```
/// use instrep_core::metrics::PhaseTimer;
///
/// let t = PhaseTimer::start();
/// let ns = t.elapsed_ns();
/// assert!(t.elapsed_ns() >= ns);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    start: Instant,
}

impl PhaseTimer {
    /// Starts the stopwatch.
    pub fn start() -> PhaseTimer {
        PhaseTimer { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`PhaseTimer::start`]. Monotonic —
    /// never goes backwards, even if the wall clock is adjusted.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Wall time and event count for one phase of one workload's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase name (`"build"`, `"setup"`, `"skip"`, `"measure"`,
    /// `"finalize"`).
    pub name: &'static str,
    /// Wall-clock nanoseconds spent in the phase.
    pub wall_ns: u64,
    /// Simulator events (retired instructions) processed in the phase;
    /// 0 for phases that process no event stream.
    pub events: u64,
}

impl PhaseMetrics {
    /// Throughput in events per second (0.0 when no time was observed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Wall time in fractional milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// Everything the pipeline records about one workload's analysis run:
/// an ordered list of phases plus end-of-run occupancy gauges.
///
/// # Examples
///
/// ```
/// use instrep_core::metrics::WorkloadMetrics;
///
/// let mut m = WorkloadMetrics::default();
/// m.record_phase_ns("measure", 2_000_000, 1000);
/// m.gauge("tracker_instances_buffered", 42);
/// assert_eq!(m.events_total(), 1000);
/// assert_eq!(m.phase("measure").unwrap().events, 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkloadMetrics {
    /// Phases in execution order.
    pub phases: Vec<PhaseMetrics>,
    /// Named occupancy/size gauges sampled at the end of the run, in a
    /// fixed order (deterministic output).
    pub gauges: Vec<(&'static str, u64)>,
}

impl WorkloadMetrics {
    /// Appends a completed phase from a running [`PhaseTimer`].
    pub fn record_phase(&mut self, name: &'static str, timer: PhaseTimer, events: u64) {
        self.record_phase_ns(name, timer.elapsed_ns(), events);
    }

    /// Appends a completed phase from a raw nanosecond duration.
    pub fn record_phase_ns(&mut self, name: &'static str, wall_ns: u64, events: u64) {
        self.phases.push(PhaseMetrics { name, wall_ns, events });
    }

    /// Prepends a phase (used for the per-workload build step, which
    /// happens before the pipeline runs).
    pub fn prepend_phase_ns(&mut self, name: &'static str, wall_ns: u64, events: u64) {
        self.phases.insert(0, PhaseMetrics { name, wall_ns, events });
    }

    /// Records one named gauge.
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.push((name, value));
    }

    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total events across all phases.
    pub fn events_total(&self) -> u64 {
        self.phases.iter().map(|p| p.events).sum()
    }
}

/// One run's metrics document (kind `"metrics"`).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Workload scale label (`"tiny"`, `"small"`, `"full"`).
    pub scale: String,
    /// Input-generation seed.
    pub seed: u64,
    /// Worker threads the pipeline ran with.
    pub jobs: usize,
    /// Per-workload metrics, in workload order.
    pub workloads: Vec<(String, WorkloadMetrics)>,
    /// Process peak resident set size; 0 when the platform does not
    /// expose it (see [`peak_rss_bytes`]).
    pub peak_rss_bytes: u64,
    /// Wall time of the whole pipeline invocation (all workloads).
    pub wall_ns_total: u64,
}

impl MetricsReport {
    /// Renders the versioned JSON document. Key order is fixed, so the
    /// output is deterministic for deterministic inputs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        push_kv_u64(&mut s, 1, "schema_version", u64::from(METRICS_SCHEMA_VERSION), true);
        push_kv_str(&mut s, 1, "kind", "metrics", true);
        push_kv_str(&mut s, 1, "scale", &self.scale, true);
        push_kv_u64(&mut s, 1, "seed", self.seed, true);
        push_kv_u64(&mut s, 1, "jobs", self.jobs as u64, true);
        push_kv_f64(&mut s, 1, "wall_ms_total", self.wall_ns_total as f64 / 1e6, true);
        push_kv_u64(&mut s, 1, "peak_rss_bytes", self.peak_rss_bytes, true);
        indent(&mut s, 1);
        s.push_str("\"workloads\": [\n");
        for (wi, (name, m)) in self.workloads.iter().enumerate() {
            indent(&mut s, 2);
            s.push_str("{\n");
            push_kv_str(&mut s, 3, "name", name, true);
            push_kv_u64(&mut s, 3, "events_total", m.events_total(), true);
            indent(&mut s, 3);
            s.push_str("\"phases\": [\n");
            for (pi, p) in m.phases.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str(&format!(
                    "{{\"name\": {}, \"wall_ms\": {}, \"events\": {}, \
                     \"events_per_sec\": {}}}{}\n",
                    json_string(p.name),
                    json_f64(p.wall_ms()),
                    p.events,
                    json_f64(p.events_per_sec()),
                    comma(pi + 1 < m.phases.len()),
                ));
            }
            indent(&mut s, 3);
            s.push_str("],\n");
            indent(&mut s, 3);
            s.push_str("\"gauges\": {\n");
            for (gi, (gname, gval)) in m.gauges.iter().enumerate() {
                indent(&mut s, 4);
                s.push_str(&format!(
                    "{}: {}{}\n",
                    json_string(gname),
                    gval,
                    comma(gi + 1 < m.gauges.len())
                ));
            }
            indent(&mut s, 3);
            s.push_str("}\n");
            indent(&mut s, 2);
            s.push_str(&format!("}}{}\n", comma(wi + 1 < self.workloads.len())));
        }
        indent(&mut s, 1);
        s.push_str("]\n}\n");
        s
    }
}

/// Median + IQR summary for one phase across N bench runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Phase name.
    pub name: &'static str,
    /// Median wall time in milliseconds.
    pub median_ms: f64,
    /// Interquartile range of wall time in milliseconds.
    pub iqr_ms: f64,
    /// Fastest run's wall time in milliseconds — the
    /// repetition-tester headline number (noise only ever adds time,
    /// so the minimum is the best estimate of the true cost).
    pub min_ms: f64,
    /// Slowest run's wall time in milliseconds.
    pub max_ms: f64,
    /// Mean wall time in milliseconds.
    pub avg_ms: f64,
    /// Median throughput in events/sec (0.0 for event-free phases).
    pub median_events_per_sec: f64,
}

/// Per-workload bench summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchWorkload {
    /// Workload name.
    pub name: String,
    /// Phase summaries in phase order.
    pub phases: Vec<BenchPhase>,
}

/// N repeated runs summarized as a perf-trajectory entry (kind
/// `"bench"`). Produced by [`summarize_runs`], consumed by
/// `scripts/bench.sh`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Number of runs summarized.
    pub runs: usize,
    /// Workload scale label.
    pub scale: String,
    /// Input-generation seed.
    pub seed: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Per-workload summaries, in workload order.
    pub workloads: Vec<BenchWorkload>,
}

impl BenchSummary {
    /// Renders the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        push_kv_u64(&mut s, 1, "schema_version", u64::from(METRICS_SCHEMA_VERSION), true);
        push_kv_str(&mut s, 1, "kind", "bench", true);
        push_kv_u64(&mut s, 1, "runs", self.runs as u64, true);
        push_kv_str(&mut s, 1, "scale", &self.scale, true);
        push_kv_u64(&mut s, 1, "seed", self.seed, true);
        push_kv_u64(&mut s, 1, "jobs", self.jobs as u64, true);
        indent(&mut s, 1);
        s.push_str("\"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            indent(&mut s, 2);
            s.push_str(&format!("{{\"name\": {}, \"phases\": [\n", json_string(&w.name)));
            for (pi, p) in w.phases.iter().enumerate() {
                indent(&mut s, 3);
                s.push_str(&format!(
                    "{{\"name\": {}, \"median_ms\": {}, \"iqr_ms\": {}, \"min_ms\": {}, \
                     \"max_ms\": {}, \"avg_ms\": {}, \"median_events_per_sec\": {}}}{}\n",
                    json_string(p.name),
                    json_f64(p.median_ms),
                    json_f64(p.iqr_ms),
                    json_f64(p.min_ms),
                    json_f64(p.max_ms),
                    json_f64(p.avg_ms),
                    json_f64(p.median_events_per_sec),
                    comma(pi + 1 < w.phases.len()),
                ));
            }
            indent(&mut s, 2);
            s.push_str(&format!("]}}{}\n", comma(wi + 1 < self.workloads.len())));
        }
        indent(&mut s, 1);
        s.push_str("]\n}\n");
        s
    }
}

/// Collapses N single-run [`MetricsReport`]s (same scale/seed/jobs and
/// workload set) into a [`BenchSummary`] of per-phase medians and IQRs.
///
/// # Errors
///
/// Returns a description of the mismatch if `runs` is empty or the runs
/// do not cover the same workloads and phases.
pub fn summarize_runs(runs: &[MetricsReport]) -> Result<BenchSummary, String> {
    let first = runs.first().ok_or("no runs to summarize")?;
    let mut workloads = Vec::with_capacity(first.workloads.len());
    for (wi, (name, m0)) in first.workloads.iter().enumerate() {
        let mut phases = Vec::with_capacity(m0.phases.len());
        for (pi, p0) in m0.phases.iter().enumerate() {
            let mut walls = Vec::with_capacity(runs.len());
            let mut rates = Vec::with_capacity(runs.len());
            for run in runs {
                let (wname, m) = run
                    .workloads
                    .get(wi)
                    .ok_or_else(|| format!("run missing workload #{wi} ({name})"))?;
                if wname != name {
                    return Err(format!("workload order mismatch: {wname} vs {name}"));
                }
                let p = m
                    .phases
                    .get(pi)
                    .filter(|p| p.name == p0.name)
                    .ok_or_else(|| format!("{name}: phase mismatch at #{pi} ({})", p0.name))?;
                walls.push(p.wall_ms());
                rates.push(p.events_per_sec());
            }
            let min_ms = walls.iter().copied().fold(f64::INFINITY, f64::min);
            let max_ms = walls.iter().copied().fold(0.0, f64::max);
            let avg_ms = walls.iter().sum::<f64>() / walls.len() as f64;
            let median_ms = median(&mut walls);
            let iqr_ms = iqr(&mut walls);
            let median_events_per_sec = median(&mut rates);
            phases.push(BenchPhase {
                name: p0.name,
                median_ms,
                iqr_ms,
                min_ms,
                max_ms,
                avg_ms,
                median_events_per_sec,
            });
        }
        workloads.push(BenchWorkload { name: name.clone(), phases });
    }
    Ok(BenchSummary {
        runs: runs.len(),
        scale: first.scale.clone(),
        seed: first.seed,
        jobs: first.jobs,
        workloads,
    })
}

/// Median of a sample (sorts in place). Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use instrep_core::metrics::median;
///
/// assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
/// assert_eq!(median(&mut [1.0, 2.0, 3.0, 4.0]), 2.5);
/// ```
pub fn median(xs: &mut [f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Interquartile range (Q3 − Q1, linear interpolation) of a sample
/// (sorts in place). Returns 0.0 for samples of fewer than two points.
///
/// # Examples
///
/// ```
/// use instrep_core::metrics::iqr;
///
/// assert_eq!(iqr(&mut [1.0, 2.0, 3.0, 4.0, 5.0]), 2.0);
/// assert_eq!(iqr(&mut [7.0]), 0.0);
/// ```
pub fn iqr(xs: &mut [f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

/// Linearly interpolated quantile `q` in `[0, 1]` (sorts in place).
fn quantile(xs: &mut [f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("metrics values are finite"));
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    xs[lo] + (xs[hi] - xs[lo]) * frac
}

/// Process peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`). Degrades to 0 on platforms without procfs or
/// when the field is missing or unparseable — a 0 gauge, never a
/// garbage value.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status").map_or(0, |s| parse_vm_hwm(&s))
}

/// Extracts `VmHWM` from a `/proc/self/status`-shaped document, in
/// bytes. Any surprise — missing line, non-numeric value, unexpected
/// unit — yields 0, and huge values saturate instead of wrapping.
fn parse_vm_hwm(status: &str) -> u64 {
    let Some(rest) = status.lines().find_map(|l| l.strip_prefix("VmHWM:")) else {
        return 0;
    };
    let Some(kb) = rest.trim().strip_suffix("kB") else {
        return 0;
    };
    kb.trim().parse::<u64>().map_or(0, |kb| kb.saturating_mul(1024))
}

// --- tiny deterministic JSON emission helpers -------------------------
// Shared with the trace_span and interval emitters (same crate), which
// version their documents the same way.

pub(crate) fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

pub(crate) fn comma(more: bool) -> &'static str {
    if more {
        ","
    } else {
        ""
    }
}

pub(crate) fn push_kv_raw(s: &mut String, level: usize, key: &str, value: &str, more: bool) {
    indent(s, level);
    s.push_str(&format!("{}: {}{}\n", json_string(key), value, comma(more)));
}

pub(crate) fn push_kv_u64(s: &mut String, level: usize, key: &str, value: u64, more: bool) {
    push_kv_raw(s, level, key, &value.to_string(), more);
}

pub(crate) fn push_kv_f64(s: &mut String, level: usize, key: &str, value: f64, more: bool) {
    push_kv_raw(s, level, key, &json_f64(value), more);
}

pub(crate) fn push_kv_str(s: &mut String, level: usize, key: &str, value: &str, more: bool) {
    push_kv_raw(s, level, key, &json_string(value), more);
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 as a JSON number (3 decimal places; NaN and
/// infinities — which the pipeline never produces — clamp to 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(walls_ms: &[f64]) -> Vec<MetricsReport> {
        walls_ms
            .iter()
            .map(|&w| {
                let mut m = WorkloadMetrics::default();
                m.record_phase_ns("measure", (w * 1e6) as u64, 1000);
                m.gauge("g", 1);
                MetricsReport {
                    scale: "tiny".to_string(),
                    seed: 1,
                    jobs: 1,
                    workloads: vec![("w".to_string(), m)],
                    peak_rss_bytes: 0,
                    wall_ns_total: 0,
                }
            })
            .collect()
    }

    #[test]
    fn quantiles() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [5.0]), 5.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(iqr(&mut [1.0, 2.0, 3.0, 4.0, 5.0]), 2.0);
        assert_eq!(iqr(&mut []), 0.0);
    }

    #[test]
    fn throughput() {
        let p = PhaseMetrics { name: "measure", wall_ns: 2_000_000_000, events: 10_000 };
        assert!((p.events_per_sec() - 5_000.0).abs() < 1e-9);
        assert_eq!(PhaseMetrics { name: "x", wall_ns: 0, events: 5 }.events_per_sec(), 0.0);
    }

    #[test]
    fn summarize_medians_and_iqr() {
        let runs = report_with(&[10.0, 30.0, 20.0]);
        let s = summarize_runs(&runs).unwrap();
        assert_eq!(s.runs, 3);
        assert_eq!(s.workloads.len(), 1);
        let p = &s.workloads[0].phases[0];
        assert_eq!(p.name, "measure");
        assert!((p.median_ms - 20.0).abs() < 1e-9);
        assert!((p.min_ms - 10.0).abs() < 1e-9);
        assert!((p.max_ms - 30.0).abs() < 1e-9);
        assert!((p.avg_ms - 20.0).abs() < 1e-9);
        assert!(p.median_events_per_sec > 0.0);
    }

    #[test]
    fn summarize_rejects_mismatched_runs() {
        assert!(summarize_runs(&[]).is_err());
        let mut runs = report_with(&[10.0, 20.0]);
        runs[1].workloads[0].0 = "other".to_string();
        assert!(summarize_runs(&runs).is_err());
    }

    #[test]
    fn json_documents_carry_schema_version() {
        let runs = report_with(&[10.0]);
        let metrics_json = runs[0].to_json();
        assert!(metrics_json.contains("\"schema_version\": 1"));
        assert!(metrics_json.contains("\"kind\": \"metrics\""));
        assert!(metrics_json.contains("\"events_per_sec\""));
        let bench_json = summarize_runs(&runs).unwrap().to_json();
        assert!(bench_json.contains("\"schema_version\": 1"));
        assert!(bench_json.contains("\"kind\": \"bench\""));
        assert!(bench_json.contains("\"median_ms\""));
        assert!(bench_json.contains("\"min_ms\""));
        assert!(bench_json.contains("\"max_ms\""));
        assert!(bench_json.contains("\"avg_ms\""));
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "0.000");
    }

    #[test]
    fn peak_rss_is_sane_on_linux() {
        let b = peak_rss_bytes();
        // A running test binary has touched at least a few pages; off
        // Linux the probe degrades to exactly 0.
        assert!(b == 0 || b > 4096, "peak RSS {b} implausible");
    }

    #[test]
    fn vm_hwm_parsing_degrades_to_zero() {
        let good = "VmPeak:\t  999 kB\nVmHWM:\t   5432 kB\nThreads: 4\n";
        assert_eq!(parse_vm_hwm(good), 5432 * 1024);
        // Missing field, garbage value, wrong unit: all degrade to 0.
        assert_eq!(parse_vm_hwm(""), 0);
        assert_eq!(parse_vm_hwm("VmPeak: 999 kB\n"), 0);
        assert_eq!(parse_vm_hwm("VmHWM: lots kB\n"), 0);
        assert_eq!(parse_vm_hwm("VmHWM: 5432 MB\n"), 0);
        assert_eq!(parse_vm_hwm("VmHWM: 5432\n"), 0);
        // Absurd values saturate rather than wrapping.
        assert_eq!(parse_vm_hwm("VmHWM: 18446744073709551615 kB\n"), u64::MAX);
    }
}
