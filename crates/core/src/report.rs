//! Text rendering of the paper's tables and figures.
//!
//! Every function takes `(benchmark name, report)` pairs and returns a
//! plain-text table with benchmarks as columns, in the layout of the
//! paper. The `instrep-repro` binary prints these; tests assert on their
//! structure.

use std::fmt::Write as _;

use crate::classes::InsnClass;
use crate::global::GlobalTag;
use crate::local::LocalCat;
use crate::pipeline::WorkloadReport;

/// A named report, as rendered into table columns.
pub type Named<'a> = (&'a str, &'a WorkloadReport);

fn header(title: &str, names: &[&str], first_col: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{first_col:<22}");
    for n in names {
        let _ = write!(s, "{n:>10}");
    }
    s.push('\n');
    let _ = writeln!(s, "{}", "-".repeat(22 + 10 * names.len()));
    s
}

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Table 1: dynamic/static repetition summary.
pub fn table1(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1: benchmarks, dynamic instructions (total, % repeated), static instructions"
    );
    let _ = writeln!(
        s,
        "{:<12}{:>14}{:>10}{:>10}{:>10}{:>10}",
        "bench", "dyn total", "rep %", "static", "exec %", "rep %"
    );
    let _ = writeln!(s, "{}", "-".repeat(66));
    for (name, r) in reports {
        let _ = writeln!(
            s,
            "{:<12}{:>14}{:>10}{:>10}{:>10}{:>10}",
            name,
            r.dynamic_total,
            pct(r.repetition_rate()),
            r.static_total,
            pct(r.static_executed_rate()),
            pct(r.static_repeated_rate()),
        );
    }
    s
}

/// Figure 1: static instructions needed for 50/75/90/99% of repetition.
pub fn figure1(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = header(
        "Figure 1: % of repeated static instructions covering X% of dynamic repetition",
        &names,
        "coverage target",
    );
    for target in [0.5, 0.75, 0.9, 0.99] {
        let _ = write!(s, "{:<22}", format!("{:.0}%", target * 100.0));
        for (_, r) in reports {
            let _ = write!(s, "{:>10}", pct(r.static_coverage.items_needed(target)));
        }
        s.push('\n');
    }
    s
}

/// Table 2: unique repeatable instances and average repeats.
pub fn table2(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: unique repeatable instances");
    let _ = writeln!(s, "{:<12}{:>14}{:>14}", "bench", "count", "avg repeats");
    let _ = writeln!(s, "{}", "-".repeat(40));
    for (name, r) in reports {
        let _ = writeln!(s, "{:<12}{:>14}{:>14.0}", name, r.unique_repeatable, r.avg_repeats);
    }
    s
}

/// Figure 3: repetition share by unique-repeatable-instance bucket.
pub fn figure3(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = header(
        "Figure 3: % of repetition from static instructions with N unique repeatable instances",
        &names,
        "N instances",
    );
    let labels = ["1", "2-10", "11-100", "101-1000", "1001+"];
    for (b, label) in labels.iter().enumerate() {
        let _ = write!(s, "{label:<22}");
        for (_, r) in reports {
            let _ = write!(s, "{:>10}", pct(r.instance_histogram[b]));
        }
        s.push('\n');
    }
    s
}

/// Figure 4: instances needed for 50/75/90% of repetition.
pub fn figure4(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = header(
        "Figure 4: % of unique repeatable instances covering X% of repetition",
        &names,
        "coverage target",
    );
    for target in [0.5, 0.75, 0.9] {
        let _ = write!(s, "{:<22}", format!("{:.0}%", target * 100.0));
        for (_, r) in reports {
            let _ = write!(s, "{:>10}", pct(r.instance_coverage.items_needed(target)));
        }
        s.push('\n');
    }
    s
}

/// Table 3: global source analysis (overall / repeated / propensity).
pub fn table3(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = String::new();
    for (section, f) in [
        ("Overall (% of all dynamic instructions)", 0),
        ("Repeated (% of all repeated instructions)", 1),
        ("Propensity (% of category repeated)", 2),
    ] {
        s.push_str(&header(&format!("Table 3 — {section}"), &names, "category"));
        for tag in GlobalTag::ALL {
            let _ = write!(s, "{:<22}", tag.label());
            for (_, r) in reports {
                let v = match f {
                    0 => r.global.overall_share(tag),
                    1 => r.global.repeated_share(tag),
                    _ => r.global.propensity(tag),
                };
                let _ = write!(s, "{:>10}", pct(v));
            }
            s.push('\n');
        }
        s.push('\n');
    }
    s
}

/// Table 4: function-level argument repetition.
pub fn table4(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 4: function-level analysis");
    let _ = writeln!(
        s,
        "{:<12}{:>8}{:>14}{:>14}{:>14}",
        "bench", "funcs", "dyn calls", "all-arg rep%", "no-arg rep%"
    );
    let _ = writeln!(s, "{}", "-".repeat(62));
    for (name, r) in reports {
        let _ = writeln!(
            s,
            "{:<12}{:>8}{:>14}{:>14}{:>14}",
            name,
            r.funcs_called,
            r.dynamic_calls,
            pct(r.all_arg_rate),
            pct(r.no_arg_rate),
        );
    }
    s
}

/// Tables 5, 6, 7: local analysis.
pub fn tables5_6_7(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = String::new();
    for (title, f) in [
        ("Table 5 — overall local analysis (% of all dynamic instructions)", 0),
        ("Table 6 — contribution to repetition (% of repeated instructions)", 1),
        ("Table 7 — propensity (% of category repeated)", 2),
    ] {
        s.push_str(&header(title, &names, "category"));
        for cat in LocalCat::ALL {
            let _ = write!(s, "{:<22}", cat.label());
            for (_, r) in reports {
                let v = match f {
                    0 => r.local.overall_share(cat),
                    1 => r.local.repeated_share(cat),
                    _ => r.local.propensity(cat),
                };
                let _ = write!(s, "{:>10}", pct(v));
            }
            s.push('\n');
        }
        s.push('\n');
    }
    s
}

/// Table 8: memoizable (side-effect- and implicit-input-free) calls.
pub fn table8(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 8: dynamic calls without side effects or implicit inputs");
    let _ = writeln!(s, "{:<12}{:>16}{:>24}", "bench", "% of all calls", "% of all-arg-rep calls");
    let _ = writeln!(s, "{}", "-".repeat(52));
    for (name, r) in reports {
        let _ = writeln!(s, "{:<12}{:>16}{:>24}", name, pct(r.pure_rate), pct(r.pure_all_arg_rate));
    }
    s
}

/// Figure 5: all-arg repetition covered by the top-k argument sets.
pub fn figure5(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = header(
        "Figure 5: % of all-argument repetition covered by k most frequent argument sets",
        &names,
        "k",
    );
    let k_max = reports.iter().map(|(_, r)| r.argset_coverage.len()).max().unwrap_or(0);
    for k in 0..k_max {
        let _ = write!(s, "{:<22}", k + 1);
        for (_, r) in reports {
            let v = r.argset_coverage.get(k).copied().unwrap_or(0.0);
            let _ = write!(s, "{:>10}", pct(v));
        }
        s.push('\n');
    }
    s
}

/// Table 9: top prologue/epilogue contributors per benchmark.
pub fn table9(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 9: top-5 contributors to prologue+epilogue repetition");
    for (name, r) in reports {
        let _ = writeln!(s, "{name}:");
        for (func, size, reps) in &r.prologue_top {
            let _ = writeln!(s, "    {func:<28} size {size:>5} insns   {reps:>10} reps");
        }
        let _ = writeln!(s, "    coverage of all P/E repetition: {}%", pct(r.prologue_coverage));
    }
    s
}

/// Figure 6: global+heap load repetition covered by top-k values.
pub fn figure6(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = header(
        "Figure 6: % of global+heap load repetition covered by k most frequent values",
        &names,
        "k",
    );
    let k_max = reports.iter().map(|(_, r)| r.load_value_coverage.len()).max().unwrap_or(0);
    for k in 0..k_max {
        let _ = write!(s, "{:<22}", k + 1);
        for (_, r) in reports {
            let v = r.load_value_coverage.get(k).copied().unwrap_or(0.0);
            let _ = write!(s, "{:>10}", pct(v));
        }
        s.push('\n');
    }
    s
}

/// Table 10: repetition captured by the reuse buffer.
pub fn table10(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 10: repetition captured by 8K-entry 4-way reuse buffer");
    let _ = writeln!(s, "{:<12}{:>16}{:>20}", "bench", "% of all inst", "% of repeated inst");
    let _ = writeln!(s, "{}", "-".repeat(48));
    for (name, r) in reports {
        let _ = writeln!(
            s,
            "{:<12}{:>16}{:>20}",
            name,
            pct(r.reuse.hit_rate()),
            pct(r.reuse.repeated_capture_rate())
        );
    }
    s
}

/// Extension table: per-instruction-class totals and propensities (the
/// total-analysis breakdown the paper's §2 defers).
pub fn ext_classes(reports: &[Named<'_>]) -> String {
    let names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
    let mut s = String::new();
    for (section, f) in [("share of dynamic instructions", 0), ("propensity to repeat", 1)] {
        s.push_str(&header(
            &format!("Extension — instruction classes ({section})"),
            &names,
            "class",
        ));
        for class in InsnClass::ALL {
            let _ = write!(s, "{:<22}", class.label());
            for (_, r) in reports {
                let v = if f == 0 {
                    r.classes.overall_share(class)
                } else {
                    r.classes.propensity(class)
                };
                let _ = write!(s, "{:>10}", pct(v));
            }
            s.push('\n');
        }
        s.push('\n');
    }
    s
}

/// Extension table: last-value prediction vs. reuse (paper §7).
pub fn ext_predict(reports: &[Named<'_>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Extension: unbounded value predictors vs 8K reuse buffer");
    let _ = writeln!(
        s,
        "{:<12}{:>14}{:>18}{:>14}{:>14}",
        "bench", "LVP hit %", "output-only %", "stride hit %", "reuse hit %"
    );
    let _ = writeln!(s, "{}", "-".repeat(72));
    for (name, r) in reports {
        let _ = writeln!(
            s,
            "{:<12}{:>14}{:>18}{:>14}{:>14}",
            name,
            pct(r.predict.hit_rate()),
            pct(r.predict.output_only_share()),
            pct(r.stride.hit_rate()),
            pct(r.reuse.hit_rate()),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisConfig;
    use crate::Session;

    fn sample() -> WorkloadReport {
        let image = instrep_minicc::build(
            r#"
            int f(int x) { return x + 1; }
            int main() {
                int i; int s = 0;
                for (i = 0; i < 50; i++) s += f(i & 3);
                return s;
            }
            "#,
        )
        .unwrap();
        Session::new(AnalysisConfig::default()).run_one(&image, Vec::new()).unwrap().report
    }

    #[test]
    fn all_tables_render() {
        let r = sample();
        let reports = [("demo", &r)];
        for table in [
            table1(&reports),
            figure1(&reports),
            table2(&reports),
            figure3(&reports),
            figure4(&reports),
            table3(&reports),
            table4(&reports),
            tables5_6_7(&reports),
            table8(&reports),
            figure5(&reports),
            table9(&reports),
            figure6(&reports),
            table10(&reports),
            ext_classes(&reports),
            ext_predict(&reports),
        ] {
            assert!(table.contains("demo"), "missing benchmark name in:\n{table}");
            assert!(table.len() > 40);
        }
    }

    #[test]
    fn table1_numbers_present() {
        let r = sample();
        let t = table1(&[("demo", &r)]);
        assert!(t.contains(&r.dynamic_total.to_string()));
        assert!(t.contains(&r.static_total.to_string()));
    }

    #[test]
    fn table3_sections() {
        let r = sample();
        let t = table3(&[("demo", &r)]);
        assert!(t.contains("Overall"));
        assert!(t.contains("Repeated"));
        assert!(t.contains("Propensity"));
        assert!(t.contains("global init data"));
    }

    #[test]
    fn local_tables_have_all_categories() {
        let r = sample();
        let t = tables5_6_7(&[("demo", &r)]);
        for cat in LocalCat::ALL {
            assert!(t.contains(cat.label()), "missing {}", cat.label());
        }
    }
}
