//! Local (within-function) analysis (paper §5.3; Tables 5–7 and 9,
//! Figure 6).
//!
//! Each dynamic instruction is binned into one of ten categories, using
//! two classification criteria:
//!
//! * **task-based** (checked first): `prologue`, `epilogue`,
//!   `glb_addr_calc`, `return`, and `SP` arithmetic;
//! * **source-based**: the supersede rule
//!   `arguments ≻ return values ≻ global/heap ≻ function internals`
//!   over per-register value tags that are re-established at every call
//!   boundary, exactly as in the paper: argument registers are tagged
//!   *argument* on entry, `$v0` is tagged *return value* after a call
//!   returns, loads from the data segment re-tag as *global*, loads from
//!   the heap as *heap*, and stack memory preserves the tag of the value
//!   spilled into it.
//!
//! Prologue/epilogue detection follows the paper: on function entry all
//! registers except the argument registers are marked frame-uninitialized;
//! stores of such registers to the stack are prologue (and their slots
//! remembered), loads from remembered slots are epilogue, and stack
//! allocation/deallocation instructions join the respective category.

use instrep_asm::Image;
use instrep_isa::abi::{self, Region};
use instrep_isa::{decode, ImmOp, Insn, Reg};
use instrep_sim::{CtrlEffect, Event};

use crate::fxhash::FxHashMap;
use crate::shadow::ShadowPages;

/// The ten local-analysis categories, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LocalCat {
    /// Callee-saved register saves and stack allocation.
    Prologue = 0,
    /// Restores of saved registers and stack deallocation.
    Epilogue = 1,
    /// Slices originating from immediates inside the function.
    FuncInternal = 2,
    /// Global-variable address formation (gp-relative or immediate).
    GlbAddrCalc = 3,
    /// Function returns (`jr $ra`).
    Return = 4,
    /// Arithmetic on the stack pointer (other than frame alloc/dealloc).
    Sp = 5,
    /// Slices originating from values returned by callees.
    ReturnValue = 6,
    /// Slices originating from function arguments.
    Argument = 7,
    /// Slices originating from data-segment loads.
    Global = 8,
    /// Slices originating from heap loads.
    Heap = 9,
}

impl LocalCat {
    /// All categories in reporting order (paper Tables 5–7 rows).
    pub const ALL: [LocalCat; 10] = [
        LocalCat::Prologue,
        LocalCat::Epilogue,
        LocalCat::FuncInternal,
        LocalCat::GlbAddrCalc,
        LocalCat::Return,
        LocalCat::Sp,
        LocalCat::ReturnValue,
        LocalCat::Argument,
        LocalCat::Global,
        LocalCat::Heap,
    ];

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LocalCat::Prologue => "prologue",
            LocalCat::Epilogue => "epilogue",
            LocalCat::FuncInternal => "function internals",
            LocalCat::GlbAddrCalc => "glb_addr_calc",
            LocalCat::Return => "return",
            LocalCat::Sp => "SP",
            LocalCat::ReturnValue => "return values",
            LocalCat::Argument => "arguments",
            LocalCat::Global => "global",
            LocalCat::Heap => "heap",
        }
    }
}

/// Value-source tag, ordered by supersede priority (higher wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
enum SrcTag {
    FnInternal = 0,
    Heap = 1,
    Global = 2,
    ReturnValue = 3,
    Argument = 4,
}

impl SrcTag {
    /// Decodes a tag from its `repr(u8)` discriminant.
    fn from_u8(v: u8) -> SrcTag {
        match v {
            0 => SrcTag::FnInternal,
            1 => SrcTag::Heap,
            2 => SrcTag::Global,
            3 => SrcTag::ReturnValue,
            _ => SrcTag::Argument,
        }
    }

    fn to_cat(self) -> LocalCat {
        match self {
            SrcTag::FnInternal => LocalCat::FuncInternal,
            SrcTag::Heap => LocalCat::Heap,
            SrcTag::Global => LocalCat::Global,
            SrcTag::ReturnValue => LocalCat::ReturnValue,
            SrcTag::Argument => LocalCat::Argument,
        }
    }
}

/// Per-category counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalCounts {
    /// Dynamic instructions per category.
    pub overall: [u64; 10],
    /// Repeated dynamic instructions per category.
    pub repeated: [u64; 10],
}

impl LocalCounts {
    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.overall.iter().sum()
    }

    /// Table 5: category share of all dynamic instructions.
    pub fn overall_share(&self, cat: LocalCat) -> f64 {
        ratio(self.overall[cat as usize], self.total())
    }

    /// Table 6: category share of all repeated instructions.
    pub fn repeated_share(&self, cat: LocalCat) -> f64 {
        ratio(self.repeated[cat as usize], self.repeated.iter().sum())
    }

    /// Table 7: fraction of the category's instructions that repeated.
    pub fn propensity(&self, cat: LocalCat) -> f64 {
        ratio(self.repeated[cat as usize], self.overall[cat as usize])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Cap on distinct values profiled per global/heap load (Figure 6).
const MAX_LOAD_VALUES: usize = 4096;

/// "No register" sentinel in [`LMeta`] operand slots. Distinct from
/// `Reg::ZERO`'s number: an absent operand contributes nothing to the
/// supersede max, while `$zero` contributes `FnInternal`.
const NO_REG: u8 = 0xFF;

/// `jr $ra` — a function return.
const LM_RET: u16 = 1 << 0;
/// `addi $sp, $sp, imm` — frame allocation or deallocation.
const LM_SP_ALLOC: u16 = 1 << 1;
/// The frame-allocation immediate is negative (allocation = prologue).
const LM_SP_NEG: u16 = 1 << 2;
/// Memory store (value register in `rt`).
const LM_STORE: u16 = 1 << 3;
/// Memory load.
const LM_LOAD: u16 = 1 << 4;
/// The memory base register is `$sp`.
const LM_BASE_SP: u16 = 1 << 5;
/// `lui` — address-constant candidate.
const LM_LUI: u16 = 1 << 6;
/// Immediate-operand instruction (gaddr rule keys off `s1`).
const LM_IMM: u16 = 1 << 7;
/// Register-register ALU instruction (gaddr rule over `s1`/`s2`).
const LM_ALU: u16 = 1 << 8;
/// Non-memory instruction reading `$sp` — the SP-arithmetic category.
const LM_SP_ARITH: u16 = 1 << 9;
/// The destination receives the link address (function-internal).
const LM_LINK: u16 = 1 << 10;
/// Slot decoded successfully; unset slots recompute from `Event::insn`.
const LM_VALID: u16 = 1 << 11;

/// Per-static-instruction classification rules, precomputed at
/// construction so the per-event path indexes a flat table instead of
/// re-matching the instruction enum on every retired instruction.
/// `pub(crate)` so the fused tier (`core::fused`) can embed one per hot
/// row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LMeta {
    /// First register read, or [`NO_REG`].
    s1: u8,
    /// Second register read, or [`NO_REG`].
    s2: u8,
    /// Destination register, or [`NO_REG`].
    def: u8,
    /// Memory value register (`rt`), or [`NO_REG`].
    rt: u8,
    flags: u16,
}

impl LMeta {
    pub(crate) const INVALID: LMeta =
        LMeta { s1: NO_REG, s2: NO_REG, def: NO_REG, rt: NO_REG, flags: 0 };

    /// Derives the classification rules for one instruction. This is the
    /// single source of truth for `classify`/`propagate`; the
    /// precomputed table is this function applied to the text segment.
    pub(crate) fn of(insn: &Insn) -> LMeta {
        let mut m = LMeta { s1: NO_REG, s2: NO_REG, def: NO_REG, rt: NO_REG, flags: LM_VALID };
        match *insn {
            Insn::Jr { rs } if rs == Reg::RA => m.flags |= LM_RET,
            Insn::Imm { op: ImmOp::Addi, rt, rs, imm } if rt == Reg::SP && rs == Reg::SP => {
                m.flags |= LM_SP_ALLOC;
                if imm < 0 {
                    m.flags |= LM_SP_NEG;
                }
            }
            _ => {}
        }
        match *insn {
            Insn::Mem { op, rt, base, .. } => {
                m.rt = rt.number();
                if base == Reg::SP {
                    m.flags |= LM_BASE_SP;
                }
                m.flags |= if op.is_load() { LM_LOAD } else { LM_STORE };
            }
            Insn::Lui { .. } => m.flags |= LM_LUI,
            Insn::Imm { .. } => m.flags |= LM_IMM,
            Insn::Alu { .. } => m.flags |= LM_ALU,
            Insn::Jump { link: true, .. } | Insn::Jalr { .. } => m.flags |= LM_LINK,
            _ => {}
        }
        let [u1, u2] = insn.uses();
        if let Some(r) = u1 {
            m.s1 = r.number();
        }
        if let Some(r) = u2 {
            m.s2 = r.number();
        }
        if let Some(dst) = insn.def() {
            m.def = dst.number();
        }
        if m.flags & (LM_LOAD | LM_STORE) == 0
            && insn.uses().into_iter().flatten().any(|r| r == Reg::SP)
        {
            m.flags |= LM_SP_ARITH;
        }
        m
    }
}

/// Value profile of one static global/heap load instruction.
#[derive(Debug, Clone, Default)]
struct LoadProfile {
    values: FxHashMap<u32, u64>,
}

/// One call-stack frame of the local analysis.
#[derive(Debug, Clone)]
struct LocalFrame {
    /// Index into the image's function metadata, if known.
    func: Option<usize>,
    /// Registers not yet written in this frame (prologue-save candidates).
    unwritten: u32,
    /// Stack addresses written by prologue saves.
    saved_slots: Vec<u32>,
}

/// The local (within-function) categorization analysis.
#[derive(Debug)]
pub struct LocalAnalysis {
    /// Per-register source tags.
    tags: [SrcTag; 32],
    /// Per-register flag: value is a pure global-address-calculation
    /// product (derived only from gp / data-segment immediates).
    gaddr: u32,
    /// Shadow tags for stack words (spills preserve provenance). Each
    /// slot is `tag + 1`, so the paged store's `0` means "no tag".
    stack_tags: ShadowPages,
    /// Tagged stack words (occupancy gauge; kept incrementally).
    stack_tag_count: u64,
    frames: Vec<LocalFrame>,
    counts: LocalCounts,
    /// Prologue+epilogue repetition per function (paper Table 9).
    pe_repeats: Vec<u64>,
    pe_total: u64,
    /// Precomputed classification rules indexed by `Event::index`;
    /// events past the table (or on undecodable slots) fall back to
    /// [`LMeta::of`].
    meta: Vec<LMeta>,
    /// Figure 6 value profiles, densely indexed by static load index.
    load_profiles: Vec<Option<Box<LoadProfile>>>,
    /// Load sites with a profile (occupancy gauge; kept incrementally).
    load_site_count: u64,
    /// Names/sizes from image metadata, for reports.
    func_names: Vec<(String, u32)>,
    /// Declared arity per function.
    arities: Vec<u8>,
    by_entry: FxHashMap<u32, usize>,
}

impl LocalAnalysis {
    /// Creates the analysis for a loaded image.
    pub fn new(image: &Image) -> LocalAnalysis {
        let mut by_entry = FxHashMap::default();
        let mut func_names = Vec::with_capacity(image.funcs.len());
        let mut arities = Vec::with_capacity(image.funcs.len());
        for (i, meta) in image.funcs.iter().enumerate() {
            by_entry.insert(meta.entry, i);
            func_names.push((meta.name.clone(), meta.size_insns()));
            arities.push(meta.arity);
        }
        LocalAnalysis {
            tags: [SrcTag::FnInternal; 32],
            gaddr: 0,
            stack_tags: ShadowPages::new(),
            stack_tag_count: 0,
            frames: vec![LocalFrame { func: None, unwritten: 0, saved_slots: Vec::new() }],
            counts: LocalCounts::default(),
            pe_repeats: vec![0; image.funcs.len()],
            pe_total: 0,
            meta: image
                .text
                .iter()
                .map(|&w| decode(w).map_or(LMeta::INVALID, |insn| LMeta::of(&insn)))
                .collect(),
            load_profiles: Vec::new(),
            load_site_count: 0,
            func_names,
            arities,
            by_entry,
        }
    }

    fn set_tag(&mut self, r: Reg, t: SrcTag) {
        if r != Reg::ZERO {
            self.tags[r.number() as usize] = t;
        }
    }

    /// Tag of the stack word containing `addr` (untagged words read as
    /// function-internal, like the pre-paged hash map's absent entries).
    fn stack_tag(&self, addr: u32) -> SrcTag {
        match self.stack_tags.get(addr) {
            0 => SrcTag::FnInternal,
            v => SrcTag::from_u8(v - 1),
        }
    }

    /// Tags the stack word containing `addr`.
    fn set_stack_tag(&mut self, addr: u32, t: SrcTag) {
        let slot = self.stack_tags.slot_mut(addr);
        if *slot == 0 {
            self.stack_tag_count += 1;
        }
        *slot = t as u8 + 1;
    }

    /// [`is_gaddr_n`](Self::is_gaddr_n) over a meta operand slot
    /// (register number or [`NO_REG`]).
    fn is_gaddr_n(&self, n: u8) -> bool {
        n != NO_REG && (n == Reg::GP.number() || (self.gaddr >> n) & 1 == 1)
    }

    /// The gaddr rule for a two-register ALU instruction: every operand
    /// is a global-address product or `$zero`, and at least one is a
    /// global-address product.
    fn is_gaddr_alu(&self, rs: u8, rt: u8) -> bool {
        let (gs, gt) = (self.is_gaddr_n(rs), self.is_gaddr_n(rt));
        (gs || rs == 0) && (gt || rt == 0) && (gs || gt)
    }

    /// Observes one retired instruction, classifying it and updating tag
    /// and frame state. `region` classifies a memory access's address;
    /// `repeated` is the tracker verdict; statistics accumulate only when
    /// `counting`.
    pub fn observe(&mut self, ev: &Event, repeated: bool, counting: bool, region: Option<Region>) {
        let m = self.meta.get(ev.index as usize).copied().unwrap_or(LMeta::INVALID);
        self.observe_meta(&m, ev, repeated, counting, region, ev.outcome());
    }

    /// [`LocalAnalysis::observe`] with the metadata row and the event's
    /// precomputed outcome supplied by the caller — the fused tier keeps
    /// the row embedded in its hot row and computes `ev.outcome()`
    /// exactly once per event. Invalid rows fall back to recomputing
    /// from the event's instruction.
    pub(crate) fn observe_meta(
        &mut self,
        m: &LMeta,
        ev: &Event,
        repeated: bool,
        counting: bool,
        region: Option<Region>,
        outcome: u32,
    ) {
        let recomputed;
        let m = if m.flags & LM_VALID != 0 {
            m
        } else {
            recomputed = LMeta::of(&ev.insn);
            &recomputed
        };
        let f = m.flags;

        // Shared sub-results: classification and propagation both need
        // the operand-tag supersede max, the loaded value's source tag,
        // and the global-address-product predicate, and nothing between
        // the two touches the state they read (tags, gaddr bits, shadow
        // stack tags) — so each is computed exactly once per event.
        let sp = Reg::SP.number();
        let mut reg_tag = SrcTag::FnInternal;
        if m.s1 != NO_REG && m.s1 != sp {
            reg_tag = reg_tag.max(self.tags[m.s1 as usize]);
        }
        if m.s2 != NO_REG && m.s2 != sp {
            reg_tag = reg_tag.max(self.tags[m.s2 as usize]);
        }
        let loaded_tag = match ev.mem {
            Some(mem) if mem.is_load => Some(self.data_tag(mem.addr, region)),
            _ => None,
        };
        let g = if f & LM_LUI != 0 {
            (abi::DATA_BASE..abi::STACK_REGION_BASE).contains(&outcome)
        } else if f & LM_IMM != 0 {
            self.is_gaddr_n(m.s1)
        } else if f & LM_ALU != 0 {
            self.is_gaddr_alu(m.s1, m.s2)
        } else {
            false
        };

        let cat = self.classify(m, ev, region, reg_tag, loaded_tag, g);

        // -- statistics --
        if counting {
            self.counts.overall[cat as usize] += 1;
            if repeated {
                self.counts.repeated[cat as usize] += 1;
            }
            if matches!(cat, LocalCat::Prologue | LocalCat::Epilogue) && repeated {
                self.pe_total += 1;
                if let Some(fi) = self.frames.last().and_then(|f| f.func) {
                    self.pe_repeats[fi] += 1;
                }
            }
            if matches!(cat, LocalCat::Global | LocalCat::Heap) {
                if let Some(mem) = ev.mem {
                    if mem.is_load && matches!(region, Some(Region::Data | Region::Heap)) {
                        let idx = ev.index as usize;
                        if idx >= self.load_profiles.len() {
                            self.load_profiles.resize_with(idx + 1, || None);
                        }
                        let slot = &mut self.load_profiles[idx];
                        if slot.is_none() {
                            *slot = Some(Box::default());
                            self.load_site_count += 1;
                        }
                        let profile = slot.as_mut().expect("just materialized");
                        if profile.values.len() < MAX_LOAD_VALUES
                            || profile.values.contains_key(&mem.value)
                        {
                            *profile.values.entry(mem.value).or_insert(0) += 1;
                        }
                    }
                }
            }
        }

        // -- state propagation --
        self.propagate(m, ev, region, reg_tag, loaded_tag, g);
    }

    /// Determines the instruction's category (task-based first, then
    /// source tags) *before* state is updated. `reg_tag`, `loaded_tag`,
    /// and `g` are the shared sub-results from `observe_meta`.
    fn classify(
        &mut self,
        m: &LMeta,
        ev: &Event,
        region: Option<Region>,
        reg_tag: SrcTag,
        loaded_tag: Option<SrcTag>,
        g: bool,
    ) -> LocalCat {
        let f = m.flags;
        // Returns.
        if f & LM_RET != 0 {
            return LocalCat::Return;
        }
        // Stack allocation / deallocation.
        if f & LM_SP_ALLOC != 0 {
            return if f & LM_SP_NEG != 0 { LocalCat::Prologue } else { LocalCat::Epilogue };
        }
        if f & LM_STORE != 0 {
            // Prologue saves: store of a not-yet-written register to the
            // stack.
            if let Some(mem) = ev.mem {
                if region == Some(Region::Stack) {
                    let frame = self.frames.last_mut().expect("frame stack never empty");
                    if (frame.unwritten >> m.rt) & 1 == 1 && f & LM_BASE_SP != 0 {
                        frame.saved_slots.push(mem.addr);
                        return LocalCat::Prologue;
                    }
                }
            }
        } else if f & LM_LOAD != 0 {
            // Epilogue restores: load from a remembered save slot.
            if let Some(mem) = ev.mem {
                if region == Some(Region::Stack) && f & LM_BASE_SP != 0 {
                    let frame = self.frames.last().expect("frame stack never empty");
                    if frame.saved_slots.contains(&mem.addr) {
                        return LocalCat::Epilogue;
                    }
                }
            }
        }

        // Global address calculation: instructions deriving a value
        // purely from gp or data-segment address immediates.
        if f & LM_LUI != 0 {
            return if g { LocalCat::GlbAddrCalc } else { LocalCat::FuncInternal };
        }
        if f & (LM_IMM | LM_ALU) != 0 && g {
            return LocalCat::GlbAddrCalc;
        }

        // SP arithmetic (frame alloc/dealloc already handled above).
        if f & LM_SP_ARITH != 0 {
            return LocalCat::Sp;
        }

        // Source-based classification.
        let mut tag = reg_tag;
        if let Some(t) = loaded_tag {
            tag = tag.max(t);
        }
        tag.to_cat()
    }

    /// The source tag of loaded data: region-based re-tagging for global
    /// and heap data, provenance-preserving for the stack.
    fn data_tag(&self, addr: u32, region: Option<Region>) -> SrcTag {
        match region {
            Some(Region::Data) => SrcTag::Global,
            Some(Region::Heap) => SrcTag::Heap,
            Some(Region::Stack) => self.stack_tag(addr),
            _ => SrcTag::FnInternal,
        }
    }

    fn propagate(
        &mut self,
        m: &LMeta,
        ev: &Event,
        region: Option<Region>,
        reg_tag: SrcTag,
        loaded_tag: Option<SrcTag>,
        g: bool,
    ) {
        let f = m.flags;
        // Result tag.
        if m.def != NO_REG {
            let new_tag = if f & (LM_LINK | LM_LUI) != 0 {
                SrcTag::FnInternal
            } else if f & LM_LOAD != 0 {
                // `loaded_tag` covers every genuine load event; the
                // fallback recomputes for synthetic events whose meta
                // and memory effect disagree (`data_tag` is pure).
                loaded_tag
                    .unwrap_or_else(|| self.data_tag(ev.mem.map(|e| e.addr).unwrap_or(0), region))
            } else {
                reg_tag
            };

            if m.def != 0 {
                self.tags[m.def as usize] = new_tag;
                if g {
                    self.gaddr |= 1 << m.def;
                } else {
                    self.gaddr &= !(1 << m.def);
                }
            }

            // Mark register written in this frame.
            let frame = self.frames.last_mut().expect("frame stack never empty");
            frame.unwritten &= !(1 << m.def);
        }

        // Stack stores preserve provenance.
        if let Some(mem) = ev.mem {
            if !mem.is_load && region == Some(Region::Stack) && m.rt != NO_REG {
                let t = self.tags[m.rt as usize];
                self.set_stack_tag(mem.addr, t);
            }
        }

        // Call/return boundaries.
        if ev.ctrl.is_none() {
            return;
        }
        match ev.ctrl {
            Some(CtrlEffect::Call { target, sp, .. }) => {
                let func = self.by_entry.get(&target).copied();
                let arity = func.map(|fi| usize::from(self.image_arity(fi))).unwrap_or(4).min(8);
                // Tag argument registers.
                for i in 0..arity.min(4) {
                    self.set_tag(Reg::arg(i).expect("register argument"), SrcTag::Argument);
                }
                // Tag incoming stack-argument slots.
                for i in 4..arity {
                    let slot = sp.wrapping_add(16 + 4 * (i as u32 - 4));
                    self.set_stack_tag(slot, SrcTag::Argument);
                }
                // All registers except the argument registers start
                // frame-uninitialized (prologue-save candidates).
                let mut unwritten = u32::MAX;
                unwritten &= !(1 << Reg::ZERO.number());
                unwritten &= !(1 << Reg::SP.number());
                unwritten &= !(1 << Reg::GP.number());
                for i in 0..arity.min(4) {
                    unwritten &= !(1 << Reg::arg(i).expect("register argument").number());
                }
                self.frames.push(LocalFrame { func, unwritten, saved_slots: Vec::new() });
            }
            Some(CtrlEffect::Return { .. }) => {
                self.frames.pop();
                if self.frames.is_empty() {
                    self.frames.push(LocalFrame {
                        func: None,
                        unwritten: 0,
                        saved_slots: Vec::new(),
                    });
                }
                // The caller sees the callee's result as a return value.
                self.set_tag(Reg::V0, SrcTag::ReturnValue);
                self.set_tag(Reg::V1, SrcTag::ReturnValue);
            }
            Some(CtrlEffect::Syscall { .. }) => {
                self.set_tag(Reg::V0, SrcTag::ReturnValue);
            }
            _ => {}
        }
    }

    fn image_arity(&self, fi: usize) -> u8 {
        self.arities.get(fi).copied().unwrap_or(4)
    }

    /// Accumulated category counters.
    pub fn counts(&self) -> &LocalCounts {
        &self.counts
    }

    /// Stack words carrying a shadow source tag (occupancy gauge).
    pub fn shadow_stack_words(&self) -> u64 {
        self.stack_tag_count
    }

    /// Global/heap load sites with a value profile (occupancy gauge).
    pub fn load_sites(&self) -> u64 {
        self.load_site_count
    }

    /// Distinct values tracked across all load-site profiles (occupancy
    /// gauge for the Figure 6 tables).
    pub fn load_values_tracked(&self) -> u64 {
        self.load_profiles.iter().flatten().map(|p| p.values.len() as u64).sum()
    }

    /// Top contributors to prologue+epilogue repetition (paper Table 9):
    /// `(name, static size in instructions, repeated P/E instructions)`,
    /// sorted descending, plus the fraction of all P/E repetition the
    /// first `k` cover.
    pub fn prologue_report(&self, k: usize) -> (Vec<(String, u32, u64)>, f64) {
        let mut rows: Vec<(String, u32, u64)> = self
            .func_names
            .iter()
            .zip(&self.pe_repeats)
            .filter(|(_, &reps)| reps > 0)
            .map(|((name, size), &reps)| (name.clone(), *size, reps))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows.truncate(k);
        let covered: u64 = rows.iter().map(|r| r.2).sum();
        (rows, ratio(covered, self.pe_total))
    }

    /// Figure 6: fraction of global+heap load repetition covered by each
    /// load's `k` most frequent values, for `k` in `1..=max_k`. A load
    /// instance repeating value `v` counts as covered when `v` is among
    /// that static load's top `k` values.
    pub fn load_value_coverage(&self, max_k: usize) -> Vec<f64> {
        (1..=max_k)
            .map(|k| {
                let mut covered = 0u64;
                let mut total = 0u64;
                for p in self.load_profiles.iter().flatten() {
                    let mut counts: Vec<u64> = p.values.values().copied().collect();
                    counts.sort_unstable_by(|a, b| b.cmp(a));
                    covered += counts.iter().take(k).map(|c| c.saturating_sub(1)).sum::<u64>();
                    total += counts.iter().map(|c| c.saturating_sub(1)).sum::<u64>();
                }
                ratio(covered, total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests;
