//! Local (within-function) analysis (paper §5.3; Tables 5–7 and 9,
//! Figure 6).
//!
//! Each dynamic instruction is binned into one of ten categories, using
//! two classification criteria:
//!
//! * **task-based** (checked first): `prologue`, `epilogue`,
//!   `glb_addr_calc`, `return`, and `SP` arithmetic;
//! * **source-based**: the supersede rule
//!   `arguments ≻ return values ≻ global/heap ≻ function internals`
//!   over per-register value tags that are re-established at every call
//!   boundary, exactly as in the paper: argument registers are tagged
//!   *argument* on entry, `$v0` is tagged *return value* after a call
//!   returns, loads from the data segment re-tag as *global*, loads from
//!   the heap as *heap*, and stack memory preserves the tag of the value
//!   spilled into it.
//!
//! Prologue/epilogue detection follows the paper: on function entry all
//! registers except the argument registers are marked frame-uninitialized;
//! stores of such registers to the stack are prologue (and their slots
//! remembered), loads from remembered slots are epilogue, and stack
//! allocation/deallocation instructions join the respective category.

use instrep_asm::Image;
use instrep_isa::abi::{self, Region};
use instrep_isa::{ImmOp, Insn, Reg};
use instrep_sim::{CtrlEffect, Event};

use crate::fxhash::FxHashMap;

/// The ten local-analysis categories, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LocalCat {
    /// Callee-saved register saves and stack allocation.
    Prologue = 0,
    /// Restores of saved registers and stack deallocation.
    Epilogue = 1,
    /// Slices originating from immediates inside the function.
    FuncInternal = 2,
    /// Global-variable address formation (gp-relative or immediate).
    GlbAddrCalc = 3,
    /// Function returns (`jr $ra`).
    Return = 4,
    /// Arithmetic on the stack pointer (other than frame alloc/dealloc).
    Sp = 5,
    /// Slices originating from values returned by callees.
    ReturnValue = 6,
    /// Slices originating from function arguments.
    Argument = 7,
    /// Slices originating from data-segment loads.
    Global = 8,
    /// Slices originating from heap loads.
    Heap = 9,
}

impl LocalCat {
    /// All categories in reporting order (paper Tables 5–7 rows).
    pub const ALL: [LocalCat; 10] = [
        LocalCat::Prologue,
        LocalCat::Epilogue,
        LocalCat::FuncInternal,
        LocalCat::GlbAddrCalc,
        LocalCat::Return,
        LocalCat::Sp,
        LocalCat::ReturnValue,
        LocalCat::Argument,
        LocalCat::Global,
        LocalCat::Heap,
    ];

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LocalCat::Prologue => "prologue",
            LocalCat::Epilogue => "epilogue",
            LocalCat::FuncInternal => "function internals",
            LocalCat::GlbAddrCalc => "glb_addr_calc",
            LocalCat::Return => "return",
            LocalCat::Sp => "SP",
            LocalCat::ReturnValue => "return values",
            LocalCat::Argument => "arguments",
            LocalCat::Global => "global",
            LocalCat::Heap => "heap",
        }
    }
}

/// Value-source tag, ordered by supersede priority (higher wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
enum SrcTag {
    FnInternal = 0,
    Heap = 1,
    Global = 2,
    ReturnValue = 3,
    Argument = 4,
}

impl SrcTag {
    fn to_cat(self) -> LocalCat {
        match self {
            SrcTag::FnInternal => LocalCat::FuncInternal,
            SrcTag::Heap => LocalCat::Heap,
            SrcTag::Global => LocalCat::Global,
            SrcTag::ReturnValue => LocalCat::ReturnValue,
            SrcTag::Argument => LocalCat::Argument,
        }
    }
}

/// Per-category counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalCounts {
    /// Dynamic instructions per category.
    pub overall: [u64; 10],
    /// Repeated dynamic instructions per category.
    pub repeated: [u64; 10],
}

impl LocalCounts {
    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.overall.iter().sum()
    }

    /// Table 5: category share of all dynamic instructions.
    pub fn overall_share(&self, cat: LocalCat) -> f64 {
        ratio(self.overall[cat as usize], self.total())
    }

    /// Table 6: category share of all repeated instructions.
    pub fn repeated_share(&self, cat: LocalCat) -> f64 {
        ratio(self.repeated[cat as usize], self.repeated.iter().sum())
    }

    /// Table 7: fraction of the category's instructions that repeated.
    pub fn propensity(&self, cat: LocalCat) -> f64 {
        ratio(self.repeated[cat as usize], self.overall[cat as usize])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Cap on distinct values profiled per global/heap load (Figure 6).
const MAX_LOAD_VALUES: usize = 4096;

/// Value profile of one static global/heap load instruction.
#[derive(Debug, Clone, Default)]
struct LoadProfile {
    values: FxHashMap<u32, u64>,
}

/// One call-stack frame of the local analysis.
#[derive(Debug, Clone)]
struct LocalFrame {
    /// Index into the image's function metadata, if known.
    func: Option<usize>,
    /// Registers not yet written in this frame (prologue-save candidates).
    unwritten: u32,
    /// Stack addresses written by prologue saves.
    saved_slots: Vec<u32>,
}

/// The local (within-function) categorization analysis.
#[derive(Debug)]
pub struct LocalAnalysis {
    /// Per-register source tags.
    tags: [SrcTag; 32],
    /// Per-register flag: value is a pure global-address-calculation
    /// product (derived only from gp / data-segment immediates).
    gaddr: u32,
    /// Shadow tags for stack words (spills preserve provenance).
    stack_tags: FxHashMap<u32, SrcTag>,
    frames: Vec<LocalFrame>,
    counts: LocalCounts,
    /// Prologue+epilogue repetition per function (paper Table 9).
    pe_repeats: Vec<u64>,
    pe_total: u64,
    /// Figure 6 value profiles per static load index.
    load_profiles: FxHashMap<u32, LoadProfile>,
    /// Names/sizes from image metadata, for reports.
    func_names: Vec<(String, u32)>,
    /// Declared arity per function.
    arities: Vec<u8>,
    by_entry: FxHashMap<u32, usize>,
}

impl LocalAnalysis {
    /// Creates the analysis for a loaded image.
    pub fn new(image: &Image) -> LocalAnalysis {
        let mut by_entry = FxHashMap::default();
        let mut func_names = Vec::with_capacity(image.funcs.len());
        let mut arities = Vec::with_capacity(image.funcs.len());
        for (i, meta) in image.funcs.iter().enumerate() {
            by_entry.insert(meta.entry, i);
            func_names.push((meta.name.clone(), meta.size_insns()));
            arities.push(meta.arity);
        }
        LocalAnalysis {
            tags: [SrcTag::FnInternal; 32],
            gaddr: 0,
            stack_tags: FxHashMap::default(),
            frames: vec![LocalFrame { func: None, unwritten: 0, saved_slots: Vec::new() }],
            counts: LocalCounts::default(),
            pe_repeats: vec![0; image.funcs.len()],
            pe_total: 0,
            load_profiles: FxHashMap::default(),
            func_names,
            arities,
            by_entry,
        }
    }

    fn tag(&self, r: Reg) -> SrcTag {
        if r == Reg::ZERO {
            SrcTag::FnInternal
        } else {
            self.tags[r.number() as usize]
        }
    }

    fn set_tag(&mut self, r: Reg, t: SrcTag) {
        if r != Reg::ZERO {
            self.tags[r.number() as usize] = t;
        }
    }

    fn is_gaddr(&self, r: Reg) -> bool {
        r == Reg::GP || (self.gaddr >> r.number()) & 1 == 1
    }

    fn set_gaddr(&mut self, r: Reg, v: bool) {
        if r == Reg::ZERO {
            return;
        }
        if v {
            self.gaddr |= 1 << r.number();
        } else {
            self.gaddr &= !(1 << r.number());
        }
    }

    /// Observes one retired instruction, classifying it and updating tag
    /// and frame state. `region` classifies a memory access's address;
    /// `repeated` is the tracker verdict; statistics accumulate only when
    /// `counting`.
    pub fn observe(&mut self, ev: &Event, repeated: bool, counting: bool, region: Option<Region>) {
        let cat = self.classify(ev, region);

        // -- statistics --
        if counting {
            self.counts.overall[cat as usize] += 1;
            if repeated {
                self.counts.repeated[cat as usize] += 1;
            }
            if matches!(cat, LocalCat::Prologue | LocalCat::Epilogue) && repeated {
                self.pe_total += 1;
                if let Some(fi) = self.frames.last().and_then(|f| f.func) {
                    self.pe_repeats[fi] += 1;
                }
            }
            if matches!(cat, LocalCat::Global | LocalCat::Heap) {
                if let Some(mem) = ev.mem {
                    if mem.is_load && matches!(region, Some(Region::Data | Region::Heap)) {
                        let profile = self.load_profiles.entry(ev.index).or_default();
                        if profile.values.len() < MAX_LOAD_VALUES
                            || profile.values.contains_key(&mem.value)
                        {
                            *profile.values.entry(mem.value).or_insert(0) += 1;
                        }
                    }
                }
            }
        }

        // -- state propagation --
        self.propagate(ev, region);
    }

    /// Determines the instruction's category (task-based first, then
    /// source tags) *before* state is updated.
    fn classify(&mut self, ev: &Event, region: Option<Region>) -> LocalCat {
        match ev.insn {
            // Returns.
            Insn::Jr { rs } if rs == Reg::RA => return LocalCat::Return,
            // Stack allocation / deallocation.
            Insn::Imm { op: ImmOp::Addi, rt, rs, imm } if rt == Reg::SP && rs == Reg::SP => {
                return if imm < 0 { LocalCat::Prologue } else { LocalCat::Epilogue };
            }
            // Prologue saves: store of a not-yet-written register to the
            // stack.
            Insn::Mem { op, rt, base, .. } if !op.is_load() => {
                if let Some(mem) = ev.mem {
                    if region == Some(Region::Stack) {
                        let frame = self.frames.last_mut().expect("frame stack never empty");
                        if (frame.unwritten >> rt.number()) & 1 == 1 && base == Reg::SP {
                            frame.saved_slots.push(mem.addr);
                            return LocalCat::Prologue;
                        }
                    }
                }
            }
            // Epilogue restores: load from a remembered save slot.
            Insn::Mem { op, base, .. } if op.is_load() => {
                if let Some(mem) = ev.mem {
                    if region == Some(Region::Stack) && base == Reg::SP {
                        let frame = self.frames.last().expect("frame stack never empty");
                        if frame.saved_slots.contains(&mem.addr) {
                            return LocalCat::Epilogue;
                        }
                    }
                }
            }
            _ => {}
        }

        // Global address calculation: instructions deriving a value
        // purely from gp or data-segment address immediates.
        match ev.insn {
            Insn::Lui { .. } => {
                if (abi::DATA_BASE..abi::STACK_REGION_BASE).contains(&ev.outcome()) {
                    return LocalCat::GlbAddrCalc;
                }
                return LocalCat::FuncInternal;
            }
            Insn::Imm { rs, .. } if self.is_gaddr(rs) => return LocalCat::GlbAddrCalc,
            Insn::Alu { rs, rt, .. }
                if (self.is_gaddr(rs) || rs == Reg::ZERO)
                    && (self.is_gaddr(rt) || rt == Reg::ZERO)
                    && (self.is_gaddr(rs) || self.is_gaddr(rt)) =>
            {
                return LocalCat::GlbAddrCalc;
            }
            _ => {}
        }

        // SP arithmetic (frame alloc/dealloc already handled above).
        let uses = ev.insn.uses();
        if !ev.insn.is_load()
            && !ev.insn.is_store()
            && uses.into_iter().flatten().any(|r| r == Reg::SP)
        {
            return LocalCat::Sp;
        }

        // Source-based classification.
        let mut tag = SrcTag::FnInternal;
        for r in uses.into_iter().flatten() {
            if r != Reg::SP {
                tag = tag.max(self.tag(r));
            }
        }
        if let Some(mem) = ev.mem {
            if mem.is_load {
                tag = tag.max(self.data_tag(mem.addr, region));
            }
        }
        tag.to_cat()
    }

    /// The source tag of loaded data: region-based re-tagging for global
    /// and heap data, provenance-preserving for the stack.
    fn data_tag(&self, addr: u32, region: Option<Region>) -> SrcTag {
        match region {
            Some(Region::Data) => SrcTag::Global,
            Some(Region::Heap) => SrcTag::Heap,
            Some(Region::Stack) => {
                self.stack_tags.get(&(addr & !3)).copied().unwrap_or(SrcTag::FnInternal)
            }
            _ => SrcTag::FnInternal,
        }
    }

    fn propagate(&mut self, ev: &Event, region: Option<Region>) {
        // Result tag.
        if let Some(dst) = ev.insn.def() {
            let new_tag = match ev.insn {
                Insn::Jump { link: true, .. } | Insn::Jalr { .. } => SrcTag::FnInternal,
                Insn::Lui { .. } => SrcTag::FnInternal,
                Insn::Mem { op, .. } if op.is_load() => {
                    let addr = ev.mem.map(|m| m.addr).unwrap_or(0);
                    self.data_tag(addr, region)
                }
                _ => {
                    let mut t = SrcTag::FnInternal;
                    for r in ev.insn.uses().into_iter().flatten() {
                        if r != Reg::SP {
                            t = t.max(self.tag(r));
                        }
                    }
                    t
                }
            };
            self.set_tag(dst, new_tag);

            // gaddr flag propagation.
            let g = match ev.insn {
                Insn::Lui { .. } => {
                    (abi::DATA_BASE..abi::STACK_REGION_BASE).contains(&ev.outcome())
                }
                Insn::Imm { rs, .. } => self.is_gaddr(rs),
                Insn::Alu { rs, rt, .. } => {
                    (self.is_gaddr(rs) || rs == Reg::ZERO)
                        && (self.is_gaddr(rt) || rt == Reg::ZERO)
                        && (self.is_gaddr(rs) || self.is_gaddr(rt))
                }
                _ => false,
            };
            self.set_gaddr(dst, g);

            // Mark register written in this frame.
            let frame = self.frames.last_mut().expect("frame stack never empty");
            frame.unwritten &= !(1 << dst.number());
        }

        // Stack stores preserve provenance.
        if let Some(mem) = ev.mem {
            if !mem.is_load && region == Some(Region::Stack) {
                if let Insn::Mem { rt, .. } = ev.insn {
                    let t = self.tag(rt);
                    self.stack_tags.insert(mem.addr & !3, t);
                }
            }
        }

        // Call/return boundaries.
        match ev.ctrl {
            Some(CtrlEffect::Call { target, sp, .. }) => {
                let func = self.by_entry.get(&target).copied();
                let arity = func.map(|fi| usize::from(self.image_arity(fi))).unwrap_or(4).min(8);
                // Tag argument registers.
                for i in 0..arity.min(4) {
                    self.set_tag(Reg::arg(i).expect("register argument"), SrcTag::Argument);
                }
                // Tag incoming stack-argument slots.
                for i in 4..arity {
                    let slot = sp.wrapping_add(16 + 4 * (i as u32 - 4));
                    self.stack_tags.insert(slot & !3, SrcTag::Argument);
                }
                // All registers except the argument registers start
                // frame-uninitialized (prologue-save candidates).
                let mut unwritten = u32::MAX;
                unwritten &= !(1 << Reg::ZERO.number());
                unwritten &= !(1 << Reg::SP.number());
                unwritten &= !(1 << Reg::GP.number());
                for i in 0..arity.min(4) {
                    unwritten &= !(1 << Reg::arg(i).expect("register argument").number());
                }
                self.frames.push(LocalFrame { func, unwritten, saved_slots: Vec::new() });
            }
            Some(CtrlEffect::Return { .. }) => {
                self.frames.pop();
                if self.frames.is_empty() {
                    self.frames.push(LocalFrame {
                        func: None,
                        unwritten: 0,
                        saved_slots: Vec::new(),
                    });
                }
                // The caller sees the callee's result as a return value.
                self.set_tag(Reg::V0, SrcTag::ReturnValue);
                self.set_tag(Reg::V1, SrcTag::ReturnValue);
            }
            Some(CtrlEffect::Syscall { .. }) => {
                self.set_tag(Reg::V0, SrcTag::ReturnValue);
            }
            _ => {}
        }
    }

    fn image_arity(&self, fi: usize) -> u8 {
        self.arities.get(fi).copied().unwrap_or(4)
    }

    /// Accumulated category counters.
    pub fn counts(&self) -> &LocalCounts {
        &self.counts
    }

    /// Stack words carrying a shadow source tag (occupancy gauge).
    pub fn shadow_stack_words(&self) -> u64 {
        self.stack_tags.len() as u64
    }

    /// Global/heap load sites with a value profile (occupancy gauge).
    pub fn load_sites(&self) -> u64 {
        self.load_profiles.len() as u64
    }

    /// Distinct values tracked across all load-site profiles (occupancy
    /// gauge for the Figure 6 tables).
    pub fn load_values_tracked(&self) -> u64 {
        self.load_profiles.values().map(|p| p.values.len() as u64).sum()
    }

    /// Top contributors to prologue+epilogue repetition (paper Table 9):
    /// `(name, static size in instructions, repeated P/E instructions)`,
    /// sorted descending, plus the fraction of all P/E repetition the
    /// first `k` cover.
    pub fn prologue_report(&self, k: usize) -> (Vec<(String, u32, u64)>, f64) {
        let mut rows: Vec<(String, u32, u64)> = self
            .func_names
            .iter()
            .zip(&self.pe_repeats)
            .filter(|(_, &reps)| reps > 0)
            .map(|((name, size), &reps)| (name.clone(), *size, reps))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows.truncate(k);
        let covered: u64 = rows.iter().map(|r| r.2).sum();
        (rows, ratio(covered, self.pe_total))
    }

    /// Figure 6: fraction of global+heap load repetition covered by each
    /// load's `k` most frequent values, for `k` in `1..=max_k`. A load
    /// instance repeating value `v` counts as covered when `v` is among
    /// that static load's top `k` values.
    pub fn load_value_coverage(&self, max_k: usize) -> Vec<f64> {
        (1..=max_k)
            .map(|k| {
                let mut covered = 0u64;
                let mut total = 0u64;
                for p in self.load_profiles.values() {
                    let mut counts: Vec<u64> = p.values.values().copied().collect();
                    counts.sort_unstable_by(|a, b| b.cmp(a));
                    covered += counts.iter().take(k).map(|c| c.saturating_sub(1)).sum::<u64>();
                    total += counts.iter().map(|c| c.saturating_sub(1)).sum::<u64>();
                }
                ratio(covered, total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests;
