//! The fused analysis tier: one cache-line "hot row" per static
//! instruction plus a single open-addressed global instance table,
//! replacing the per-event walk over seven free-standing observers.
//!
//! PR 6 cut the bare interpreter to ~6 ns/event, which left the
//! observers dominating at ~55–60 ns/event combined. Three sources of
//! that cost are structural, not essential:
//!
//! * `ev.outcome()` was recomputed by the tracker, the reuse buffer,
//!   and the local analysis — three times per event.
//! * The tracker, the global analysis, the local analysis, the class
//!   observer, and the predictors each walked their *own* per-static
//!   metadata row: five dependent cache lines for facts about one
//!   instruction.
//! * The tracker's per-static instance probe paid three dependent
//!   loads (entry → slots `Vec` → slot) before it could even compare a
//!   key.
//!
//! [`FusedAnalysis`] fuses all of that: one 64-byte [`HotRow`] holds
//! the global metadata, the local metadata, the opcode class, the
//! tracker's exec/repeated counters, and the predictor slot, so the
//! per-event metadata cost is a single line; the per-static instance
//! tables collapse into one flat open-addressed table keyed by
//! `(index, in1, in2, outcome)` (one probe, no pointer chase); and the
//! outcome is computed exactly once and threaded to every consumer.
//!
//! The seven free-standing observers are retained, bit-for-bit, as the
//! *differential oracle* behind [`AnalysisTier::Split`] — the same
//! pattern as the interpreter's `InterpTier`: both tiers produce
//! byte-identical reports, interval series, profiles, and gauges, and
//! a differential harness (`crates/workloads/tests/
//! differential_analysis.rs`) proves it on every workload family.
//! Because results are tier-invariant by construction, nothing
//! downstream (analysis caches included) may key on the tier.

use instrep_asm::Image;
use instrep_isa::abi::Region;
use instrep_isa::{decode, Insn, Reg};
use instrep_sim::Event;

use crate::classes::{ClassAnalysis, InsnClass};
use crate::function::FunctionAnalysis;
use crate::global::{GMeta, GlobalAnalysis};
use crate::local::{LMeta, LocalAnalysis};
use crate::predict::{step_slot, PredSlot, PredictStats, StrideStats};
use crate::reuse::{ReuseBuffer, ReuseConfig};
use crate::tracker::{StaticStats, TrackerConfig};

/// Which implementation of the analysis observers a
/// [`Session`](crate::Session) runs.
///
/// Both tiers produce byte-identical reports, interval series,
/// profiles, and metrics gauges — results are tier-invariant by
/// construction, so nothing downstream (analysis caches included) may
/// key on the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisTier {
    /// The fused hot-row path (default): one merged per-static row and
    /// a single global instance probe per event.
    Fused,
    /// The seven free-standing observers — the differential oracle,
    /// and the only tier on which individual observers can be disabled
    /// for marginal-cost measurement.
    Split,
}

impl Default for AnalysisTier {
    /// [`AnalysisTier::Fused`] unless the `split-analysis` cargo
    /// feature flips the default — the feature exists so the whole test
    /// suite can be re-run with the oracle observers driving every
    /// report.
    fn default() -> AnalysisTier {
        if cfg!(feature = "split-analysis") {
            AnalysisTier::Split
        } else {
            AnalysisTier::Fused
        }
    }
}

/// Which of the seven split-tier observers run — the mechanism behind
/// `instrep-repro --disable-observer`, used by `scripts/bench.sh` to
/// measure each observer's marginal per-event cost. Only meaningful on
/// [`AnalysisTier::Split`]; the fused tier has no separable observers.
///
/// A partial mask yields a report with the disabled observers' fields
/// zeroed, so sessions running one never touch the analysis cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitObservers {
    pub(crate) tracker: bool,
    pub(crate) reuse: bool,
    pub(crate) global: bool,
    pub(crate) local: bool,
    pub(crate) function: bool,
    pub(crate) predict: bool,
    pub(crate) classes: bool,
}

/// Observer names accepted by [`SplitObservers::disable`], in display
/// order.
pub const OBSERVER_NAMES: [&str; 7] =
    ["tracker", "reuse", "global", "local", "function", "predict", "classes"];

impl SplitObservers {
    /// Every observer enabled — the oracle configuration.
    pub fn all() -> SplitObservers {
        SplitObservers {
            tracker: true,
            reuse: true,
            global: true,
            local: true,
            function: true,
            predict: true,
            classes: true,
        }
    }

    /// Disables one observer by name (see [`OBSERVER_NAMES`]).
    ///
    /// # Errors
    ///
    /// Returns the unknown name in the error message.
    pub fn disable(&mut self, name: &str) -> Result<(), String> {
        match name {
            "tracker" => self.tracker = false,
            "reuse" => self.reuse = false,
            "global" => self.global = false,
            "local" => self.local = false,
            "function" => self.function = false,
            "predict" => self.predict = false,
            "classes" => self.classes = false,
            other => {
                return Err(format!(
                    "unknown observer `{other}` (expected one of: {})",
                    OBSERVER_NAMES.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// Whether every observer is enabled (the only mask whose reports
    /// are cacheable and tier-comparable).
    pub fn is_all(&self) -> bool {
        *self == SplitObservers::all()
    }
}

impl Default for SplitObservers {
    fn default() -> SplitObservers {
        SplitObservers::all()
    }
}

/// Everything the per-event path needs to know about one static
/// instruction, packed into one cache line: metadata for the global and
/// local analyses, the opcode class, the tracker's per-static counters,
/// and the value-predictor slot. 56 bytes of payload, padded to 64 by
/// the alignment so rows never split across lines.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct HotRow {
    /// Tracker: dynamic executions.
    exec: u64,
    /// Tracker: dynamic executions classified repeated.
    repeated: u64,
    /// Last-value + two-delta stride predictor slot (24 bytes).
    pred: PredSlot,
    /// Global-analysis tagging rules.
    gmeta: GMeta,
    /// Local-analysis classification rules.
    lmeta: LMeta,
    /// Opcode class (`InsnClass as u8`; undecodable slots fall back to
    /// `System`, matching the profile renderer).
    class: u8,
    /// Whether the function analysis can possibly act on this static:
    /// only memory accesses, calls (`jal`/`jalr`), returns (`jr $ra`),
    /// and syscalls touch its purity flags or call stack — for every
    /// other opcode `FunctionAnalysis::observe` is a no-op and the call
    /// is skipped outright. Undecodable slots stay conservative (set).
    fn_relevant: bool,
    /// Tracker: instances buffered for this static (capped by
    /// `TrackerConfig::max_instances`).
    buffered: u32,
}

impl HotRow {
    /// Builds the row for one text word; undecodable words get invalid
    /// metadata (the analyses then recompute from the event, exactly as
    /// the split observers do).
    fn of(word: u32) -> HotRow {
        let (gmeta, lmeta, class, fn_relevant) = match decode(word) {
            Ok(insn) => {
                let relevant = matches!(
                    insn,
                    Insn::Mem { .. }
                        | Insn::Syscall
                        | Insn::Jump { link: true, .. }
                        | Insn::Jalr { .. }
                ) || matches!(insn, Insn::Jr { rs } if rs == Reg::RA);
                (GMeta::of(&insn), LMeta::of(&insn), InsnClass::of(&insn) as u8, relevant)
            }
            Err(_) => (GMeta::INVALID, LMeta::INVALID, InsnClass::System as u8, true),
        };
        HotRow {
            exec: 0,
            repeated: 0,
            pred: PredSlot::default(),
            gmeta,
            lmeta,
            class,
            fn_relevant,
            buffered: 0,
        }
    }
}

/// One instance in the global open-addressed table: the owning static
/// index, the operand/outcome key, and the occurrence count.
/// `count_plus == 0` marks an empty slot (the count is stored plus one,
/// exactly as in the split tracker's per-static slots). 24 bytes.
#[derive(Debug, Clone, Copy, Default)]
struct Instance {
    index: u32,
    in1: u32,
    in2: u32,
    outcome: u32,
    count_plus: u64,
}

/// Per-static last-instance cache entry. Loops execute the same static
/// with the same operands and outcome for long runs, so most events
/// would probe the (multi-megabyte) instance table only to re-find the
/// instance they found last time. Caching that instance's key next to
/// the hot row turns every same-key repeat into an L1 hit: the table is
/// touched only when a static *switches* instance.
///
/// `delta` counts occurrences not yet added to the table entry's
/// `count_plus` (`0` means the slot is empty); a cache entry is only
/// ever installed for an instance already resident in the table, so the
/// pending delta can always be flushed by a plain probe. Flushing is
/// additive and order-independent, which is what keeps the fused
/// aggregates byte-identical to the split tracker's. 16 bytes.
#[derive(Debug, Clone, Copy, Default)]
struct InstCache {
    in1: u32,
    in2: u32,
    outcome: u32,
    delta: u32,
}

/// Initial table capacity (slots); must be a power of two.
const INITIAL_CAPACITY: usize = 1024;

/// Mixes a four-word instance key into a table index seed — the split
/// tracker's fxhash-style multiply chain with the static index
/// prepended (the per-static tables keyed on three words; the global
/// table must also separate statics).
#[inline]
fn hash4(index: u32, in1: u32, in2: u32, outcome: u32) -> usize {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let h = (u64::from(index).wrapping_mul(K))
        .wrapping_add(u64::from(in1))
        .wrapping_mul(K)
        .wrapping_add(u64::from(in2))
        .wrapping_mul(K)
        .wrapping_add(u64::from(outcome))
        .wrapping_mul(K);
    (h >> 32) as usize
}

/// Linear-probes `table` for the key. `Ok(pos)` is a match; `Err(pos)`
/// is the first empty slot (where an insert belongs). The table is
/// tombstone-free — instances are never deleted — so an empty slot
/// always terminates the probe.
#[inline]
fn find_slot(table: &[Instance], mask: usize, key: &Instance) -> Result<usize, usize> {
    let mut i = hash4(key.index, key.in1, key.in2, key.outcome) & mask;
    loop {
        let s = &table[i];
        if s.count_plus == 0 {
            return Err(i);
        }
        if s.index == key.index && s.in1 == key.in1 && s.in2 == key.in2 && s.outcome == key.outcome
        {
            return Ok(i);
        }
        i = (i + 1) & mask;
    }
}

/// Adds a cache entry's pending occurrence count to its table slot and
/// empties the entry. The instance is resident by the [`InstCache`]
/// invariant, so the probe always finds it.
fn flush_delta(table: &mut [Instance], mask: usize, index: u32, c: &InstCache) {
    let key = Instance { index, in1: c.in1, in2: c.in2, outcome: c.outcome, count_plus: 0 };
    let pos = find_slot(table, mask, &key).expect("cached instance is resident in the table");
    table[pos].count_plus += u64::from(c.delta);
}

/// Doubles `table`, reinserting every occupied slot. Counts are carried
/// verbatim; only positions change.
fn grow(table: &mut Vec<Instance>) {
    let doubled = vec![Instance::default(); table.len() * 2];
    let old = std::mem::replace(table, doubled);
    let mask = table.len() - 1;
    for s in old.into_iter().filter(|s| s.count_plus > 0) {
        let pos = find_slot(table, mask, &s).expect_err("key is unique in the old table");
        table[pos] = s;
    }
}

/// The fused per-event engine: hot rows, the global instance table, and
/// the observers whose state cannot be fused (dataflow tags, shadow
/// memory, call stacks, the reuse buffer's set-associative array).
///
/// The retained sub-observers (`global`, `local`, `function`, `reuse`,
/// `classes`) are the *same types* the split tier runs — fed through
/// their `observe_meta`/`observe_with_outcome` entry points so the row
/// metadata and the once-computed outcome are reused instead of
/// recomputed. Equality of their results with the split tier is
/// therefore structural; the differential harness checks it anyway.
#[derive(Debug)]
pub(crate) struct FusedAnalysis {
    rows: Vec<HotRow>,
    /// Last-instance cache, parallel to `rows` (kept out of [`HotRow`]
    /// so the row stays one cache line; this array is small enough to
    /// live in L1 alongside it).
    caches: Vec<InstCache>,
    table: Vec<Instance>,
    /// `table.len() - 1` (capacity is always a power of two).
    mask: usize,
    /// Occupied slots across the whole table (grow trigger + gauge).
    buffered: u64,
    /// Per-static instance cap, from [`TrackerConfig`].
    max_instances: usize,
    dyn_total: u64,
    dyn_repeated: u64,
    /// Statics with a filled predictor slot (gauge).
    pred_entries: u64,
    lvp_stats: PredictStats,
    stride_stats: StrideStats,
    pub(crate) global: GlobalAnalysis,
    pub(crate) local: LocalAnalysis,
    pub(crate) function: FunctionAnalysis,
    pub(crate) reuse: ReuseBuffer,
    pub(crate) classes: ClassAnalysis,
}

/// The tracker-equivalent numbers the pipeline's finalize consumes,
/// computed in one pass over the rows and the instance table.
#[derive(Debug)]
pub(crate) struct TrackerSummary {
    pub static_stats: Vec<StaticStats>,
    /// Repeat counts of every unique repeatable instance (unsorted).
    pub instance_counts: Vec<u64>,
    /// Figure 3 histogram (same buckets as the split tracker).
    pub histogram: [f64; 5],
    pub unique_repeatable: u64,
    pub avg_repeats: f64,
    pub static_executed: usize,
    pub static_repeated: usize,
}

impl FusedAnalysis {
    pub(crate) fn new(image: &Image, tracker: TrackerConfig, reuse: ReuseConfig) -> FusedAnalysis {
        FusedAnalysis {
            rows: image.text.iter().map(|&w| HotRow::of(w)).collect(),
            caches: vec![InstCache::default(); image.text.len()],
            table: vec![Instance::default(); INITIAL_CAPACITY],
            mask: INITIAL_CAPACITY - 1,
            buffered: 0,
            max_instances: tracker.max_instances,
            dyn_total: 0,
            dyn_repeated: 0,
            pred_entries: 0,
            lvp_stats: PredictStats::default(),
            stride_stats: StrideStats::default(),
            global: GlobalAnalysis::new(image),
            local: LocalAnalysis::new(image),
            function: FunctionAnalysis::new(image),
            reuse: ReuseBuffer::new(reuse),
            classes: ClassAnalysis::new(),
        }
    }

    /// Skip-phase event: propagate analysis state, count nothing. The
    /// tracker, reuse buffer, classes, and predictors are idle during
    /// the skip, exactly as on the split tier.
    pub(crate) fn skip_event(&mut self, ev: &Event, region: Option<Region>) {
        let outcome = ev.outcome();
        let (gm, lm, fn_relevant) = match self.rows.get(ev.index as usize) {
            Some(row) => (row.gmeta, row.lmeta, row.fn_relevant),
            None => (GMeta::INVALID, LMeta::INVALID, true),
        };
        self.global.observe_meta(gm, ev, false, false);
        if fn_relevant {
            self.function.observe(ev, false, region);
        }
        self.local.observe_meta(&lm, ev, false, false, region, outcome);
    }

    /// Measurement-phase event: the fused hot path. Returns the
    /// repetition verdict (the split tracker's return value), for the
    /// differential tests.
    ///
    /// # Panics
    ///
    /// Panics if `ev.index` is out of range for the program this
    /// analysis was sized for (as the split tracker does).
    pub(crate) fn measure_event(&mut self, ev: &Event, region: Option<Region>) -> bool {
        let outcome = ev.outcome();
        self.dyn_total += 1;
        let idx = ev.index as usize;

        // One row touch covers the tracker counters, both metadata
        // bundles, the class, and the predictor slot.
        let row = &mut self.rows[idx];
        row.exec += 1;
        let gm = row.gmeta;
        let lm = row.lmeta;
        let class = row.class;
        let fn_relevant = row.fn_relevant;
        let row_buffered = row.buffered;

        // Tracker half. The last-instance cache short-circuits the
        // table probe for consecutive same-key executions — the common
        // case inside loops; the table is touched only on a switch.
        let repeated;
        let c = &mut self.caches[idx];
        if c.delta != 0 && c.in1 == ev.in1 && c.in2 == ev.in2 && c.outcome == outcome {
            c.delta += 1;
            if c.delta == u32::MAX {
                // Unreachable in practice (2^32 consecutive occurrences)
                // but flushing keeps the pending count exact forever.
                flush_delta(&mut self.table, self.mask, ev.index, c);
                c.delta = 0;
            }
            repeated = true;
        } else {
            let key =
                Instance { index: ev.index, in1: ev.in1, in2: ev.in2, outcome, count_plus: 0 };
            match find_slot(&self.table, self.mask, &key) {
                Ok(_) => {
                    // A known instance this static switched back to:
                    // cache it (this occurrence becomes its pending
                    // delta), flushing whatever was cached before.
                    let prev = std::mem::replace(
                        c,
                        InstCache { in1: ev.in1, in2: ev.in2, outcome, delta: 1 },
                    );
                    if prev.delta != 0 {
                        flush_delta(&mut self.table, self.mask, ev.index, &prev);
                    }
                    repeated = true;
                }
                Err(mut pos) => {
                    repeated = false;
                    if (row_buffered as usize) < self.max_instances {
                        // Grow at 7/8 load (the split tracker's
                        // threshold). Pending cache deltas only touch
                        // counts, so growth never interleaves with them.
                        if (self.buffered + 1) * 8 > (self.table.len() as u64) * 7 {
                            grow(&mut self.table);
                            self.mask = self.table.len() - 1;
                            pos = find_slot(&self.table, self.mask, &key)
                                .expect_err("key was absent before the grow");
                        }
                        self.table[pos] = Instance { count_plus: 1, ..key };
                        self.rows[idx].buffered = row_buffered + 1;
                        self.buffered += 1;
                    }
                }
            }
        }
        if repeated {
            self.rows[idx].repeated += 1;
            self.dyn_repeated += 1;
        }

        // Predictor half: the row's slot, stepped in place.
        if let Some(out) = ev.out {
            let step = step_slot(
                &mut self.rows[idx].pred,
                out,
                repeated,
                &mut self.lvp_stats,
                &mut self.stride_stats,
            );
            if step.new_entry {
                self.pred_entries += 1;
            }
        }

        self.classes.count(class, repeated);
        self.global.observe_meta(gm, ev, repeated, true);
        if fn_relevant {
            self.function.observe(ev, true, region);
        }
        self.local.observe_meta(&lm, ev, repeated, true, region, outcome);
        self.reuse.observe_with_outcome(ev, repeated, outcome);
        repeated
    }

    pub(crate) fn dynamic_total(&self) -> u64 {
        self.dyn_total
    }

    pub(crate) fn dynamic_repeated(&self) -> u64 {
        self.dyn_repeated
    }

    pub(crate) fn instances_buffered(&self) -> u64 {
        self.buffered
    }

    pub(crate) fn static_total(&self) -> usize {
        self.rows.len()
    }

    pub(crate) fn lvp_entries(&self) -> u64 {
        self.pred_entries
    }

    pub(crate) fn lvp_stats(&self) -> &PredictStats {
        &self.lvp_stats
    }

    pub(crate) fn stride_stats(&self) -> &StrideStats {
        &self.stride_stats
    }

    /// Adds every cache entry's pending occurrences to its table slot.
    /// Flushing is additive, so the table afterwards holds exactly the
    /// counts the split tracker would — whatever order instances were
    /// cached and evicted in.
    fn flush_deltas(&mut self) {
        for (i, c) in self.caches.iter_mut().enumerate() {
            if c.delta != 0 {
                flush_delta(&mut self.table, self.mask, i as u32, c);
                c.delta = 0;
            }
        }
    }

    /// One pass over the rows and the instance table producing every
    /// tracker aggregate the report needs — the split tracker's
    /// `static_stats`/`instance_repeat_counts`/`instance_histogram`
    /// family, matched number for number. Flushes the last-instance
    /// caches first so every count is final.
    pub(crate) fn tracker_summary(&mut self) -> TrackerSummary {
        self.flush_deltas();
        // Unique-repeatable-instance counts per static, and the flat
        // instance repeat-count list. Order within the list differs
        // from the split tracker's entry-major order, but every
        // consumer (the Figure 4 coverage curve) sorts first.
        let mut uri = vec![0u64; self.rows.len()];
        let mut instance_counts = Vec::new();
        for s in self.table.iter().filter(|s| s.count_plus >= 2) {
            uri[s.index as usize] += 1;
            instance_counts.push(s.count_plus - 1);
        }

        let mut static_stats = Vec::new();
        let mut sums = [0u64; 5];
        let mut static_repeated = 0;
        for (i, row) in self.rows.iter().enumerate() {
            if row.exec == 0 {
                continue;
            }
            static_stats.push(StaticStats {
                index: i as u32,
                exec: row.exec,
                repeated: row.repeated,
                unique_repeatable: uri[i],
            });
            if row.repeated == 0 {
                continue;
            }
            static_repeated += 1;
            let bucket = match uri[i] {
                0 => continue,
                1 => 0,
                2..=10 => 1,
                11..=100 => 2,
                101..=1000 => 3,
                _ => 4,
            };
            sums[bucket] += row.repeated;
        }

        let total: u64 = sums.iter().sum();
        let histogram = if total == 0 { [0.0; 5] } else { sums.map(|s| s as f64 / total as f64) };
        let unique_repeatable: u64 = uri.iter().sum();
        let avg_repeats = if unique_repeatable == 0 {
            0.0
        } else {
            self.dyn_repeated as f64 / unique_repeatable as f64
        };
        let static_executed = static_stats.len();
        TrackerSummary {
            static_stats,
            instance_counts,
            histogram,
            unique_repeatable,
            avg_repeats,
            static_executed,
            static_repeated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::RepetitionTracker;
    use instrep_isa::{AluOp, Insn, Reg};

    fn ev(index: u32, in1: u32, in2: u32, out: u32) -> Event {
        Event {
            pc: 0x40_0000 + index * 4,
            index,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1,
            in2,
            out: Some(out),
            mem: None,
            ctrl: None,
        }
    }

    /// A fused analysis over a text segment of `n` plain ALU adds.
    fn fused_for(n: usize, cfg: TrackerConfig) -> FusedAnalysis {
        let body = "add $v0, $a0, $a1\n".repeat(n);
        let image = instrep_asm::assemble(&format!(".text\n__start:\n{body}")).unwrap();
        assert_eq!(image.text.len(), n);
        FusedAnalysis::new(&image, cfg, ReuseConfig::paper())
    }

    #[test]
    fn row_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<HotRow>(), 64);
        assert_eq!(std::mem::align_of::<HotRow>(), 64);
        assert_eq!(std::mem::size_of::<Instance>(), 24);
    }

    #[test]
    fn matches_split_tracker_verdicts_and_aggregates() {
        // The mini differential oracle: one synthetic stream, both
        // tracker implementations, identical verdicts and summaries.
        let cfg = TrackerConfig::default();
        let mut fused = fused_for(8, cfg);
        let mut split = RepetitionTracker::new(cfg, 8);
        let mut events = Vec::new();
        for i in 0..2000u32 {
            // A mix of repeating and fresh instances across 8 statics.
            events.push(ev(i % 8, i % 5, i % 3, (i % 5).wrapping_add(i % 3)));
            events.push(ev(i % 8, i, i.wrapping_mul(7), i ^ 0xdead));
        }
        for e in &events {
            assert_eq!(fused.measure_event(e, None), split.observe(e), "event {e:?}");
        }
        assert_eq!(fused.dynamic_total(), split.dynamic_total());
        assert_eq!(fused.dynamic_repeated(), split.dynamic_repeated());
        assert_eq!(fused.instances_buffered(), split.instances_buffered());
        let s = fused.tracker_summary();
        assert_eq!(s.static_stats, split.static_stats());
        assert_eq!(s.unique_repeatable, split.unique_repeatable_instances());
        assert_eq!(s.avg_repeats, split.avg_repeats());
        assert_eq!(s.histogram, split.instance_histogram());
        assert_eq!(s.static_executed, split.static_executed());
        assert_eq!(s.static_repeated, split.static_repeated());
        let mut fc = s.instance_counts;
        let mut sc = split.instance_repeat_counts();
        fc.sort_unstable();
        sc.sort_unstable();
        assert_eq!(fc, sc);
    }

    #[test]
    fn insertion_past_the_instance_cap_stops_buffering() {
        let cfg = TrackerConfig { max_instances: 3 };
        let mut fused = fused_for(1, cfg);
        let mut split = RepetitionTracker::new(cfg, 1);
        // 10 distinct instances at one static: only the first 3 buffer.
        for k in 0..10u32 {
            let e = ev(0, k, 0, k);
            assert_eq!(fused.measure_event(&e, None), split.observe(&e));
        }
        assert_eq!(fused.instances_buffered(), 3);
        // Buffered instances repeat; unbuffered ones never do.
        for k in 0..10u32 {
            let e = ev(0, k, 0, k);
            let expected = k < 3;
            assert_eq!(fused.measure_event(&e, None), expected, "instance {k}");
            assert_eq!(split.observe(&e), expected);
        }
        assert_eq!(fused.instances_buffered(), split.instances_buffered());
        assert_eq!(fused.tracker_summary().static_stats, split.static_stats());
    }

    #[test]
    fn growth_preserves_counts_across_multiple_doublings() {
        // 4000 distinct instances forces the 1024-slot table through
        // several doublings; every count must survive each rehash.
        let cfg = TrackerConfig::default();
        let mut fused = fused_for(4, cfg);
        let reps = |k: u32| u64::from(k % 4);
        for k in 0..4000u32 {
            let e = ev(k % 4, k, !k, k.wrapping_mul(3));
            assert!(!fused.measure_event(&e, None), "first occurrence never repeats");
            for _ in 0..reps(k) {
                assert!(fused.measure_event(&e, None), "buffered instance must repeat");
            }
        }
        assert!(fused.table.len() > INITIAL_CAPACITY, "table must have grown");
        assert_eq!(fused.buffered, 4000);
        // The load factor invariant held through every insert.
        assert!(fused.buffered * 8 <= (fused.table.len() as u64) * 7);
        let s = fused.tracker_summary();
        let expected_repeats: u64 = (0..4000u32).map(reps).sum();
        assert_eq!(fused.dynamic_repeated(), expected_repeats);
        assert_eq!(s.unique_repeatable, (0..4000u32).filter(|&k| reps(k) > 0).count() as u64);
        assert_eq!(s.instance_counts.iter().sum::<u64>(), expected_repeats);
    }

    #[test]
    fn table_is_tombstone_free() {
        // No operation deletes: occupancy equals distinct keys inserted
        // no matter how many lookups, hits, or growths intervene, and
        // every key stays reachable.
        let cfg = TrackerConfig::default();
        let mut fused = fused_for(2, cfg);
        for pass in 0..3 {
            for k in 0..500u32 {
                fused.measure_event(&ev(k % 2, k, 0, 1), None);
            }
            let occupied = fused.table.iter().filter(|s| s.count_plus > 0).count() as u64;
            assert_eq!(occupied, fused.buffered, "pass {pass}");
            assert_eq!(fused.buffered, 500);
        }
        // Every instance was seen 3 times: once fresh, twice repeated
        // (flush first: recent occurrences may be pending in the
        // last-instance caches).
        fused.flush_deltas();
        assert!(fused.table.iter().filter(|s| s.count_plus > 0).all(|s| s.count_plus == 3));
    }

    #[test]
    fn collision_heavy_keys_probe_correctly() {
        // An adversarial key set: instances brute-forced to share one
        // initial probe position, exercising long linear-probe chains.
        let cfg = TrackerConfig::default();
        let mut fused = fused_for(1, cfg);
        let target = hash4(0, 0, 0, 0) & (INITIAL_CAPACITY - 1);
        let colliders: Vec<u32> = (0..u32::MAX)
            .filter(|&k| hash4(0, k, 0, 0) & (INITIAL_CAPACITY - 1) == target)
            .take(40)
            .collect();
        assert_eq!(colliders.len(), 40);
        for &k in &colliders {
            assert!(!fused.measure_event(&ev(0, k, 0, 0), None));
        }
        // Every collider is individually retrievable despite the pileup.
        for &k in &colliders {
            assert!(fused.measure_event(&ev(0, k, 0, 0), None), "collider {k:#x} lost");
        }
        assert_eq!(fused.instances_buffered(), 40);
        assert_eq!(fused.dynamic_repeated(), 40);
    }

    #[test]
    fn undecodable_slots_fall_back_like_the_split_observers() {
        // An event whose index lies beyond the row table (e.g. a text
        // segment the image didn't cover) must not panic the metadata
        // path of skip_event; measure_event panics like the split
        // tracker, which is covered by its own tests.
        let cfg = TrackerConfig::default();
        let mut fused = fused_for(1, cfg);
        fused.skip_event(&ev(5, 1, 2, 3), None);
        assert_eq!(fused.dynamic_total(), 0);
    }
}
