//! Global source analysis (paper §5.1, Table 3).
//!
//! Every value flowing through the program is tagged with the ultimate
//! *source* of the data it derives from, and each dynamic instruction is
//! binned by the tags of its inputs under the supersede rule
//! `external input ≻ global init data ≻ program internal ≻ uninit`
//! (priority goes to the source that is "less repeatable").
//!
//! Tag state (registers and a shadow memory) is updated on every event;
//! statistics are accumulated only while counting is enabled, which lets
//! the pipeline fast-forward past initialization without losing dataflow
//! provenance (mirroring the paper's skip-then-measure methodology).

use instrep_asm::Image;
use instrep_isa::abi::Syscall;
use instrep_isa::{decode, Insn, Reg};
use instrep_sim::{CtrlEffect, Event};

use crate::shadow::ShadowPages;

/// Source category of a value or instruction, ordered by supersede
/// priority (higher wins when slices meet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum GlobalTag {
    /// Uninitialized data (e.g. a callee-saved register saved before
    /// first definition).
    Uninit = 0,
    /// Program internals: immediates and values derived only from them.
    Internal = 1,
    /// Statically initialized global data.
    GlobalInit = 2,
    /// External program input (`read` syscall data).
    External = 3,
}

impl GlobalTag {
    /// All categories in reporting order (paper Table 3 rows).
    pub const ALL: [GlobalTag; 4] =
        [GlobalTag::Internal, GlobalTag::GlobalInit, GlobalTag::External, GlobalTag::Uninit];

    /// Decodes a tag from its `repr(u8)` discriminant.
    fn from_u8(v: u8) -> GlobalTag {
        match v {
            0 => GlobalTag::Uninit,
            1 => GlobalTag::Internal,
            2 => GlobalTag::GlobalInit,
            _ => GlobalTag::External,
        }
    }

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            GlobalTag::Internal => "internals",
            GlobalTag::GlobalInit => "global init data",
            GlobalTag::External => "external input",
            GlobalTag::Uninit => "uninit",
        }
    }
}

/// Per-category counters for the three Table 3 sections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalCounts {
    /// Dynamic instructions in each category (index = `GlobalTag as u8`).
    pub overall: [u64; 4],
    /// Repeated dynamic instructions in each category.
    pub repeated: [u64; 4],
}

impl GlobalCounts {
    /// Total dynamic instructions counted.
    pub fn total(&self) -> u64 {
        self.overall.iter().sum()
    }

    /// Fraction of all counted instructions in `tag` (Table 3 *Overall*).
    pub fn overall_share(&self, tag: GlobalTag) -> f64 {
        ratio(self.overall[tag as usize], self.total())
    }

    /// Fraction of all repeated instructions in `tag` (Table 3
    /// *Repeated*).
    pub fn repeated_share(&self, tag: GlobalTag) -> f64 {
        ratio(self.repeated[tag as usize], self.repeated.iter().sum())
    }

    /// Fraction of instructions in `tag` that repeated (Table 3
    /// *Propensity*).
    pub fn propensity(&self, tag: GlobalTag) -> f64 {
        ratio(self.repeated[tag as usize], self.overall[tag as usize])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// "No register" sentinel in [`GMeta`] operand slots. Must be distinct
/// from `Reg::ZERO`'s number: an absent operand contributes nothing to
/// the supersede max, while `$zero` contributes `Internal`.
const NO_REG: u8 = 0xFF;

/// Tag rule is "store" — categorize by the stored register alone.
const GM_STORE: u8 = 1 << 0;
/// Register-only data inputs — the supersede max starts from `Uninit`
/// instead of `Internal`.
const GM_UNINIT_BASE: u8 = 1 << 1;
/// The destination receives `Internal` (link registers) rather than the
/// instruction's input tag.
const GM_DEF_INTERNAL: u8 = 1 << 2;
/// Slot decoded successfully; unset slots recompute from `Event::insn`.
const GM_VALID: u8 = 1 << 3;

/// Per-static-instruction tagging rules, precomputed at construction so
/// the per-event path indexes a flat table instead of re-matching the
/// instruction enum on every retired instruction. `pub(crate)` so the
/// fused tier (`core::fused`) can embed one per hot row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GMeta {
    /// First register read (stores: the stored register), or [`NO_REG`].
    s1: u8,
    /// Second register read, or [`NO_REG`].
    s2: u8,
    /// Destination register, or [`NO_REG`] (none, or `$zero`).
    def: u8,
    flags: u8,
}

impl GMeta {
    pub(crate) const INVALID: GMeta = GMeta { s1: NO_REG, s2: NO_REG, def: NO_REG, flags: 0 };

    /// Derives the tagging rules for one instruction. This is the single
    /// source of truth for `observe`'s categorization; the precomputed
    /// table is just this function applied to the decoded text segment.
    pub(crate) fn of(insn: &Insn) -> GMeta {
        let mut m = GMeta { s1: NO_REG, s2: NO_REG, def: NO_REG, flags: GM_VALID };
        if insn.is_store() {
            m.flags |= GM_STORE;
            if let Insn::Mem { rt, .. } = *insn {
                m.s1 = rt.number();
            }
            return m;
        }
        if matches!(
            insn,
            Insn::Alu { .. } | Insn::Branch { .. } | Insn::Jr { .. } | Insn::Jalr { .. }
        ) {
            m.flags |= GM_UNINIT_BASE;
        }
        let [u1, u2] = insn.uses();
        if let Some(r) = u1 {
            m.s1 = r.number();
        }
        if let Some(r) = u2 {
            m.s2 = r.number();
        }
        if let Some(dst) = insn.def() {
            if dst != Reg::ZERO {
                m.def = dst.number();
                if matches!(insn, Insn::Jump { link: true, .. } | Insn::Jalr { .. }) {
                    m.flags |= GM_DEF_INTERNAL;
                }
            }
        }
        m
    }
}

/// Dataflow-tagging analysis attributing instructions to value sources.
#[derive(Debug)]
pub struct GlobalAnalysis {
    regs: [GlobalTag; 32],
    /// Precomputed tagging rules indexed by `Event::index`; events past
    /// the table (or on undecodable slots) fall back to [`GMeta::of`].
    meta: Vec<GMeta>,
    /// Shadow tags for memory words that have been written (or read from
    /// external input); absent words fall back to the static image
    /// classification. Each slot is `(tag << 1) | 1`, so `0` (the paged
    /// store's "never set" value) cleanly means "fall back".
    mem: ShadowPages,
    /// Explicitly tagged words (occupancy gauge; kept incrementally).
    shadow_count: u64,
    /// Initialized-data ranges from the image (sorted).
    init_ranges: Vec<std::ops::Range<u32>>,
    counts: GlobalCounts,
}

impl GlobalAnalysis {
    /// Creates the analysis for a loaded image.
    pub fn new(image: &Image) -> GlobalAnalysis {
        let mut regs = [GlobalTag::Uninit; 32];
        // The loader materializes these; they are program internals.
        regs[Reg::ZERO.number() as usize] = GlobalTag::Internal;
        regs[Reg::GP.number() as usize] = GlobalTag::Internal;
        regs[Reg::SP.number() as usize] = GlobalTag::Internal;
        let meta = image
            .text
            .iter()
            .map(|&w| decode(w).map_or(GMeta::INVALID, |insn| GMeta::of(&insn)))
            .collect();
        GlobalAnalysis {
            regs,
            meta,
            mem: ShadowPages::new(),
            shadow_count: 0,
            init_ranges: image.init_ranges.clone(),
            counts: GlobalCounts::default(),
        }
    }

    fn mem_tag(&self, addr: u32) -> GlobalTag {
        let slot = self.mem.get(addr);
        if slot & 1 == 1 {
            return GlobalTag::from_u8(slot >> 1);
        }
        if self.is_initialized(addr) {
            GlobalTag::GlobalInit
        } else {
            GlobalTag::Uninit
        }
    }

    /// Explicitly tags the word containing `addr`.
    fn set_mem_tag(&mut self, addr: u32, tag: GlobalTag) {
        let slot = self.mem.slot_mut(addr);
        if *slot == 0 {
            self.shadow_count += 1;
        }
        *slot = ((tag as u8) << 1) | 1;
    }

    fn is_initialized(&self, addr: u32) -> bool {
        self.init_ranges
            .binary_search_by(|r| {
                if addr < r.start {
                    std::cmp::Ordering::Greater
                } else if addr >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Observes one retired instruction. Tag state always updates;
    /// statistics only when `counting`.
    pub fn observe(&mut self, ev: &Event, repeated: bool, counting: bool) {
        let m = self.meta.get(ev.index as usize).copied().unwrap_or(GMeta::INVALID);
        self.observe_meta(m, ev, repeated, counting);
    }

    /// [`GlobalAnalysis::observe`] with the metadata row supplied by the
    /// caller — the fused tier keeps its own copy embedded in the hot
    /// row. Invalid rows (undecodable slots, out-of-table indices) fall
    /// back to recomputing from the event's instruction.
    pub(crate) fn observe_meta(&mut self, m: GMeta, ev: &Event, repeated: bool, counting: bool) {
        let m = if m.flags & GM_VALID != 0 { m } else { GMeta::of(&ev.insn) };

        // 1. Input tag under the supersede rule. Stores are categorized
        // by the provenance of the stored value alone (the paper's
        // example: saving an uninitialized callee-saved register is an
        // *uninit* instruction even though the address comes from `$sp`).
        let tag = if m.flags & GM_STORE != 0 {
            if m.s1 != NO_REG {
                self.regs[m.s1 as usize]
            } else {
                GlobalTag::Internal
            }
        } else {
            // Instructions with an immediate data input (or none at all)
            // have *program internal* as one of their input tags;
            // register-only instructions start from the lowest priority
            // so two uninitialized operands classify as uninit.
            let mut tag =
                if m.flags & GM_UNINIT_BASE != 0 { GlobalTag::Uninit } else { GlobalTag::Internal };
            if m.s1 != NO_REG {
                tag = tag.max(self.regs[m.s1 as usize]);
            }
            if m.s2 != NO_REG {
                tag = tag.max(self.regs[m.s2 as usize]);
            }
            if let Some(mem) = ev.mem {
                if mem.is_load {
                    tag = tag.max(self.mem_tag(mem.addr));
                }
            }
            tag
        };

        // 2. Propagate to outputs. (For stores `tag` is already the
        // stored value's provenance, which is what future loads see.)
        if m.def != NO_REG {
            self.regs[m.def as usize] = if m.flags & GM_DEF_INTERNAL != 0 {
                // A call's ra is a program-internal constant.
                GlobalTag::Internal
            } else {
                tag
            };
        }
        if let Some(mem) = ev.mem {
            if !mem.is_load {
                // Sub-word stores tag their containing word (the shadow
                // memory is word-granular).
                self.set_mem_tag(mem.addr, tag);
            }
        }
        if ev.ctrl.is_some() {
            self.syscall_effects(ev);
        }

        // 3. Count.
        if counting {
            self.counts.overall[tag as usize] += 1;
            if repeated {
                self.counts.repeated[tag as usize] += 1;
            }
        }
    }

    /// Syscall register/memory tagging (off the hot path; most events
    /// carry no control effect).
    fn syscall_effects(&mut self, ev: &Event) {
        if let Some(CtrlEffect::Syscall { call, a, ret }) = ev.ctrl {
            match call {
                Syscall::Read => {
                    // Bytes read are external input; tag whole words.
                    let (buf, n) = (a[1], ret);
                    let mut w = buf & !3;
                    while w < buf + n {
                        self.set_mem_tag(w, GlobalTag::External);
                        w += 4;
                    }
                    self.regs[Reg::V0.number() as usize] = GlobalTag::External;
                }
                Syscall::Sbrk => {
                    self.regs[Reg::V0.number() as usize] = GlobalTag::Internal;
                }
                Syscall::Write | Syscall::Exit => {
                    self.regs[Reg::V0.number() as usize] = GlobalTag::Internal;
                }
            }
        }
    }

    /// Accumulated counters.
    pub fn counts(&self) -> &GlobalCounts {
        &self.counts
    }

    /// Number of memory words carrying a shadow tag (occupancy gauge for
    /// the dataflow state).
    pub fn shadow_words(&self) -> u64 {
        self.shadow_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::abi;
    use instrep_isa::{AluOp, ImmOp, MemOp, MemWidth};
    use instrep_sim::MemEffect;

    fn image_with_init() -> Image {
        Image { init_ranges: vec![abi::DATA_BASE..abi::DATA_BASE + 8; 1], ..Image::default() }
    }

    fn alu_event(rd: Reg, rs: Reg, rt: Reg) -> Event {
        Event {
            pc: abi::TEXT_BASE,
            index: 0,
            insn: Insn::alu(AluOp::Add, rd, rs, rt),
            in1: 0,
            in2: 0,
            out: Some(0),
            mem: None,
            ctrl: None,
        }
    }

    fn load_event(rt: Reg, base: Reg, addr: u32) -> Event {
        Event {
            pc: abi::TEXT_BASE,
            index: 0,
            insn: Insn::Mem { op: MemOp::Load(MemWidth::Word), rt, base, off: 0 },
            in1: addr,
            in2: 0,
            out: Some(7),
            mem: Some(MemEffect { addr, width: MemWidth::Word, value: 7, is_load: true }),
            ctrl: None,
        }
    }

    fn store_event(rt: Reg, base: Reg, addr: u32) -> Event {
        Event {
            pc: abi::TEXT_BASE,
            index: 0,
            insn: Insn::Mem { op: MemOp::Store(MemWidth::Word), rt, base, off: 0 },
            in1: addr,
            in2: 9,
            out: None,
            mem: Some(MemEffect { addr, width: MemWidth::Word, value: 9, is_load: false }),
            ctrl: None,
        }
    }

    #[test]
    fn immediates_are_internal() {
        let mut g = GlobalAnalysis::new(&image_with_init());
        let li = Event {
            pc: abi::TEXT_BASE,
            index: 0,
            insn: Insn::imm(ImmOp::Addi, Reg::T0, Reg::ZERO, 5),
            in1: 0,
            in2: 0,
            out: Some(5),
            mem: None,
            ctrl: None,
        };
        g.observe(&li, false, true);
        assert_eq!(g.counts().overall[GlobalTag::Internal as usize], 1);
        // t0 now carries Internal; an op on it stays Internal.
        g.observe(&alu_event(Reg::T1, Reg::T0, Reg::ZERO), false, true);
        assert_eq!(g.counts().overall[GlobalTag::Internal as usize], 2);
    }

    #[test]
    fn loads_from_init_data_are_global_init() {
        let mut g = GlobalAnalysis::new(&image_with_init());
        g.observe(&load_event(Reg::T0, Reg::GP, abi::DATA_BASE), false, true);
        assert_eq!(g.counts().overall[GlobalTag::GlobalInit as usize], 1);
        // And the loaded value propagates GlobalInit.
        g.observe(&alu_event(Reg::T1, Reg::T0, Reg::ZERO), false, true);
        assert_eq!(g.counts().overall[GlobalTag::GlobalInit as usize], 2);
    }

    #[test]
    fn bss_loads_follow_base_and_content() {
        let mut g = GlobalAnalysis::new(&image_with_init());
        let bss = abi::DATA_BASE + 16; // outside init range
                                       // Internal base supersedes uninit content for the load itself...
        g.observe(&load_event(Reg::T0, Reg::GP, bss), false, true);
        assert_eq!(g.counts().overall[GlobalTag::Internal as usize], 1);
        // ...and an operation on a never-written register is uninit.
        g.observe(&alu_event(Reg::T1, Reg::S4, Reg::S5), false, true);
        assert_eq!(g.counts().overall[GlobalTag::Uninit as usize], 1);
        // Store an internal value to bss; subsequent load is Internal.
        g.observe(&store_event(Reg::ZERO, Reg::GP, bss), false, true);
        g.observe(&load_event(Reg::T1, Reg::GP, bss), false, true);
        assert_eq!(g.counts().overall[GlobalTag::Internal as usize], 3);
    }

    #[test]
    fn external_input_supersedes() {
        let mut g = GlobalAnalysis::new(&image_with_init());
        let buf = abi::DATA_BASE + 32;
        let syscall = Event {
            pc: abi::TEXT_BASE,
            index: 0,
            insn: Insn::Syscall,
            in1: 0,
            in2: 0,
            out: None,
            mem: None,
            ctrl: Some(CtrlEffect::Syscall { call: Syscall::Read, a: [0, buf, 8], ret: 8 }),
        };
        g.observe(&syscall, false, true);
        g.observe(&load_event(Reg::T0, Reg::GP, buf), false, true);
        assert_eq!(g.counts().overall[GlobalTag::External as usize], 1);
        // External ≻ GlobalInit when slices meet.
        g.observe(&load_event(Reg::T1, Reg::GP, abi::DATA_BASE), false, true);
        g.observe(&alu_event(Reg::T2, Reg::T0, Reg::T1), false, true);
        assert_eq!(g.counts().overall[GlobalTag::External as usize], 2);
    }

    #[test]
    fn uninit_register_saves() {
        let mut g = GlobalAnalysis::new(&Image::default());
        // Saving a never-written callee-saved register.
        g.observe(&store_event(Reg::S3, Reg::SP, abi::STACK_TOP - 8), false, true);
        assert_eq!(g.counts().overall[GlobalTag::Uninit as usize], 1);
    }

    #[test]
    fn counting_gate() {
        let mut g = GlobalAnalysis::new(&image_with_init());
        g.observe(&load_event(Reg::T0, Reg::GP, abi::DATA_BASE), true, false);
        assert_eq!(g.counts().total(), 0);
        // But state still propagated.
        g.observe(&alu_event(Reg::T1, Reg::T0, Reg::ZERO), false, true);
        assert_eq!(g.counts().overall[GlobalTag::GlobalInit as usize], 1);
    }

    #[test]
    fn shares_and_propensity() {
        let mut c = GlobalCounts::default();
        c.overall[GlobalTag::Internal as usize] = 80;
        c.overall[GlobalTag::External as usize] = 20;
        c.repeated[GlobalTag::Internal as usize] = 60;
        c.repeated[GlobalTag::External as usize] = 5;
        assert!((c.overall_share(GlobalTag::Internal) - 0.8).abs() < 1e-9);
        assert!((c.repeated_share(GlobalTag::External) - 5.0 / 65.0).abs() < 1e-9);
        assert!((c.propensity(GlobalTag::Internal) - 0.75).abs() < 1e-9);
        assert_eq!(c.propensity(GlobalTag::Uninit), 0.0);
    }
}
