//! Live telemetry: a shared registry of named atomic counters, gauges,
//! and log-bucketed latency histograms, plus a wall-clock heartbeat
//! sampler that streams registry snapshots as JSONL while a run
//! executes.
//!
//! Everything here follows the same zero-cost-off discipline as
//! [`Probes`](crate::Probes): instrumented code holds an
//! `Option<&TelemetryRegistry>` (or a cloned handle) and does nothing
//! when none is installed, so table output stays byte-identical with
//! telemetry on or off at every `--jobs` count. Unlike the pull-based
//! metrics/span/interval layers — which materialize at phase boundaries
//! or end of run — this registry is *live*: handles are lock-free
//! atomics updated with `Relaxed` ordering from the hot paths, and a
//! background thread ([`HeartbeatSampler`]) snapshots them on a
//! wall-clock period mid-measure-loop. `Relaxed` is sufficient because
//! every exported quantity is a single monotone atomic: per-variable
//! coherence guarantees a later read never observes a smaller value, so
//! per-lane icounts in consecutive heartbeats are non-decreasing. No
//! cross-variable snapshot atomicity is claimed (a heartbeat may catch
//! a counter mid-phase); the final snapshot is exact because the
//! sampler's stop flag is only raised after worker threads have joined.
//!
//! Three renderings share [`TELEMETRY_SCHEMA_VERSION`]:
//!
//! * JSONL heartbeats (`instrep-repro --heartbeat-out/--heartbeat-ms`)
//!   — a header line then one line per sample ([`heartbeat_json`]).
//! * Prometheus-style text exposition (`--telemetry-out`, written at
//!   exit; [`render_prometheus`]) — the future daemon's `/metrics`.
//! * A single-line live TTY progress string (`--progress`, stderr
//!   only; [`progress_line`]).

use crate::metrics::{json_f64, json_string, PhaseTimer};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Version of the heartbeat JSONL and Prometheus exposition documents.
/// Bump on any change to field names, meanings, or structure;
/// `scripts/ci.sh` greps for the current value to catch drift.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Number of log2 histogram buckets: bucket 0 holds exactly 0, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for
/// values ≥ 2^63 (including `u64::MAX`).
pub const HIST_BUCKETS: usize = 65;

/// Maps a value to its log2 bucket (see [`HIST_BUCKETS`]).
///
/// # Examples
///
/// ```
/// use instrep_core::telemetry::bucket_index;
///
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(1024), 11);
/// assert_eq!(bucket_index(u64::MAX), 64);
/// ```
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Upper bound (inclusive) of bucket `i`, as a string for the
/// Prometheus `le` label: `2^i - 1`, with bucket 0 bounded at `0`.
fn bucket_le(i: usize) -> String {
    ((1u128 << i) - 1).to_string()
}

/// A monotone event counter. Cloning shares the underlying atomic;
/// increments are `Relaxed` and safe from any thread.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger — a monotone
    /// running-maximum gauge (e.g. the deepest loop nest seen across
    /// concurrent workers), race-free under `Relaxed` because
    /// `fetch_max` is a single read-modify-write.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistInner {
    fn new() -> HistInner {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed latency histogram (see [`bucket_index`]). Cloning
/// shares the underlying storage; records are `Relaxed` and safe from
/// any thread.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wraps on overflow, which nanosecond
    /// latencies cannot reach in practice).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }
}

/// The phase a pipeline worker lane is currently executing, published
/// live through [`LaneTelemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LanePhase {
    /// Between jobs (or finished).
    Idle = 0,
    /// Probing / verifying the analysis cache.
    Cache = 1,
    /// Building the simulator and observers.
    Setup = 2,
    /// Executing the skip (warm-up) window.
    Skip = 3,
    /// Executing the measured window.
    Measure = 4,
    /// Collecting results and gauges.
    Finalize = 5,
}

impl LanePhase {
    /// Lowercase phase name as exported in heartbeats and exposition.
    pub fn name(self) -> &'static str {
        match self {
            LanePhase::Idle => "idle",
            LanePhase::Cache => "cache",
            LanePhase::Setup => "setup",
            LanePhase::Skip => "skip",
            LanePhase::Measure => "measure",
            LanePhase::Finalize => "finalize",
        }
    }

    fn from_u8(v: u8) -> LanePhase {
        match v {
            1 => LanePhase::Cache,
            2 => LanePhase::Setup,
            3 => LanePhase::Skip,
            4 => LanePhase::Measure,
            5 => LanePhase::Finalize,
            _ => LanePhase::Idle,
        }
    }
}

/// Live per-worker-lane state: instruction count, jobs completed, and
/// current phase. All fields are monotone or last-value atomics, so
/// heartbeat samples of one lane never go backwards.
#[derive(Debug, Default)]
pub struct LaneTelemetry {
    lane: u32,
    icount: AtomicU64,
    jobs_done: AtomicU64,
    phase: AtomicU8,
    /// Workload label of the job the lane is running (empty when
    /// idle). The one non-atomic field: labels change once per *job*,
    /// so a mutex costs nothing on the hot path.
    label: Mutex<String>,
}

impl LaneTelemetry {
    /// Lane (worker) index.
    pub fn lane_index(&self) -> u32 {
        self.lane
    }

    /// Publishes the lane's current phase.
    pub fn set_phase(&self, phase: LanePhase) {
        self.phase.store(phase as u8, Ordering::Relaxed);
    }

    /// The lane's current phase.
    pub fn phase(&self) -> LanePhase {
        LanePhase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// Adds executed instructions to the lane's live count.
    pub fn add_icount(&self, n: u64) {
        self.icount.fetch_add(n, Ordering::Relaxed);
    }

    /// Instructions executed on this lane so far (monotone).
    pub fn icount(&self) -> u64 {
        self.icount.load(Ordering::Relaxed)
    }

    /// Marks one job finished on this lane.
    pub fn job_done(&self) {
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs finished on this lane so far.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done.load(Ordering::Relaxed)
    }

    /// Publishes the workload label the lane is currently running
    /// (clear with `""` when going idle).
    pub fn set_label(&self, label: &str) {
        label.clone_into(&mut self.label.lock().expect("lane label poisoned"));
    }

    /// The workload label the lane is currently running, or `""`.
    pub fn label(&self) -> String {
        self.label.lock().expect("lane label poisoned").clone()
    }
}

/// Batches per-event lane icount updates so the measure loop pays one
/// `Relaxed` `fetch_add` per [`LiveCount::BATCH`] events instead of one
/// per event. Flush at phase end to keep the published count exact (and
/// still monotone — the batch only delays increments, never reorders
/// them).
#[derive(Debug)]
pub struct LiveCount<'a> {
    lane: &'a LaneTelemetry,
    pending: u64,
}

impl<'a> LiveCount<'a> {
    /// Events accumulated locally before publishing to the lane atomic.
    pub const BATCH: u64 = 1024;

    /// Starts a batcher for one lane.
    pub fn new(lane: &'a LaneTelemetry) -> LiveCount<'a> {
        LiveCount { lane, pending: 0 }
    }

    /// Counts one event, publishing every [`LiveCount::BATCH`] events.
    #[inline]
    pub fn tick(&mut self) {
        self.pending += 1;
        if self.pending == Self::BATCH {
            self.lane.add_icount(Self::BATCH);
            self.pending = 0;
        }
    }

    /// Publishes any unflushed remainder.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.lane.add_icount(self.pending);
            self.pending = 0;
        }
    }
}

/// The telemetry handle one pipeline worker lane threads into
/// [`Probes`](crate::Probes): its [`LaneTelemetry`] plus shared
/// per-phase wall-time counters (`phase_ns_*`, aggregated across
/// lanes). Built by [`TelemetryRegistry::pipeline_lane`].
#[derive(Debug, Clone)]
pub struct PipelineTelemetry {
    lane: Arc<LaneTelemetry>,
    /// Wall-time counters indexed by `LanePhase as usize - 1`
    /// (cache, setup, skip, measure, finalize).
    phase_ns: [Counter; 5],
}

impl PipelineTelemetry {
    /// The lane's live state.
    pub fn lane(&self) -> &LaneTelemetry {
        &self.lane
    }

    /// Marks the lane as entering `phase` and starts its stopwatch.
    pub fn begin(&self, phase: LanePhase) -> PhaseTimer {
        self.lane.set_phase(phase);
        PhaseTimer::start()
    }

    /// Accumulates the elapsed wall time of `phase` into the shared
    /// `phase_ns_*` counter ([`LanePhase::Idle`] has none and is
    /// ignored).
    pub fn end(&self, phase: LanePhase, timer: PhaseTimer) {
        if phase != LanePhase::Idle {
            self.phase_ns[phase as usize - 1].add(timer.elapsed_ns());
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Arc<AtomicU64>)>,
    gauges: Vec<(String, Arc<AtomicU64>)>,
    hists: Vec<(String, Arc<HistInner>)>,
    lanes: Vec<Arc<LaneTelemetry>>,
}

/// A `Send + Sync` registry of named telemetry instruments. Handles
/// ([`Counter`], [`Gauge`], [`Histogram`], [`LaneTelemetry`]) are
/// interned by name: asking twice returns handles sharing one atomic.
/// Registration takes a mutex; updates through handles are lock-free.
///
/// # Examples
///
/// ```
/// use instrep_core::TelemetryRegistry;
///
/// let registry = TelemetryRegistry::new();
/// let hits = registry.counter("cache_hit");
/// hits.inc();
/// registry.counter("cache_hit").add(2); // same underlying counter
/// let snap = registry.snapshot();
/// assert_eq!(snap.counters, vec![("cache_hit".to_string(), 3)]);
/// ```
#[derive(Debug)]
pub struct TelemetryRegistry {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for TelemetryRegistry {
    fn default() -> TelemetryRegistry {
        TelemetryRegistry::new()
    }
}

impl TelemetryRegistry {
    /// Creates an empty registry; its clock starts now.
    pub fn new() -> TelemetryRegistry {
        TelemetryRegistry { start: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    /// Nanoseconds since the registry was created.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Returns the counter named `name`, creating it at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        if let Some((_, a)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Counter(Arc::clone(a));
        }
        let a = Arc::new(AtomicU64::new(0));
        inner.counters.push((name.to_string(), Arc::clone(&a)));
        Counter(a)
    }

    /// Returns the gauge named `name`, creating it at 0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        if let Some((_, a)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return Gauge(Arc::clone(a));
        }
        let a = Arc::new(AtomicU64::new(0));
        inner.gauges.push((name.to_string(), Arc::clone(&a)));
        Gauge(a)
    }

    /// Returns the histogram named `name`, creating it empty on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        if let Some((_, h)) = inner.hists.iter().find(|(n, _)| n == name) {
            return Histogram { inner: Arc::clone(h) };
        }
        let h = Arc::new(HistInner::new());
        inner.hists.push((name.to_string(), Arc::clone(&h)));
        Histogram { inner: h }
    }

    /// Returns lane `index`'s live state, creating lanes 0..=index on
    /// first use.
    pub fn lane(&self, index: usize) -> Arc<LaneTelemetry> {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        while inner.lanes.len() <= index {
            let lane = inner.lanes.len() as u32;
            inner.lanes.push(Arc::new(LaneTelemetry { lane, ..LaneTelemetry::default() }));
        }
        Arc::clone(&inner.lanes[index])
    }

    /// Builds the per-lane pipeline handle for worker `index`: its
    /// [`LaneTelemetry`] plus the shared `phase_ns_*` counters.
    pub fn pipeline_lane(&self, index: usize) -> PipelineTelemetry {
        PipelineTelemetry {
            lane: self.lane(index),
            phase_ns: [
                self.counter("phase_ns_cache"),
                self.counter("phase_ns_setup"),
                self.counter("phase_ns_skip"),
                self.counter("phase_ns_measure"),
                self.counter("phase_ns_finalize"),
            ],
        }
    }

    /// Reads every instrument into a point-in-time [`TelemetrySnapshot`]
    /// (counters/gauges/histograms name-sorted for deterministic
    /// rendering; lanes in lane order).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let elapsed_ns = self.elapsed_ns();
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        let mut counters: Vec<(String, u64)> =
            inner.counters.iter().map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed))).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, u64)> =
            inner.gauges.iter().map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed))).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hists: Vec<(String, HistSnapshot)> = inner
            .hists
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    HistSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                    },
                )
            })
            .collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let lanes = inner
            .lanes
            .iter()
            .map(|l| LaneSnapshot {
                lane: l.lane,
                icount: l.icount(),
                jobs_done: l.jobs_done(),
                phase: l.phase(),
                label: l.label(),
            })
            .collect();
        TelemetrySnapshot { elapsed_ns, counters, gauges, hists, lanes }
    }
}

/// Point-in-time values of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
}

/// Point-in-time state of one worker lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Lane (worker) index.
    pub lane: u32,
    /// Instructions executed so far.
    pub icount: u64,
    /// Jobs finished so far.
    pub jobs_done: u64,
    /// Phase the lane was in when sampled.
    pub phase: LanePhase,
    /// Workload the lane was running when sampled (`""` when idle).
    pub label: String,
}

/// A point-in-time copy of every instrument in a
/// [`TelemetryRegistry`], produced by
/// [`TelemetryRegistry::snapshot`]. Individual values are exact reads
/// of monotone atomics; no atomicity across values is claimed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Registry age when sampled, in nanoseconds.
    pub elapsed_ns: u64,
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, name-sorted.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Lanes, in lane order.
    pub lanes: Vec<LaneSnapshot>,
}

/// Renders a snapshot as Prometheus-style text exposition: `# TYPE`
/// comments, `instrep_`-prefixed sample lines, cumulative `le`-labelled
/// histogram buckets. Deterministic for a fixed snapshot.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str(&format!(
        "# instrep telemetry exposition (schema_version {TELEMETRY_SCHEMA_VERSION})\n"
    ));
    s.push_str(&format!("# elapsed_ns {}\n", snap.elapsed_ns));
    for (name, v) in &snap.counters {
        s.push_str(&format!("# TYPE instrep_{name} counter\ninstrep_{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        s.push_str(&format!("# TYPE instrep_{name} gauge\ninstrep_{name} {v}\n"));
    }
    for (name, h) in &snap.hists {
        s.push_str(&format!("# TYPE instrep_{name} histogram\n"));
        let top = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &b) in h.buckets.iter().enumerate().take(top + 1) {
            cum += b;
            s.push_str(&format!("instrep_{name}_bucket{{le=\"{}\"}} {cum}\n", bucket_le(i)));
        }
        s.push_str(&format!("instrep_{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        s.push_str(&format!("instrep_{name}_sum {}\n", h.sum));
        s.push_str(&format!("instrep_{name}_count {}\n", h.count));
    }
    for l in &snap.lanes {
        s.push_str(&format!(
            "instrep_lane_icount{{lane=\"{}\"}} {}\n\
             instrep_lane_jobs_done{{lane=\"{}\"}} {}\n\
             instrep_lane_phase{{lane=\"{}\",phase=\"{}\"}} 1\n",
            l.lane,
            l.icount,
            l.lane,
            l.jobs_done,
            l.lane,
            l.phase.name(),
        ));
    }
    s
}

/// The heartbeat stream's header line (JSONL line 1).
pub fn heartbeat_header_json(period_ms: u64) -> String {
    format!(
        "{{\"schema_version\": {TELEMETRY_SCHEMA_VERSION}, \"kind\": \"heartbeats\", \
         \"period_ms\": {period_ms}}}"
    )
}

/// Renders one heartbeat JSONL line from a snapshot. `prev` (the
/// previous heartbeat's snapshot) supplies the baseline for per-lane
/// events/s; without one the rates are 0.
pub fn heartbeat_json(
    seq: u64,
    snap: &TelemetrySnapshot,
    prev: Option<&TelemetrySnapshot>,
) -> String {
    let mut s = String::with_capacity(512);
    s.push_str(&format!(
        "{{\"kind\": \"heartbeat\", \"seq\": {seq}, \"elapsed_ms\": {}",
        json_f64(snap.elapsed_ns as f64 / 1e6)
    ));
    s.push_str(", \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {v}", json_string(name)));
    }
    s.push_str("}, \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {v}", json_string(name)));
    }
    s.push_str("}, \"hists\": {");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{}: {{\"count\": {}, \"sum\": {}}}",
            json_string(name),
            h.count,
            h.sum
        ));
    }
    s.push_str("}, \"lanes\": [");
    for (i, l) in snap.lanes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"lane\": {}, \"icount\": {}, \"events_per_sec\": {}, \"phase\": {}, \
             \"workload\": {}, \"jobs_done\": {}}}",
            l.lane,
            l.icount,
            json_f64(lane_rate(l, snap, prev)),
            json_string(l.phase.name()),
            json_string(&l.label),
            l.jobs_done,
        ));
    }
    s.push_str("]}");
    s
}

/// Per-lane events/s between `prev` and `snap` (0 without a baseline
/// or elapsed time).
fn lane_rate(l: &LaneSnapshot, snap: &TelemetrySnapshot, prev: Option<&TelemetrySnapshot>) -> f64 {
    let Some(prev) = prev else { return 0.0 };
    let Some(pl) = prev.lanes.iter().find(|p| p.lane == l.lane) else { return 0.0 };
    let dt_ns = snap.elapsed_ns.saturating_sub(prev.elapsed_ns);
    if dt_ns == 0 {
        return 0.0;
    }
    l.icount.saturating_sub(pl.icount) as f64 / (dt_ns as f64 / 1e9)
}

/// The single-line live progress string (`--progress`): totals across
/// all lanes plus the per-lane rate sum from the last heartbeat,
/// followed by each lane's phase and current workload — so a long
/// ten-family run shows *what* is executing, not just that something
/// is.
pub fn progress_line(snap: &TelemetrySnapshot, prev: Option<&TelemetrySnapshot>) -> String {
    let jobs: u64 = snap.lanes.iter().map(|l| l.jobs_done).sum();
    let icount: u64 = snap.lanes.iter().map(|l| l.icount).sum();
    let rate: f64 = snap.lanes.iter().map(|l| lane_rate(l, snap, prev)).sum();
    let mut s = format!("telemetry: {jobs} job(s) done, {icount} events, {rate:.0} events/s");
    for l in &snap.lanes {
        s.push_str(&format!(" | lane{} {}", l.lane, l.phase.name()));
        if !l.label.is_empty() {
            s.push(' ');
            s.push_str(&l.label);
        }
    }
    s
}

/// Configuration for [`HeartbeatSampler::start`].
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// JSONL destination; `None` streams no file (progress only).
    pub out: Option<PathBuf>,
    /// Wall-clock sampling period.
    pub period: Duration,
    /// Render a live single-line progress string to stderr each beat.
    pub progress: bool,
}

/// A background thread that snapshots a [`TelemetryRegistry`] on a
/// wall-clock period, streaming JSONL heartbeats and/or a live stderr
/// progress line. One final beat is always emitted on [`stop`]
/// (after workers have joined, so it reads their final counts), which
/// guarantees at least one heartbeat line even for runs shorter than
/// the period.
///
/// [`stop`]: HeartbeatSampler::stop
#[derive(Debug)]
pub struct HeartbeatSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl HeartbeatSampler {
    /// Opens the output (writing the header line eagerly so I/O errors
    /// surface here, not in the thread) and starts sampling.
    ///
    /// # Errors
    ///
    /// Returns the error from creating or writing the output file.
    pub fn start(
        registry: Arc<TelemetryRegistry>,
        cfg: HeartbeatConfig,
    ) -> std::io::Result<HeartbeatSampler> {
        let mut file = match &cfg.out {
            Some(path) => {
                let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
                writeln!(f, "{}", heartbeat_header_json(cfg.period.as_millis() as u64))?;
                f.flush()?;
                Some(f)
            }
            None => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("instrep-heartbeat".to_string())
            .spawn(move || -> std::io::Result<()> {
                let mut seq = 0u64;
                let mut prev: Option<TelemetrySnapshot> = None;
                loop {
                    let stopping = wait(&flag, cfg.period);
                    seq += 1;
                    let snap = registry.snapshot();
                    if let Some(f) = file.as_mut() {
                        writeln!(f, "{}", heartbeat_json(seq, &snap, prev.as_ref()))?;
                        f.flush()?;
                    }
                    if cfg.progress {
                        eprint!("\r{}\x1b[K", progress_line(&snap, prev.as_ref()));
                    }
                    prev = Some(snap);
                    if stopping {
                        break;
                    }
                }
                if cfg.progress {
                    // Clear the progress line so exit-time eprintln
                    // notices start on a clean line.
                    eprint!("\r\x1b[K");
                }
                Ok(())
            })
            .expect("spawning heartbeat thread");
        Ok(HeartbeatSampler { stop, handle: Some(handle) })
    }

    /// Signals the thread, waits for its final beat, and surfaces any
    /// I/O error it hit.
    ///
    /// # Errors
    ///
    /// Returns the thread's deferred write error, or a synthetic error
    /// if it panicked.
    pub fn stop(mut self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.take().expect("heartbeat sampler already stopped").join() {
            Ok(r) => r,
            Err(_) => Err(std::io::Error::other("heartbeat thread panicked")),
        }
    }
}

impl Drop for HeartbeatSampler {
    fn drop(&mut self) {
        // Defensive: if `stop()` was never called (early error-exit
        // paths), still signal and join so the file is flushed and the
        // progress line cleared.
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
    }
}

/// Sleeps up to `period` in short slices, polling the stop flag.
/// Returns true when stopping (so the caller emits one final beat).
fn wait(stop: &AtomicBool, period: Duration) -> bool {
    let deadline = Instant::now() + period;
    loop {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 0..64 {
            assert_eq!(bucket_index(1u64 << k), k as usize + 1, "2^{k}");
            if k > 0 {
                assert_eq!(bucket_index((1u64 << k) - 1), k as usize, "2^{k}-1");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(0), "0");
        assert_eq!(bucket_le(1), "1");
        assert_eq!(bucket_le(11), "2047");
        assert_eq!(bucket_le(64), u64::MAX.to_string());
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let registry = TelemetryRegistry::new();
        let c = registry.counter("c");
        let h = registry.histogram("h");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        // Each thread records 0..100 repeated 100 times: sum = 8 * 100 * (99*100/2).
        assert_eq!(h.sum(), 8 * 100 * (99 * 100 / 2));
        let snap = registry.snapshot();
        let (_, hs) = &snap.hists[0];
        assert_eq!(hs.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshot_while_updating_is_monotone() {
        let registry = TelemetryRegistry::new();
        let c = registry.counter("events");
        let lane = registry.lane(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..50_000 {
                    c.inc();
                    lane.add_icount(1);
                }
            });
            let mut last_counter = 0;
            let mut last_icount = 0;
            for _ in 0..100 {
                let snap = registry.snapshot();
                let v = snap.counters[0].1;
                let i = snap.lanes[0].icount;
                assert!(v >= last_counter, "counter went backwards: {v} < {last_counter}");
                assert!(i >= last_icount, "icount went backwards: {i} < {last_icount}");
                last_counter = v;
                last_icount = i;
            }
        });
        // After the writer joins, the final snapshot is exact.
        let snap = registry.snapshot();
        assert_eq!(snap.counters[0].1, 50_000);
        assert_eq!(snap.lanes[0].icount, 50_000);
    }

    #[test]
    fn live_count_batches_and_flushes_exactly() {
        let registry = TelemetryRegistry::new();
        let lane = registry.lane(0);
        let mut live = LiveCount::new(&lane);
        for _ in 0..3000 {
            live.tick();
        }
        // Two full batches published, the 952-event tail still pending.
        assert_eq!(lane.icount(), 2048);
        live.flush();
        assert_eq!(lane.icount(), 3000);
        live.flush();
        assert_eq!(lane.icount(), 3000);
    }

    #[test]
    fn registry_interns_handles_by_name() {
        let registry = TelemetryRegistry::new();
        registry.counter("a").inc();
        registry.counter("a").inc();
        registry.counter("b").inc();
        registry.gauge("g").set(7);
        registry.gauge("g").set(9);
        registry.histogram("h").record(3);
        registry.histogram("h").record(5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 9)]);
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].1.count, 2);
        assert_eq!(snap.hists[0].1.sum, 8);
    }

    #[test]
    fn pipeline_lane_phases_and_timing() {
        let registry = TelemetryRegistry::new();
        let tel = registry.pipeline_lane(0);
        assert_eq!(tel.lane().phase(), LanePhase::Idle);
        let t = tel.begin(LanePhase::Measure);
        assert_eq!(tel.lane().phase(), LanePhase::Measure);
        tel.end(LanePhase::Measure, t);
        tel.lane().set_phase(LanePhase::Idle);
        let snap = registry.snapshot();
        let measure = snap.counters.iter().find(|(n, _)| n == "phase_ns_measure").map(|(_, v)| *v);
        assert!(measure.is_some());
        assert_eq!(snap.lanes[0].phase, LanePhase::Idle);
        // Both lanes share the phase counters: interning by name.
        let tel2 = registry.pipeline_lane(1);
        let t2 = tel2.begin(LanePhase::Cache);
        tel2.end(LanePhase::Cache, t2);
        assert_eq!(registry.snapshot().lanes.len(), 2);
    }

    #[test]
    fn prometheus_rendering_buckets_are_cumulative() {
        let registry = TelemetryRegistry::new();
        let h = registry.histogram("lat");
        h.record(0);
        h.record(1);
        h.record(2);
        registry.counter("hits").add(5);
        registry.gauge("depth").set(3);
        registry.lane(0).add_icount(10);
        let text = render_prometheus(&registry.snapshot());
        assert!(text.contains("# TYPE instrep_hits counter\ninstrep_hits 5\n"));
        assert!(text.contains("# TYPE instrep_depth gauge\ninstrep_depth 3\n"));
        assert!(text.contains("instrep_lat_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("instrep_lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("instrep_lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("instrep_lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("instrep_lat_sum 3\n"));
        assert!(text.contains("instrep_lat_count 3\n"));
        // No buckets beyond the highest nonzero one (before +Inf).
        assert!(!text.contains("le=\"7\""));
        assert!(text.contains("instrep_lane_icount{lane=\"0\"} 10\n"));
        assert!(text.contains("instrep_lane_phase{lane=\"0\",phase=\"idle\"} 1\n"));
    }

    #[test]
    fn heartbeat_json_shape_and_rates() {
        let registry = TelemetryRegistry::new();
        registry.counter("cache_hit").inc();
        registry.lane(0).add_icount(1000);
        let first = registry.snapshot();
        let line = heartbeat_json(1, &first, None);
        assert!(line.starts_with("{\"kind\": \"heartbeat\", \"seq\": 1"));
        assert!(line.contains("\"cache_hit\": 1"));
        assert!(line.contains("\"events_per_sec\": 0.000"));
        registry.lane(0).add_icount(1000);
        std::thread::sleep(Duration::from_millis(2));
        let second = registry.snapshot();
        let line2 = heartbeat_json(2, &second, Some(&first));
        assert!(line2.contains("\"icount\": 2000"));
        // 1000 more events over ≥2ms elapsed: a positive, finite rate.
        let rate = lane_rate(&second.lanes[0], &second, Some(&first));
        assert!(rate > 0.0 && rate.is_finite());
        assert_eq!(
            progress_line(&first, None),
            "telemetry: 0 job(s) done, 1000 events, 0 events/s | lane0 idle"
        );
        // With a label published, the progress line names the workload
        // next to the phase, and the heartbeat carries it too.
        registry.lane(0).set_phase(LanePhase::Measure);
        registry.lane(0).set_label("compress");
        let labeled = registry.snapshot();
        assert!(progress_line(&labeled, None).ends_with(" | lane0 measure compress"));
        assert!(heartbeat_json(3, &labeled, None).contains("\"workload\": \"compress\""));
        registry.lane(0).set_label("");
        assert_eq!(registry.snapshot().lanes[0].label, "");
    }

    #[test]
    fn gauge_set_max_is_monotone() {
        let registry = TelemetryRegistry::new();
        let g = registry.gauge("depth");
        g.set_max(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set_max(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn sampler_streams_header_and_beats() {
        let dir = std::env::temp_dir().join(format!("instrep-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        let registry = Arc::new(TelemetryRegistry::new());
        registry.counter("ticks").add(3);
        let sampler = HeartbeatSampler::start(
            Arc::clone(&registry),
            HeartbeatConfig {
                out: Some(path.clone()),
                period: Duration::from_millis(5),
                progress: false,
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        sampler.stop().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"kind\": \"heartbeats\""));
        assert!(header.contains("\"schema_version\": 1"));
        assert!(header.contains("\"period_ms\": 5"));
        let beats: Vec<&str> = lines.collect();
        assert!(!beats.is_empty());
        assert!(beats.iter().all(|l| l.contains("\"kind\": \"heartbeat\"")));
        assert!(beats.last().unwrap().contains("\"ticks\": 3"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
