//! In-flight span tracing for the analysis pipeline, exported as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The tracer is explicit — no globals, no registry: a [`SpanTracer`]
//! owns one monotonic epoch, each thread of work records into its own
//! [`SpanLane`] (lane 0 is the driver's main thread, lanes `1..=N` are
//! the pipeline's worker threads), and finished lanes are merged back
//! into the tracer before export. Spans are opened with
//! [`SpanLane::begin`] and closed LIFO with [`SpanLane::end`], so every
//! lane's spans are strictly nested by construction.
//!
//! Like `core::metrics`, tracing rides an `Option<&mut …>` through the
//! pipeline: when no lane is attached nothing is timed, and the
//! analyses' output is byte-identical either way (spans only sample the
//! clock at phase boundaries, never per event).
//!
//! The exported document is versioned ([`TRACE_SCHEMA_VERSION`],
//! `"kind": "trace"`) and documented in `DESIGN.md` §10.

use std::time::Instant;

use crate::metrics::json_string;

/// Version of the trace-event JSON document. Bump on any change to
/// field names, meanings, or structure; `scripts/ci.sh` greps for the
/// current value to catch accidental drift.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// One completed span: a named, categorized interval on one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (`"measure"`, `"compile: compress"`, ...).
    pub name: String,
    /// Category (`"build"`, `"workload"`, `"phase"`, `"report"`), used
    /// by trace viewers for filtering and coloring.
    pub cat: &'static str,
    /// Lane (Chrome `tid`) the span ran on.
    pub lane: u32,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Simulator events retired inside the span (0 where meaningless).
    pub events: u64,
}

/// Token for a span opened with [`SpanLane::begin`] and not yet closed.
#[derive(Debug, Clone, Copy)]
#[must_use = "open spans must be closed with SpanLane::end"]
pub struct OpenSpan {
    start_ns: u64,
    depth: u32,
}

/// A per-thread span collector. All lanes of one trace share the
/// tracer's epoch, so their timestamps are directly comparable.
///
/// # Examples
///
/// ```
/// use instrep_core::{SpanLane, SpanTracer};
///
/// let mut tracer = SpanTracer::new();
/// let mut lane = SpanLane::new(0, tracer.epoch());
/// let outer = lane.begin();
/// let inner = lane.begin();
/// lane.end(inner, "inner", "phase", 10);
/// lane.end(outer, "outer", "workload", 0);
/// tracer.extend(lane.into_spans());
/// assert!(tracer.to_json().contains("\"kind\": \"trace\""));
/// ```
#[derive(Debug)]
pub struct SpanLane {
    lane: u32,
    epoch: Instant,
    depth: u32,
    spans: Vec<Span>,
}

impl SpanLane {
    /// Creates a lane with the given id, sharing `epoch` (from
    /// [`SpanTracer::epoch`]) with every other lane of the trace.
    pub fn new(lane: u32, epoch: Instant) -> SpanLane {
        SpanLane { lane, epoch, depth: 0, spans: Vec::new() }
    }

    /// This lane's id (the Chrome `tid`).
    pub fn lane_id(&self) -> u32 {
        self.lane
    }

    /// Opens a span at the current instant.
    pub fn begin(&mut self) -> OpenSpan {
        let open = OpenSpan { start_ns: elapsed_ns(self.epoch), depth: self.depth };
        self.depth += 1;
        open
    }

    /// Closes `open`, recording a completed span. Spans must close in
    /// LIFO order — that discipline is what makes every lane's spans
    /// strictly nested.
    ///
    /// # Panics
    ///
    /// Panics if `open` is not the innermost open span of this lane.
    pub fn end(&mut self, open: OpenSpan, name: impl Into<String>, cat: &'static str, events: u64) {
        assert_eq!(self.depth, open.depth + 1, "spans must close in LIFO order");
        self.depth = open.depth;
        let now = elapsed_ns(self.epoch).max(open.start_ns);
        self.spans.push(Span {
            name: name.into(),
            cat,
            lane: self.lane,
            start_ns: open.start_ns,
            dur_ns: now - open.start_ns,
            events,
        });
    }

    /// Completed spans, in close order (children before parents).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the lane, returning its completed spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// Collects spans from every lane of one traced invocation and renders
/// the Chrome trace-event document.
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    lane_names: Vec<(u32, String)>,
    spans: Vec<Span>,
}

impl Default for SpanTracer {
    fn default() -> SpanTracer {
        SpanTracer::new()
    }
}

impl SpanTracer {
    /// Creates a tracer; its creation instant is the trace's epoch
    /// (timestamp 0).
    pub fn new() -> SpanTracer {
        SpanTracer { epoch: Instant::now(), lane_names: Vec::new(), spans: Vec::new() }
    }

    /// The shared epoch; pass to [`SpanLane::new`] for every lane.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Assigns a display name to a lane (Chrome `thread_name`
    /// metadata). Re-registering a lane keeps the first name.
    pub fn name_lane(&mut self, lane: u32, name: &str) {
        if !self.lane_names.iter().any(|(l, _)| *l == lane) {
            self.lane_names.push((lane, name.to_string()));
        }
    }

    /// Merges a finished lane's spans into the trace.
    pub fn extend(&mut self, spans: Vec<Span>) {
        self.spans.extend(spans);
    }

    /// All merged spans, in the order they were absorbed.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Renders the versioned Chrome trace-event JSON document: one
    /// complete (`"ph": "X"`) event per span, timestamps in fractional
    /// microseconds since the epoch, plus thread-name metadata events.
    /// Key order is fixed; values are deterministic up to the clock.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.spans.len() * 128);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {TRACE_SCHEMA_VERSION},\n"));
        s.push_str("  \"kind\": \"trace\",\n");
        s.push_str("  \"displayTimeUnit\": \"ms\",\n");
        s.push_str("  \"traceEvents\": [\n");
        let mut events: Vec<String> = Vec::with_capacity(self.lane_names.len() + self.spans.len());
        events.push(
            "    {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"instrep\"}}"
                .to_string(),
        );
        for (lane, name) in &self.lane_names {
            events.push(format!(
                "    {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {lane}, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(name)
            ));
        }
        for sp in &self.spans {
            events.push(format!(
                "    {{\"ph\": \"X\", \"name\": {}, \"cat\": {}, \"pid\": 1, \"tid\": {}, \
                 \"ts\": {}, \"dur\": {}, \"args\": {{\"events\": {}}}}}",
                json_string(&sp.name),
                json_string(sp.cat),
                sp.lane,
                micros(sp.start_ns),
                micros(sp.dur_ns),
                sp.events,
            ));
        }
        s.push_str(&events.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Nanoseconds since `epoch`, saturating.
fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Renders nanoseconds as fractional microseconds (Chrome's `ts` unit)
/// with exact nanosecond precision.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_lifo() {
        let tracer = SpanTracer::new();
        let mut lane = SpanLane::new(3, tracer.epoch());
        let outer = lane.begin();
        let inner = lane.begin();
        lane.end(inner, "inner", "phase", 7);
        lane.end(outer, "outer", "workload", 0);
        let spans = lane.into_spans();
        assert_eq!(spans.len(), 2);
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.lane, 3);
        // Strict nesting: the inner span lies within the outer one.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(inner.events, 7);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn non_lifo_close_panics() {
        let tracer = SpanTracer::new();
        let mut lane = SpanLane::new(0, tracer.epoch());
        let outer = lane.begin();
        let _inner = lane.begin();
        lane.end(outer, "outer", "phase", 0); // inner still open
    }

    #[test]
    fn json_document_shape() {
        let mut tracer = SpanTracer::new();
        let mut lane = SpanLane::new(1, tracer.epoch());
        let sp = lane.begin();
        lane.end(sp, "measure", "phase", 42);
        tracer.extend(lane.into_spans());
        tracer.name_lane(1, "worker-0");
        tracer.name_lane(1, "ignored-duplicate");
        let json = tracer.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"kind\": \"trace\""));
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"measure\""));
        assert!(json.contains("\"name\": \"worker-0\""));
        assert!(!json.contains("ignored-duplicate"));
        assert!(json.contains("\"args\": {\"events\": 42}"));
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
