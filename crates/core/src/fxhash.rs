//! A fast, non-cryptographic hasher for the per-instruction hot paths.
//!
//! Every dynamic instruction performs at least one hash-map probe in the
//! tracker (operand-tuple lookup), plus more in the predictors and the
//! source analyses. `std`'s default SipHash-1-3 is DoS-resistant but
//! costs tens of cycles per probe; the keys here are small fixed-width
//! integers produced by a simulator, not attacker-controlled input, so a
//! multiply-xor hash in the style of rustc's FxHash is both sufficient
//! and several times faster.
//!
//! The algorithm is the classic Fx step: for each machine word `w` of
//! input, `state = (state.rotate_left(5) ^ w) * K` with a fixed odd
//! constant `K` (the golden-ratio multiplier). Determinism is part of
//! the contract — unlike `RandomState` there is no per-process seed, so
//! iteration-order-dependent results are reproducible across runs and
//! threads (the parallel pipeline relies on per-thread determinism).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio multiplier (2^64 / φ, forced odd).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// The Fx hasher state. Use through [`FxHashMap`]/[`FxHashSet`] or
/// [`FxBuildHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte keeps "ab" + "" distinct from
            // "a" + "b" across write boundaries.
            tail[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; stateless and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (0x1234_5678u32, 0x9abc_def0u32, 7u32);
        assert_eq!(hash_of(&key), hash_of(&key));
        assert_eq!(FxBuildHasher::default().hash_one(key), FxBuildHasher::default().hash_one(key),);
    }

    #[test]
    fn distinguishes_small_tuples() {
        // The tracker's InstanceKey shape: nearby values must spread.
        let mut seen = FxHashSet::default();
        for a in 0..16u32 {
            for b in 0..16u32 {
                for c in 0..4u32 {
                    seen.insert(hash_of(&(a, b, c)));
                }
            }
        }
        assert_eq!(seen.len(), 16 * 16 * 4, "no collisions on a tiny dense domain");
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the low bits for bucket selection; sequential
        // u32 keys (static-instruction indices) must not cluster.
        let mut buckets = [0u32; 64];
        for i in 0..4096u32 {
            buckets[(hash_of(&i) & 63) as usize] += 1;
        }
        let (min, max) = (buckets.iter().min().unwrap(), buckets.iter().max().unwrap());
        assert!(*min > 16 && *max < 256, "bucket spread {min}..{max} too skewed");
    }

    #[test]
    fn byte_stream_boundaries_matter() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"b");
        assert_ne!(a.finish(), b.finish(), "split writes must not alias");
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<(u32, u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 0xff, i % 7), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(500, 500 ^ 0xff, 500 % 7)], 500);
    }
}
