#![warn(missing_docs)]
//! Instruction-repetition analyses — the reproduction of Sodani & Sohi,
//! *An Empirical Analysis of Instruction Repetition* (ASPLOS 1998).
//!
//! The crate consumes the event stream of the [`instrep_sim`] functional
//! simulator and produces every measurement the paper reports:
//!
//! * [`RepetitionTracker`] — the core definition: a dynamic instruction is
//!   *repeated* when an earlier instance of the same static instruction
//!   had the same inputs and outputs (Tables 1–2, Figures 1–4).
//! * [`GlobalAnalysis`] — dataflow tagging by ultimate value source:
//!   external input ≻ global init data ≻ program internals ≻ uninit
//!   (Table 3).
//! * [`FunctionAnalysis`] — per-call argument-tuple repetition and
//!   side-effect/implicit-input freedom (Tables 4 and 8, Figure 5).
//! * [`LocalAnalysis`] — within-function categorization: prologue,
//!   epilogue, global address calculation, SP arithmetic, returns, and
//!   the argument/return-value/global/heap/internal source slices
//!   (Tables 5–7 and 9, Figure 6).
//! * [`ReuseBuffer`] — the 8K-entry 4-way reuse buffer (Table 10).
//! * [`Session`] — the one entry point: a builder over the one-pass
//!   pipeline wiring all of the above (the paper's skip-then-measure
//!   methodology), with every probe and the analysis cache attached
//!   through builder methods. The pre-`Session` `analyze*` family is
//!   gone; `scripts/ci.sh` greps to keep it from reappearing.
//! * [`AnalysisTier`] — which observer implementation the pipeline
//!   runs: the fused per-event hot row (default) or the seven
//!   free-standing observers kept as its differential oracle. Both
//!   tiers produce byte-identical results.
//! * [`cache`] — content-addressed on-disk memoization of whole-workload
//!   results (`instrep-repro --cache-dir`): a hit skips simulation
//!   entirely and still renders byte-identical tables.
//! * [`report`] — text renderers matching the paper's table layouts.
//! * [`metrics`] — pull-based observability: phase timers, throughput,
//!   occupancy gauges, and the versioned JSON documents behind
//!   `instrep-repro --metrics-out` and the `BENCH_*.json` trajectory.
//! * [`telemetry`] — live observability: a shared registry of named
//!   atomic counters/gauges/latency histograms updated from the hot
//!   paths with relaxed ordering, a wall-clock heartbeat sampler
//!   streaming JSONL (`instrep-repro --heartbeat-out/--heartbeat-ms`),
//!   Prometheus-style text exposition (`--telemetry-out`), and a live
//!   TTY progress line (`--progress`).
//! * [`service`] — the typed wire contract of the `instrep-serve`
//!   analysis daemon: schema-versioned `Request`/`Response` structs
//!   with a canonical newline-delimited JSON encoding shared by the
//!   daemon, the `instrep_client` example, and the stress tests.
//! * [`trace_span`] — explicit span tracer exporting Chrome trace-event
//!   JSON (`instrep-repro --trace-out`): one lane per pipeline worker
//!   thread, one span per phase, Perfetto-loadable.
//! * [`interval`] — windowed repetition time series
//!   (`instrep-repro --interval/--interval-out`): per-window repetition
//!   fraction, reuse hit rate, tracker occupancy, and unique-instance
//!   growth as JSONL.
//! * [`profile`] — source-level repetition profiler
//!   (`instrep-repro --profile-out/--profile-folded/--annotate`):
//!   per-static-instruction executed/repeated attribution joined with
//!   function, MiniC source line (`.loc` provenance), and opcode class;
//!   exports versioned JSON, flamegraph collapsed stacks, and an
//!   annotated source view.
//! * [`loops`] — dynamic loop-nest repetition attribution
//!   (`instrep-repro --loops-out/--loops-folded`): online loop
//!   detection from executed back edges, per-loop trip/depth counters,
//!   and exec/repeated attribution per (loop, depth, class), with a
//!   top-k redundancy summary per workload.
//!
//! # Examples
//!
//! ```
//! use instrep_core::{AnalysisConfig, Session};
//!
//! let image = instrep_minicc::build(r#"
//!     int main() {
//!         int i; int s = 0;
//!         for (i = 0; i < 1000; i++) s += i & 7;
//!         return s & 0xff;
//!     }
//! "#)?;
//! let report = Session::new(AnalysisConfig::default()).run_one(&image, Vec::new())?.report;
//! println!("repetition rate: {:.1}%", report.repetition_rate() * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
mod classes;
mod coverage;
pub mod export;
mod function;
mod fused;
pub mod fxhash;
mod global;
pub mod interval;
mod local;
pub mod loops;
pub mod metrics;
mod pipeline;
mod predict;
pub mod profile;
pub mod report;
mod reuse;
pub mod service;
mod session;
mod shadow;
pub mod telemetry;
pub mod trace_span;
mod tracker;

pub use cache::{AnalysisCache, CacheKey, CACHE_SCHEMA_VERSION, ENTRY_PAYLOAD_OFFSET};
pub use classes::{ClassAnalysis, ClassCounts, InsnClass};
pub use coverage::Coverage;
pub use function::{FuncStats, FunctionAnalysis};
pub use fused::{AnalysisTier, SplitObservers, OBSERVER_NAMES};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use global::{GlobalAnalysis, GlobalCounts, GlobalTag};
pub use instrep_sim::InterpTier;
pub use interval::{IntervalSampler, IntervalWindow, INTERVAL_SCHEMA_VERSION};
pub use local::{LocalAnalysis, LocalCat, LocalCounts};
pub use loops::{
    LoopNestProfile, LoopPathStats, LoopProfiler, LoopRecord, LoopsReport, LOOPS_SCHEMA_VERSION,
};
pub use metrics::{
    BenchSummary, MetricsReport, PhaseMetrics, WorkloadMetrics, METRICS_SCHEMA_VERSION,
};
pub use pipeline::{
    default_parallelism, steady_state_check, AnalysisConfig, AnalysisJob, InstrumentedReport,
    Probes, WorkloadReport,
};
pub use predict::{PredictStats, StrideStats, ValuePredictors};
pub use profile::{
    annotate, ClassRollup, FuncRollup, InstructionProfile, ProfileReport, SiteProfile,
    PROFILE_SCHEMA_VERSION,
};
pub use reuse::{ReuseBuffer, ReuseConfig, ReuseStats};
pub use session::{CacheOutcome, Session};
pub use telemetry::{
    HeartbeatConfig, HeartbeatSampler, LanePhase, PipelineTelemetry, TelemetryRegistry,
    TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION,
};
pub use trace_span::{OpenSpan, Span, SpanLane, SpanTracer, TRACE_SCHEMA_VERSION};
pub use tracker::{RepetitionTracker, StaticStats, TrackerConfig};
