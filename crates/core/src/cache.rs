//! Content-addressed on-disk cache of whole-workload analysis results.
//!
//! The paper's subject is exploiting repetition, and the driver's own
//! work repeats wholesale: re-running `instrep-repro` recomputes every
//! workload's analysis from scratch even when nothing changed. This
//! module memoizes the unit that matters — one `(image, input, config)`
//! triple's [`WorkloadReport`] — under a key derived from the *content*
//! of those inputs, so a warm run skips simulation entirely and still
//! prints byte-identical tables.
//!
//! # Key derivation
//!
//! [`CacheKey::derive`] hashes, in order: [`CACHE_SCHEMA_VERSION`],
//! every image field the analyses consume (text words, line table, data
//! bytes, initializer ranges, entry point, and function metadata — the
//! symbol table is deliberately excluded: no analysis reads it), the
//! raw input stream, and every [`AnalysisConfig`] field. Two
//! independently salted [`FxHasher`] passes produce a 128-bit key, which
//! names the entry file (`<32 hex digits>.bin`). Any change to what a
//! run would compute therefore lands on a different file; bumping
//! [`CACHE_SCHEMA_VERSION`] orphans every old entry at once (they can
//! never be addressed again, and a store over a stale same-named file
//! replaces it).
//!
//! # On-disk entry layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic "IRCACHE\x01"
//! 8       4     CACHE_SCHEMA_VERSION (u32 LE)
//! 12      8     key.hi (u64 LE)
//! 20      8     key.lo (u64 LE)
//! 28      8     payload length (u64 LE)
//! 36      n     payload: the serialized WorkloadReport
//! 36+n    8     FxHash of the payload bytes (u64 LE)
//! ```
//!
//! All integers are little-endian; floats are stored as IEEE-754 bit
//! patterns, so a loaded report is *bit-identical* to the stored one —
//! the property that keeps cached table output byte-identical.
//!
//! # Failure policy
//!
//! [`AnalysisCache::load`] treats **every** surprise — missing file,
//! short read, bad magic, version or key mismatch, checksum failure,
//! undecodable payload, trailing garbage — as a silent miss (`None`),
//! never an error: a damaged cache costs a recomputation, not a failed
//! run. Detecting a *well-formed but wrong* entry (a poisoned cache) is
//! the job of verify mode (`instrep-repro --cache-verify`), which
//! recomputes on every hit and compares.

use std::hash::Hasher;
use std::path::{Path, PathBuf};

use instrep_asm::Image;
use instrep_sim::RunOutcome;

use crate::coverage::Coverage;
use crate::fxhash::FxHasher;
use crate::metrics::PhaseTimer;
use crate::pipeline::{AnalysisConfig, WorkloadReport};
use crate::telemetry::{Counter, Histogram, TelemetryRegistry};

/// Version of the cache entry format *and* of the serialized report
/// payload. Bump whenever [`WorkloadReport`]'s fields, their meaning,
/// or the codec change: the version participates in key derivation, so
/// every pre-bump entry becomes unaddressable (a guaranteed miss)
/// rather than a misdecoded report.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Entry-file magic: "IRCACHE" plus a format byte.
const MAGIC: [u8; 8] = *b"IRCACHE\x01";

/// Salt for the second hash lane of [`CacheKey::derive`] (an arbitrary
/// odd constant; it only needs to differ from the first lane's zero
/// initial state).
const LANE_SALT: u64 = 0x6a09_e667_f3bc_c908;

/// Byte offset of the payload within an entry file (see the module docs
/// for the full layout). Exposed so tests can poison payload bytes
/// surgically.
pub const ENTRY_PAYLOAD_OFFSET: usize = 36;

/// A 128-bit content hash identifying one `(image, input, config)`
/// analysis, at the current schema version.
///
/// # Examples
///
/// ```
/// use instrep_core::{AnalysisConfig, CacheKey};
///
/// let image = instrep_minicc::build("int main() { return 0; }")?;
/// let cfg = AnalysisConfig::default();
/// let a = CacheKey::derive(&image, &[], &cfg);
/// // Same content, same key; different input, different key.
/// assert_eq!(a, CacheKey::derive(&image, &[], &cfg));
/// assert_ne!(a, CacheKey::derive(&image, &[1], &cfg));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// First hash lane (unsalted FxHash).
    pub hi: u64,
    /// Second hash lane (salted FxHash).
    pub lo: u64,
}

impl CacheKey {
    /// Derives the key for one analysis from everything that determines
    /// its result: the image content, the input stream, the analysis
    /// configuration, and [`CACHE_SCHEMA_VERSION`].
    pub fn derive(image: &Image, input: &[u8], cfg: &AnalysisConfig) -> CacheKey {
        let mut hi = FxHasher::default();
        let mut lo = FxHasher::default();
        lo.write_u64(LANE_SALT);
        feed(&mut hi, image, input, cfg);
        feed(&mut lo, image, input, cfg);
        CacheKey { hi: hi.finish(), lo: lo.finish() }
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Feeds one hash lane everything that determines an analysis result.
/// Length prefixes keep adjacent variable-length sections from aliasing.
fn feed<H: Hasher>(h: &mut H, image: &Image, input: &[u8], cfg: &AnalysisConfig) {
    h.write_u32(CACHE_SCHEMA_VERSION);
    h.write_u64(image.text.len() as u64);
    for w in &image.text {
        h.write_u32(*w);
    }
    h.write_u64(image.lines.len() as u64);
    for l in &image.lines {
        h.write_u32(*l);
    }
    h.write_u64(image.data.len() as u64);
    h.write(&image.data);
    h.write_u64(image.init_ranges.len() as u64);
    for r in &image.init_ranges {
        h.write_u32(r.start);
        h.write_u32(r.end);
    }
    h.write_u32(image.entry);
    h.write_u64(image.funcs.len() as u64);
    for fm in &image.funcs {
        h.write_u64(fm.name.len() as u64);
        h.write(fm.name.as_bytes());
        h.write_u32(fm.entry);
        h.write_u32(fm.end);
        h.write_u8(fm.arity);
    }
    h.write_u64(input.len() as u64);
    h.write(input);
    h.write_u64(cfg.tracker.max_instances as u64);
    h.write_u64(cfg.reuse.entries as u64);
    h.write_u64(cfg.reuse.ways as u64);
    h.write_u64(cfg.skip);
    h.write_u64(cfg.window);
    h.write_u64(cfg.top_k as u64);
}

/// A directory of cached [`WorkloadReport`]s, one entry file per
/// [`CacheKey`]. Shared by reference across pipeline worker threads;
/// all methods take `&self`.
///
/// # Examples
///
/// ```
/// use instrep_core::{AnalysisCache, AnalysisConfig, CacheKey, Session};
///
/// let dir = std::env::temp_dir().join(format!("instrep-cache-doc-{}", std::process::id()));
/// let cache = AnalysisCache::open(&dir)?;
/// let image = instrep_minicc::build(
///     "int main() { int i; int s = 0; for (i = 0; i < 50; i++) s += i & 3; return s; }",
/// )?;
/// let cfg = AnalysisConfig::default();
///
/// let key = CacheKey::derive(&image, &[], &cfg);
/// assert!(cache.load(&key).is_none(), "cold cache misses");
/// let report = Session::new(cfg).run_one(&image, Vec::new())?.report;
/// cache.store(&key, &report)?;
/// let warm = cache.load(&key).expect("stored entry loads");
/// assert_eq!(format!("{report:?}"), format!("{warm:?}"));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// Stale temp files removed by [`AnalysisCache::open`]'s sweep.
    tmp_swept: u64,
    telemetry: Option<CacheTelemetry>,
}

/// Live telemetry handles the cache updates on its hot paths (see
/// [`AnalysisCache::attach_telemetry`]).
#[derive(Debug, Clone)]
struct CacheTelemetry {
    hit: Counter,
    miss: Counter,
    corrupt_miss: Counter,
    store: Counter,
    lookup_ns: Histogram,
    write_ns: Histogram,
}

impl AnalysisCache {
    /// Opens (creating if needed) a cache rooted at `dir`, sweeping any
    /// stale `.tmp-*` files an interrupted temp+rename
    /// [`store`](AnalysisCache::store) left behind. (Temp names embed
    /// the writer's pid, so a *live* concurrent writer's temp file can
    /// only be swept in the unlikely window between its write and
    /// rename — which costs that writer one failed rename and a
    /// recomputation, never a corrupt entry.)
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created. Sweep
    /// failures are ignored — a leftover temp file is unreferenced
    /// garbage, not a correctness hazard.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<AnalysisCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut tmp_swept = 0;
        if let Ok(rd) = std::fs::read_dir(&dir) {
            for entry in rd.filter_map(Result::ok) {
                let name = entry.file_name();
                let is_tmp = name.to_str().is_some_and(|n| n.starts_with(".tmp-"));
                if is_tmp && std::fs::remove_file(entry.path()).is_ok() {
                    tmp_swept += 1;
                }
            }
        }
        Ok(AnalysisCache { dir, tmp_swept, telemetry: None })
    }

    /// Stale temp files [`AnalysisCache::open`]'s sweep removed.
    pub fn tmp_swept(&self) -> u64 {
        self.tmp_swept
    }

    /// Installs live telemetry: hit/miss/corrupt-miss/store counters
    /// and lookup/write latency histograms, updated on every
    /// [`load`](AnalysisCache::load)/[`store`](AnalysisCache::store),
    /// plus a one-time `cache_tmp_swept` credit for the open-time
    /// sweep. Without this call the cache touches no atomics.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        registry.counter("cache_tmp_swept").add(self.tmp_swept);
        self.telemetry = Some(CacheTelemetry {
            hit: registry.counter("cache_hit"),
            miss: registry.counter("cache_miss"),
            corrupt_miss: registry.counter("cache_corrupt_miss"),
            store: registry.counter("cache_store"),
            lookup_ns: registry.histogram("cache_lookup_ns"),
            write_ns: registry.histogram("cache_write_ns"),
        });
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives at (whether or not it exists).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.bin"))
    }

    /// Loads the report cached under `key`, or `None` on any kind of
    /// miss — absent, truncated, corrupt, or version-mismatched entries
    /// all degrade to a silent recomputation (see the module docs).
    pub fn load(&self, key: &CacheKey) -> Option<WorkloadReport> {
        let timer = self.telemetry.as_ref().map(|_| PhaseTimer::start());
        let report = match std::fs::read(self.entry_path(key)) {
            Err(_) => {
                // Absent (or unreadable) entry: a plain miss.
                if let Some(t) = &self.telemetry {
                    t.miss.inc();
                }
                None
            }
            Ok(bytes) => {
                let report = parse_entry(&bytes, key);
                if let Some(t) = &self.telemetry {
                    // The file existed, so a parse failure means it was
                    // damaged or foreign — a corrupt miss, worth its own
                    // counter (it should stay 0 on a healthy cache).
                    if report.is_some() {
                        t.hit.inc();
                    } else {
                        t.corrupt_miss.inc();
                    }
                }
                report
            }
        };
        if let (Some(t), Some(timer)) = (&self.telemetry, timer) {
            t.lookup_ns.record(timer.elapsed_ns());
        }
        report
    }

    /// Stores `report` under `key`, replacing any existing entry. The
    /// write is atomic (temp file + rename), so a concurrent reader
    /// sees either the old complete entry or the new one, never a torn
    /// write.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers that treat the cache
    /// as best-effort (the pipeline does) may ignore it.
    pub fn store(&self, key: &CacheKey, report: &WorkloadReport) -> std::io::Result<()> {
        let timer = self.telemetry.as_ref().map(|_| PhaseTimer::start());
        let bytes = entry_bytes(key, &encode_report(report));
        let tmp = self.dir.join(format!(".tmp-{}-{:016x}", std::process::id(), key.lo));
        std::fs::write(&tmp, &bytes)?;
        let result = std::fs::rename(&tmp, self.entry_path(key));
        if let (Some(t), Some(timer)) = (&self.telemetry, timer) {
            t.write_ns.record(timer.elapsed_ns());
            if result.is_ok() {
                t.store.inc();
            }
        }
        result
    }

    /// Number of entry files currently in the cache directory.
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.dir).map_or(0, |rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
                .count()
        })
    }
}

/// FxHash of a byte string — the payload checksum.
fn fxhash64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Assembles a complete entry file image (header + payload + checksum).
fn entry_bytes(key: &CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(ENTRY_PAYLOAD_OFFSET + payload.len() + 8);
    b.extend_from_slice(&MAGIC);
    b.extend_from_slice(&CACHE_SCHEMA_VERSION.to_le_bytes());
    b.extend_from_slice(&key.hi.to_le_bytes());
    b.extend_from_slice(&key.lo.to_le_bytes());
    b.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    b.extend_from_slice(payload);
    b.extend_from_slice(&fxhash64(payload).to_le_bytes());
    b
}

/// Validates an entry file image against `key` and decodes its payload.
/// Every check failure is a miss (`None`).
fn parse_entry(bytes: &[u8], key: &CacheKey) -> Option<WorkloadReport> {
    let mut d = Dec { b: bytes };
    if d.take(8)? != MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != key.hi || d.u64()? != key.lo {
        return None;
    }
    let len = usize::try_from(d.u64()?).ok()?;
    let payload = d.take(len)?;
    let checksum = d.u64()?;
    if !d.finished() || checksum != fxhash64(payload) {
        return None;
    }
    decode_report(payload)
}

// --- WorkloadReport codec ---------------------------------------------
//
// A hand-rolled little-endian binary codec (the workspace is hermetic:
// no serde). Encoding is canonical — field order is fixed and floats
// are bit patterns — so two reports are equal iff their encodings are,
// which is what verify mode compares.

/// Serializes a report to the canonical payload bytes. Also used by
/// verify mode as a total equality check over all report fields.
pub(crate) fn encode_report(r: &WorkloadReport) -> Vec<u8> {
    let mut e = Enc { buf: Vec::with_capacity(4096) };
    match r.outcome {
        RunOutcome::Exited(code) => {
            e.u8(0);
            e.u32(code);
        }
        RunOutcome::MaxedOut => e.u8(1),
    }
    e.u64(r.dynamic_total);
    e.u64(r.dynamic_repeated);
    e.u64(r.static_total as u64);
    e.u64(r.static_executed as u64);
    e.u64(r.static_repeated as u64);
    e.u64(r.unique_repeatable);
    e.f64(r.avg_repeats);
    e.u64s(r.static_coverage.weights());
    for v in &r.instance_histogram {
        e.f64(*v);
    }
    e.u64s(r.instance_coverage.weights());
    for v in r.global.overall.iter().chain(&r.global.repeated) {
        e.u64(*v);
    }
    e.u64(r.funcs_called as u64);
    e.u64(r.dynamic_calls);
    e.f64(r.all_arg_rate);
    e.f64(r.no_arg_rate);
    e.f64(r.pure_rate);
    e.f64(r.pure_all_arg_rate);
    e.f64s(&r.argset_coverage);
    for v in r.local.overall.iter().chain(&r.local.repeated) {
        e.u64(*v);
    }
    e.u64(r.prologue_top.len() as u64);
    for (name, size, repeated) in &r.prologue_top {
        e.str(name);
        e.u32(*size);
        e.u64(*repeated);
    }
    e.f64(r.prologue_coverage);
    e.f64s(&r.load_value_coverage);
    for v in
        [r.reuse.total, r.reuse.hits, r.reuse.repeated_hits, r.reuse.repeated_total, r.reuse.stale]
    {
        e.u64(v);
    }
    for v in r.classes.overall.iter().chain(&r.classes.repeated) {
        e.u64(*v);
    }
    for v in [r.predict.predictable, r.predict.correct, r.predict.correct_and_repeated] {
        e.u64(v);
    }
    for v in [r.stride.predictable, r.stride.correct] {
        e.u64(v);
    }
    e.buf
}

/// Decodes a payload produced by [`encode_report`]. Any shortfall,
/// overrun, or malformed field yields `None`.
pub(crate) fn decode_report(payload: &[u8]) -> Option<WorkloadReport> {
    let mut d = Dec { b: payload };
    let outcome = match d.u8()? {
        0 => RunOutcome::Exited(d.u32()?),
        1 => RunOutcome::MaxedOut,
        _ => return None,
    };
    let dynamic_total = d.u64()?;
    let dynamic_repeated = d.u64()?;
    let static_total = usize::try_from(d.u64()?).ok()?;
    let static_executed = usize::try_from(d.u64()?).ok()?;
    let static_repeated = usize::try_from(d.u64()?).ok()?;
    let unique_repeatable = d.u64()?;
    let avg_repeats = d.f64()?;
    let static_coverage = Coverage::new(d.u64s()?);
    let mut instance_histogram = [0.0f64; 5];
    for slot in &mut instance_histogram {
        *slot = d.f64()?;
    }
    let instance_coverage = Coverage::new(d.u64s()?);
    let mut global = crate::GlobalCounts::default();
    for slot in global.overall.iter_mut().chain(&mut global.repeated) {
        *slot = d.u64()?;
    }
    let funcs_called = usize::try_from(d.u64()?).ok()?;
    let dynamic_calls = d.u64()?;
    let all_arg_rate = d.f64()?;
    let no_arg_rate = d.f64()?;
    let pure_rate = d.f64()?;
    let pure_all_arg_rate = d.f64()?;
    let argset_coverage = d.f64s()?;
    let mut local = crate::LocalCounts::default();
    for slot in local.overall.iter_mut().chain(&mut local.repeated) {
        *slot = d.u64()?;
    }
    let n = d.len(20)?; // minimum encoded (name, size, repeated) size
    let mut prologue_top = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let size = d.u32()?;
        let repeated = d.u64()?;
        prologue_top.push((name, size, repeated));
    }
    let prologue_coverage = d.f64()?;
    let load_value_coverage = d.f64s()?;
    let reuse = crate::ReuseStats {
        total: d.u64()?,
        hits: d.u64()?,
        repeated_hits: d.u64()?,
        repeated_total: d.u64()?,
        stale: d.u64()?,
    };
    let mut classes = crate::ClassCounts::default();
    for slot in classes.overall.iter_mut().chain(&mut classes.repeated) {
        *slot = d.u64()?;
    }
    let predict = crate::PredictStats {
        predictable: d.u64()?,
        correct: d.u64()?,
        correct_and_repeated: d.u64()?,
    };
    let stride = crate::StrideStats { predictable: d.u64()?, correct: d.u64()? };
    if !d.finished() {
        return None; // trailing garbage: not an entry we wrote
    }
    Some(WorkloadReport {
        outcome,
        dynamic_total,
        dynamic_repeated,
        static_total,
        static_executed,
        static_repeated,
        unique_repeatable,
        avg_repeats,
        static_coverage,
        instance_histogram,
        instance_coverage,
        global,
        funcs_called,
        dynamic_calls,
        all_arg_rate,
        no_arg_rate,
        pure_rate,
        pure_all_arg_rate,
        argset_coverage,
        local,
        prologue_top,
        prologue_coverage,
        load_value_coverage,
        reuse,
        classes,
        predict,
        stride,
    })
}

/// Canonical little-endian encoder.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for v in vs {
            self.u64(*v);
        }
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for v in vs {
            self.f64(*v);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
/// Every read returns `None` past the end — garbage input can never
/// panic or over-allocate.
struct Dec<'a> {
    b: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// A length prefix for elements of at least `elem_size` bytes,
    /// rejected up front if the remaining input could not possibly hold
    /// that many (so corrupt lengths cannot trigger huge allocations).
    fn len(&mut self, elem_size: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        if n.checked_mul(elem_size)? > self.b.len() {
            return None;
        }
        Some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn u64s(&mut self) -> Option<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn f64s(&mut self) -> Option<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn finished(&self) -> bool {
        self.b.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_probed;
    use crate::Probes;
    use instrep_minicc::build;
    use instrep_sim::InterpTier;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("instrep-cache-{tag}-{}", std::process::id()))
    }

    fn sample() -> (Image, AnalysisConfig, WorkloadReport) {
        let image = build(
            r#"
            int sq(int x) { return x * x; }
            int main() {
                int i; int s = 0;
                for (i = 0; i < 200; i++) s += sq(i & 7);
                return s & 0xff;
            }
            "#,
        )
        .unwrap();
        let cfg = AnalysisConfig::default();
        let report = run_probed(
            &image,
            Vec::new(),
            &cfg,
            InterpTier::default(),
            crate::AnalysisTier::default(),
            crate::SplitObservers::all(),
            Probes::none(),
        )
        .unwrap();
        (image, cfg, report)
    }

    #[test]
    fn report_codec_roundtrips_exactly() {
        let (_, _, report) = sample();
        let payload = encode_report(&report);
        let back = decode_report(&payload).expect("payload decodes");
        // Debug covers every field, including f64 bit patterns.
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
        assert_eq!(encode_report(&back), payload, "re-encoding is canonical");
    }

    #[test]
    fn decode_rejects_any_truncation_without_panicking() {
        let (_, _, report) = sample();
        let payload = encode_report(&report);
        for cut in 0..payload.len() {
            assert!(decode_report(&payload[..cut]).is_none(), "cut at {cut} decoded");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_report(&long).is_none());
    }

    #[test]
    fn key_is_content_addressed() {
        let (image, cfg, _) = sample();
        let base = CacheKey::derive(&image, &[], &cfg);
        assert_eq!(base, CacheKey::derive(&image, &[], &cfg), "deterministic");
        assert_ne!(base, CacheKey::derive(&image, &[7], &cfg), "input changes key");
        let mut other_cfg = cfg;
        other_cfg.window = 12345;
        assert_ne!(base, CacheKey::derive(&image, &[], &other_cfg), "config changes key");
        let other_image = build("int main() { return 1; }").unwrap();
        assert_ne!(base, CacheKey::derive(&other_image, &[], &cfg), "image changes key");
    }

    #[test]
    fn store_then_load_hits_and_roundtrips() {
        let dir = tmp_dir("hit");
        let cache = AnalysisCache::open(&dir).unwrap();
        let (image, cfg, report) = sample();
        let key = CacheKey::derive(&image, &[], &cfg);
        assert!(cache.load(&key).is_none(), "cold cache must miss");
        assert_eq!(cache.entries(), 0);
        cache.store(&key, &report).unwrap();
        assert_eq!(cache.entries(), 1);
        let warm = cache.load(&key).expect("warm cache must hit");
        assert_eq!(format!("{report:?}"), format!("{warm:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_truncated_entries_degrade_to_a_miss() {
        let dir = tmp_dir("corrupt");
        let cache = AnalysisCache::open(&dir).unwrap();
        let (image, cfg, report) = sample();
        let key = CacheKey::derive(&image, &[], &cfg);
        cache.store(&key, &report).unwrap();
        let path = cache.entry_path(&key);
        let pristine = std::fs::read(&path).unwrap();

        // Flip one payload byte: the checksum catches it.
        let mut bytes = pristine.clone();
        bytes[ENTRY_PAYLOAD_OFFSET + 2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none(), "corrupt entry must miss");

        // Truncate at several depths: header-short, payload-short,
        // checksum-short.
        for cut in [3, ENTRY_PAYLOAD_OFFSET - 1, ENTRY_PAYLOAD_OFFSET + 5, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(cache.load(&key).is_none(), "truncated entry (cut {cut}) must miss");
        }

        // An empty file and non-entry garbage miss too.
        std::fs::write(&path, b"").unwrap();
        assert!(cache.load(&key).is_none());
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(cache.load(&key).is_none());

        // Storing over the damaged file repairs the entry.
        cache.store(&key, &report).unwrap();
        assert!(cache.load(&key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_bump_evicts_old_entries() {
        let dir = tmp_dir("bump");
        let cache = AnalysisCache::open(&dir).unwrap();
        let (image, cfg, report) = sample();
        let key = CacheKey::derive(&image, &[], &cfg);
        cache.store(&key, &report).unwrap();

        // Simulate an entry written by a *previous* schema version at
        // the same path: bump the stored version field and re-checksum
        // nothing (the version check fires before the checksum).
        let path = cache.entry_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(CACHE_SCHEMA_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none(), "version mismatch must miss");

        // A fresh store evicts (replaces) the stale entry in place.
        cache.store(&key, &report).unwrap();
        assert!(cache.load(&key).is_some(), "store replaces the stale entry");
        assert_eq!(cache.entries(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_stale_tmp_files_and_reports_them() {
        let dir = tmp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // A stale temp file from an interrupted writer, plus a real
        // entry that must survive the sweep.
        let stale = dir.join(".tmp-123-00000000deadbeef");
        std::fs::write(&stale, b"half-written entry").unwrap();
        let keeper = dir.join("0123456789abcdef0123456789abcdef.bin");
        std::fs::write(&keeper, b"entry bytes").unwrap();

        let mut cache = AnalysisCache::open(&dir).unwrap();
        assert!(!stale.exists(), "stale temp file must be swept");
        assert!(keeper.exists(), "entry files must survive the sweep");
        assert_eq!(cache.tmp_swept(), 1);

        // Attaching telemetry credits the sweep to a counter.
        let registry = TelemetryRegistry::new();
        cache.attach_telemetry(&registry);
        let swept = registry.counter("cache_tmp_swept").get();
        assert_eq!(swept, 1);

        // A second open finds nothing left to sweep.
        assert_eq!(AnalysisCache::open(&dir).unwrap().tmp_swept(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_classifies_hits_misses_and_corruption() {
        let dir = tmp_dir("telemetry");
        let mut cache = AnalysisCache::open(&dir).unwrap();
        let registry = TelemetryRegistry::new();
        cache.attach_telemetry(&registry);
        let (image, cfg, report) = sample();
        let key = CacheKey::derive(&image, &[], &cfg);

        assert!(cache.load(&key).is_none());
        assert_eq!(registry.counter("cache_miss").get(), 1, "absent entry is a plain miss");
        cache.store(&key, &report).unwrap();
        assert_eq!(registry.counter("cache_store").get(), 1);
        assert!(cache.load(&key).is_some());
        assert_eq!(registry.counter("cache_hit").get(), 1);

        std::fs::write(cache.entry_path(&key), b"garbage").unwrap();
        assert!(cache.load(&key).is_none());
        assert_eq!(registry.counter("cache_corrupt_miss").get(), 1);

        let snap = registry.snapshot();
        let lookup = snap.hists.iter().find(|(n, _)| n == "cache_lookup_ns").unwrap();
        assert_eq!(lookup.1.count, 3, "every load records a lookup latency");
        let write = snap.hists.iter().find(|(n, _)| n == "cache_write_ns").unwrap();
        assert_eq!(write.1.count, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_key_inside_file_misses() {
        let dir = tmp_dir("key");
        let cache = AnalysisCache::open(&dir).unwrap();
        let (image, cfg, report) = sample();
        let key = CacheKey::derive(&image, &[], &cfg);
        // A valid entry for a different key, copied to this key's path
        // (e.g. a mis-rename), must not be trusted.
        let other = CacheKey { hi: key.hi ^ 1, lo: key.lo };
        let bytes = entry_bytes(&other, &encode_report(&report));
        std::fs::write(cache.entry_path(&key), &bytes).unwrap();
        assert!(cache.load(&key).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
