//! Function-level analysis (paper §5.2 and §6; Tables 4 and 8, Figure 5).
//!
//! Tracks, per static function: dynamic call counts, *all-argument* and
//! *no-argument* repetition, the frequency of each argument tuple (for
//! specialization coverage, Figure 5), and whether each dynamic call was
//! free of side effects and implicit inputs (memoizability, Table 8).
//!
//! Side effects are stores to global or heap memory and syscalls;
//! implicit inputs are loads from global or heap memory. Both are
//! attributed to the executing function *and all of its callers on the
//! stack*, matching the paper's treatment of functions as including their
//! callees.

use instrep_asm::Image;
use instrep_isa::abi::Region;
use instrep_sim::{CtrlEffect, Event};

use crate::fxhash::{FxHashMap, FxHashSet};

/// Cap on distinct argument tuples (and per-argument values) tracked per
/// function; beyond this, new tuples are classified non-repeated and not
/// recorded. Mirrors the bounded instance buffering of the tracker.
const MAX_TUPLES: usize = 1 << 16;

/// An argument tuple: up to 8 values, truncated to the callee's arity.
type ArgTuple = Vec<u32>;

/// Per-function statistics.
#[derive(Debug, Clone, Default)]
pub struct FuncStats {
    /// Function name (from image metadata).
    pub name: String,
    /// Declared parameter count.
    pub arity: u8,
    /// Dynamic calls observed.
    pub calls: u64,
    /// Calls whose full argument tuple had been seen before.
    pub all_args_repeated: u64,
    /// Calls where no individual argument value had been seen before.
    pub no_args_repeated: u64,
    /// Calls (including callees) with no side effects or implicit inputs.
    pub pure_calls: u64,
    /// Pure calls that were also all-argument repeated.
    pub pure_all_arg_calls: u64,
    /// Frequency of each argument tuple (capped at [`MAX_TUPLES`]).
    tuples: FxHashMap<ArgTuple, u64>,
    /// Values seen per argument position (capped).
    seen_per_arg: Vec<FxHashSet<u32>>,
}

impl FuncStats {
    /// Fraction of this function's *repeated-tuple* calls covered when
    /// the function is specialized for its `k` most frequent argument
    /// tuples (the per-function ingredient of Figure 5).
    pub fn top_k_tuple_coverage(&self, k: usize) -> (u64, u64) {
        let mut counts: Vec<u64> = self.tuples.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = counts.iter().take(k).map(|c| c.saturating_sub(1)).sum();
        let total: u64 = counts.iter().map(|c| c.saturating_sub(1)).sum();
        (covered, total)
    }

    /// Number of distinct argument tuples observed (capped).
    pub fn distinct_tuples(&self) -> usize {
        self.tuples.len()
    }
}

/// A call-stack frame tracked by the analysis.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Index into `funcs`, or `None` for calls to unknown targets.
    func: Option<usize>,
    /// Whether this call's argument tuple was repeated (set at call time,
    /// consumed at return for Table 8 column 3).
    all_arg: bool,
    side_effect: bool,
    implicit_input: bool,
}

/// Function-level argument-repetition and purity analysis.
#[derive(Debug)]
pub struct FunctionAnalysis {
    /// Function entry pc -> index into `funcs`.
    by_entry: FxHashMap<u32, usize>,
    funcs: Vec<FuncStats>,
    stack: Vec<Frame>,
    total_calls: u64,
}

impl FunctionAnalysis {
    /// Creates the analysis from an image's function metadata.
    pub fn new(image: &Image) -> FunctionAnalysis {
        let mut by_entry = FxHashMap::default();
        let mut funcs = Vec::with_capacity(image.funcs.len());
        for meta in &image.funcs {
            by_entry.insert(meta.entry, funcs.len());
            funcs.push(FuncStats {
                name: meta.name.clone(),
                arity: meta.arity,
                seen_per_arg: vec![FxHashSet::default(); meta.arity as usize],
                ..FuncStats::default()
            });
        }
        FunctionAnalysis {
            by_entry,
            funcs,
            // Synthetic frame for the startup code we entered without a
            // call event.
            stack: vec![Frame {
                func: None,
                all_arg: false,
                side_effect: false,
                implicit_input: false,
            }],
            total_calls: 0,
        }
    }

    /// Observes one retired instruction. Call-stack state always updates;
    /// statistics only while `counting`. `region` classifies the address
    /// of the instruction's memory access, if any.
    pub fn observe(&mut self, ev: &Event, counting: bool, region: Option<Region>) {
        // Fast path: most instructions touch neither memory nor control.
        if ev.mem.is_none() && ev.ctrl.is_none() {
            return;
        }
        // Purity flags for the current frame.
        if let Some(mem) = &ev.mem {
            if matches!(region, Some(Region::Data | Region::Heap)) {
                if let Some(top) = self.stack.last_mut() {
                    if mem.is_load {
                        top.implicit_input = true;
                    } else {
                        top.side_effect = true;
                    }
                }
            }
        }
        match ev.ctrl {
            Some(CtrlEffect::Syscall { .. }) | Some(CtrlEffect::Exit { .. }) => {
                if let Some(top) = self.stack.last_mut() {
                    top.side_effect = true;
                }
            }
            Some(CtrlEffect::Call { target, args, .. }) => {
                let func = self.by_entry.get(&target).copied();
                let mut all_arg = false;
                if let Some(fi) = func {
                    if counting {
                        all_arg = self.record_call(fi, &args);
                    }
                }
                self.stack.push(Frame { func, all_arg, side_effect: false, implicit_input: false });
            }
            Some(CtrlEffect::Return { .. }) => {
                if let Some(frame) = self.stack.pop() {
                    if counting {
                        if let Some(fi) = frame.func {
                            if !frame.side_effect && !frame.implicit_input {
                                self.funcs[fi].pure_calls += 1;
                                if frame.all_arg {
                                    self.funcs[fi].pure_all_arg_calls += 1;
                                }
                            }
                        }
                    }
                    // A callee's effects are its caller's effects too.
                    if let Some(parent) = self.stack.last_mut() {
                        parent.side_effect |= frame.side_effect;
                        parent.implicit_input |= frame.implicit_input;
                    }
                }
            }
            _ => {}
        }
    }

    /// Records a call's argument statistics; returns whether the full
    /// argument tuple was repeated.
    fn record_call(&mut self, fi: usize, args: &[u32; 8]) -> bool {
        self.total_calls += 1;
        let f = &mut self.funcs[fi];
        f.calls += 1;
        let arity = f.arity as usize;
        let tuple = &args[..arity];

        // All-argument repetition. The map is queried through a borrowed
        // slice so the repeated-call path allocates nothing.
        let mut all_repeated = false;
        if let Some(c) = f.tuples.get_mut(tuple) {
            *c += 1;
            all_repeated = true;
        } else if f.tuples.len() < MAX_TUPLES {
            f.tuples.insert(tuple.to_vec(), 1);
        }
        if all_repeated {
            f.all_args_repeated += 1;
        }

        // No-argument repetition: every individual argument value is new.
        // For zero-arity functions only the first call qualifies.
        let mut none_repeated = !all_repeated;
        for (i, &v) in tuple.iter().enumerate() {
            let seen = &mut f.seen_per_arg[i];
            if seen.contains(&v) {
                none_repeated = false;
            } else if seen.len() < MAX_TUPLES {
                seen.insert(v);
            }
        }
        if none_repeated {
            f.no_args_repeated += 1;
        }
        all_repeated
    }

    /// Per-function statistics, in image metadata order.
    pub fn funcs(&self) -> &[FuncStats] {
        &self.funcs
    }

    /// Number of static functions called at least once.
    pub fn static_called(&self) -> usize {
        self.funcs.iter().filter(|f| f.calls > 0).count()
    }

    /// Total dynamic calls to known functions.
    pub fn total_calls(&self) -> u64 {
        self.total_calls
    }

    /// Total distinct argument tuples buffered across all functions
    /// (occupancy gauge for the argument-set tables).
    pub fn distinct_argtuples(&self) -> u64 {
        self.funcs.iter().map(|f| f.distinct_tuples() as u64).sum()
    }

    /// Fraction of dynamic calls with all arguments repeated (Table 4).
    pub fn all_arg_rate(&self) -> f64 {
        ratio(self.funcs.iter().map(|f| f.all_args_repeated).sum(), self.total_calls)
    }

    /// Fraction of dynamic calls with no argument repeated (Table 4).
    pub fn no_arg_rate(&self) -> f64 {
        ratio(self.funcs.iter().map(|f| f.no_args_repeated).sum(), self.total_calls)
    }

    /// Fraction of dynamic calls free of side effects and implicit
    /// inputs (Table 8, column 2).
    pub fn pure_rate(&self) -> f64 {
        ratio(self.funcs.iter().map(|f| f.pure_calls).sum(), self.total_calls)
    }

    /// Fraction of all-argument-repeated calls that were pure (Table 8,
    /// column 3).
    pub fn pure_all_arg_rate(&self) -> f64 {
        let pure: u64 = self.funcs.iter().map(|f| f.pure_all_arg_calls).sum();
        let all: u64 = self.funcs.iter().map(|f| f.all_args_repeated).sum();
        ratio(pure, all)
    }

    /// Aggregate Figure 5 curve: fraction of all-argument repetition
    /// covered by specializing every function for its `k` most frequent
    /// argument tuples, for `k` in `1..=max_k`.
    pub fn top_argset_coverage(&self, max_k: usize) -> Vec<f64> {
        (1..=max_k)
            .map(|k| {
                let mut covered = 0u64;
                let mut total = 0u64;
                for f in &self.funcs {
                    let (c, t) = f.top_k_tuple_coverage(k);
                    covered += c;
                    total += t;
                }
                ratio(covered, total)
            })
            .collect()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_asm::FuncMeta;
    use instrep_isa::abi;
    use instrep_isa::{Insn, MemOp, MemWidth, Reg};
    use instrep_sim::MemEffect;

    fn image_two_funcs() -> Image {
        Image {
            funcs: vec![
                FuncMeta { name: "f".into(), entry: 0x40_0000, end: 0x40_0010, arity: 2 },
                FuncMeta { name: "g".into(), entry: 0x40_0010, end: 0x40_0020, arity: 0 },
            ],
            ..Image::default()
        }
    }

    fn call_event(target: u32, a0: u32, a1: u32) -> Event {
        Event {
            pc: 0x40_0100,
            index: 64,
            insn: Insn::Jump { link: true, target: target >> 2 },
            in1: 0,
            in2: 0,
            out: Some(0x40_0104),
            mem: None,
            ctrl: Some(CtrlEffect::Call {
                target,
                args: [a0, a1, 0, 0, 0, 0, 0, 0],
                sp: abi::STACK_TOP,
                ra: 0x40_0104,
            }),
        }
    }

    fn return_event() -> Event {
        Event {
            pc: 0x40_000c,
            index: 3,
            insn: Insn::Jr { rs: Reg::RA },
            in1: 0x40_0104,
            in2: 0,
            out: None,
            mem: None,
            ctrl: Some(CtrlEffect::Return { target: 0x40_0104, v0: 1 }),
        }
    }

    fn heap_store() -> Event {
        let addr = abi::DATA_BASE + 0x100;
        Event {
            pc: 0x40_0004,
            index: 1,
            insn: Insn::Mem {
                op: MemOp::Store(MemWidth::Word),
                rt: Reg::T0,
                base: Reg::T1,
                off: 0,
            },
            in1: addr,
            in2: 5,
            out: None,
            mem: Some(MemEffect { addr, width: MemWidth::Word, value: 5, is_load: false }),
            ctrl: None,
        }
    }

    #[test]
    fn argument_repetition() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        fa.observe(&call_event(0x40_0000, 1, 2), true, None);
        fa.observe(&return_event(), true, None);
        fa.observe(&call_event(0x40_0000, 1, 2), true, None); // all repeated
        fa.observe(&return_event(), true, None);
        fa.observe(&call_event(0x40_0000, 1, 9), true, None); // partial (a0 seen)
        fa.observe(&return_event(), true, None);
        fa.observe(&call_event(0x40_0000, 7, 8), true, None); // none repeated
        fa.observe(&return_event(), true, None);

        let f = &fa.funcs()[0];
        assert_eq!(f.calls, 4);
        assert_eq!(f.all_args_repeated, 1);
        // First call and the (7,8) call have no repeated arg values.
        assert_eq!(f.no_args_repeated, 2);
        assert_eq!(fa.total_calls(), 4);
        assert!((fa.all_arg_rate() - 0.25).abs() < 1e-9);
        assert!((fa.no_arg_rate() - 0.5).abs() < 1e-9);
        assert_eq!(f.distinct_tuples(), 3);
    }

    #[test]
    fn zero_arity_calls_vacuously_repeat() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        for _ in 0..3 {
            fa.observe(&call_event(0x40_0010, 0, 0), true, None);
            fa.observe(&return_event(), true, None);
        }
        let g = &fa.funcs()[1];
        assert_eq!(g.calls, 3);
        assert_eq!(g.all_args_repeated, 2); // all but the first
        assert_eq!(g.no_args_repeated, 1); // only the first
    }

    #[test]
    fn purity_tracking_includes_callees() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        // f calls g; g stores to the heap; both become impure.
        fa.observe(&call_event(0x40_0000, 1, 2), true, None);
        fa.observe(&call_event(0x40_0010, 0, 0), true, None);
        fa.observe(&heap_store(), true, Some(Region::Heap));
        fa.observe(&return_event(), true, None); // g returns
        fa.observe(&return_event(), true, None); // f returns
        assert_eq!(fa.funcs()[0].pure_calls, 0);
        assert_eq!(fa.funcs()[1].pure_calls, 0);

        // A second call to f that does nothing is pure.
        fa.observe(&call_event(0x40_0000, 1, 2), true, None);
        fa.observe(&return_event(), true, None);
        assert_eq!(fa.funcs()[0].pure_calls, 1);
        assert!(fa.pure_rate() > 0.0);
    }

    #[test]
    fn implicit_input_spoils_purity() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        fa.observe(&call_event(0x40_0000, 1, 2), true, None);
        let mut load = heap_store();
        load.mem = Some(MemEffect {
            addr: abi::DATA_BASE,
            width: MemWidth::Word,
            value: 5,
            is_load: true,
        });
        fa.observe(&load, true, Some(Region::Data));
        fa.observe(&return_event(), true, None);
        assert_eq!(fa.funcs()[0].pure_calls, 0);
    }

    #[test]
    fn stack_access_keeps_purity() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        fa.observe(&call_event(0x40_0000, 1, 2), true, None);
        let mut store = heap_store();
        store.mem = Some(MemEffect {
            addr: abi::STACK_TOP - 8,
            width: MemWidth::Word,
            value: 5,
            is_load: false,
        });
        fa.observe(&store, true, Some(Region::Stack));
        fa.observe(&return_event(), true, None);
        assert_eq!(fa.funcs()[0].pure_calls, 1);
    }

    #[test]
    fn top_argset_coverage_figure5() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        // Tuples: (1,1) x5, (2,2) x3, (3,3) x1.
        for (v, n) in [(1u32, 5), (2, 3), (3, 1)] {
            for _ in 0..n {
                fa.observe(&call_event(0x40_0000, v, v), true, None);
                fa.observe(&return_event(), true, None);
            }
        }
        // Repeated calls: (5-1) + (3-1) + 0 = 6.
        let cov = fa.top_argset_coverage(5);
        assert!((cov[0] - 4.0 / 6.0).abs() < 1e-9);
        assert!((cov[1] - 1.0).abs() < 1e-9);
        assert_eq!(cov.len(), 5);
        assert_eq!(fa.static_called(), 1);
    }

    #[test]
    fn counting_gate_stops_stats_not_stack() {
        let img = image_two_funcs();
        let mut fa = FunctionAnalysis::new(&img);
        fa.observe(&call_event(0x40_0000, 1, 2), false, None);
        assert_eq!(fa.total_calls(), 0);
        // The frame exists: a heap store inside still taints the frame,
        // and the return pops it without counting.
        fa.observe(&heap_store(), false, Some(Region::Heap));
        fa.observe(&return_event(), false, None);
        assert_eq!(fa.funcs()[0].calls, 0);
    }
}
