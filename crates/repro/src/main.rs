//! `instrep-repro`: regenerates every table and figure of Sodani & Sohi,
//! *An Empirical Analysis of Instruction Repetition* (ASPLOS 1998), over
//! the eight SPEC-'95-like workloads.
//!
//! ```text
//! instrep-repro [--scale tiny|small|full] [--seed N] [--only BENCH]
//!               [--jobs N] [--table N]... [--figure N]... [--steady-state]
//!               [--metrics-out PATH] [--bench N] [--trace-out PATH]
//!               [--interval N --interval-out PATH] [--all]
//! ```
//!
//! With no table/figure selection, everything is printed. One simulation
//! pass per workload feeds all tables. Workloads run on `--jobs` threads
//! (default: available parallelism); output is identical for every jobs
//! count because reports merge in fixed workload order.
//!
//! `--metrics-out PATH` additionally writes a versioned JSON metrics
//! document (phase timings, throughput, occupancy gauges, peak RSS — see
//! `DESIGN.md` §9) without changing a byte of the table output. With
//! `--bench N` the analysis repeats N times and PATH receives a
//! median+IQR bench summary instead — the unit of the `BENCH_*.json`
//! performance trajectory (`scripts/bench.sh`).
//!
//! `--trace-out PATH` writes a Chrome trace-event JSON document
//! (Perfetto-loadable) spanning compile, assemble, the analysis phases
//! of every workload (one lane per worker thread), and table rendering.
//! `--interval N --interval-out PATH` samples each workload's
//! measurement every N retired instructions and writes the repetition
//! time series as JSONL. Both are pull-based like `--metrics-out`: the
//! table output stays byte-identical (see `DESIGN.md` §10).
//!
//! The source-level profiler (see `DESIGN.md` §11) attributes every
//! measured instruction to its static PC, owning function, MiniC source
//! line, and opcode class. `--profile-out PATH` writes the versioned
//! JSON document (full per-PC table, per-function/per-class rollups, and
//! the `--top N` hottest repetition sites); `--profile-folded PATH`
//! writes flamegraph-ready collapsed stacks; `--annotate BENCH` prints
//! the benchmark's source annotated with per-line exec/repeat counters
//! after the tables. All three are pull-based too: the tables stay
//! byte-identical, and every output is identical for every `--jobs`
//! count.

use std::process::ExitCode;

use instrep_core::report::{self, Named};
use instrep_core::{
    analyze, analyze_many, analyze_many_instrumented, default_parallelism, interval, metrics,
    profile, steady_state_check, AnalysisConfig, AnalysisJob, InstructionProfile,
    InstrumentedReport, IntervalWindow, MetricsReport, ProbeConfig, ProfileReport, SpanLane,
    SpanTracer, WorkloadReport,
};
use instrep_workloads::{all, Scale, Workload};

struct Options {
    scale: Scale,
    seed: u64,
    only: Option<String>,
    jobs: usize,
    tables: Vec<u32>,
    figures: Vec<u32>,
    steady: bool,
    input_check: bool,
    csv: Option<String>,
    metrics_out: Option<String>,
    bench: Option<u32>,
    trace_out: Option<String>,
    interval: Option<u64>,
    interval_out: Option<String>,
    profile_out: Option<String>,
    profile_folded: Option<String>,
    annotate: Option<String>,
    top: usize,
}

impl Options {
    /// Whether any output needs the per-PC attribution profile.
    fn wants_profile(&self) -> bool {
        self.profile_out.is_some() || self.profile_folded.is_some() || self.annotate.is_some()
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Small,
        seed: 1998,
        only: None,
        jobs: default_parallelism(),
        tables: Vec::new(),
        figures: Vec::new(),
        steady: false,
        input_check: false,
        csv: None,
        metrics_out: None,
        bench: None,
        trace_out: None,
        interval: None,
        interval_out: None,
        profile_out: None,
        profile_folded: None,
        annotate: None,
        top: 10,
    };
    let mut top_given = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--only" => {
                opts.only = Some(args.next().ok_or("--only needs a benchmark name")?);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                opts.jobs = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--table" => {
                let v = args.next().ok_or("--table needs a number")?;
                opts.tables.push(v.parse().map_err(|_| format!("bad table `{v}`"))?);
            }
            "--figure" => {
                let v = args.next().ok_or("--figure needs a number")?;
                opts.figures.push(v.parse().map_err(|_| format!("bad figure `{v}`"))?);
            }
            "--steady-state" => opts.steady = true,
            "--input-check" => opts.input_check = true,
            "--csv" => {
                opts.csv = Some(args.next().ok_or("--csv needs a path prefix")?);
            }
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
            }
            "--bench" => {
                let v = args.next().ok_or("--bench needs a run count")?;
                let n: u32 = v.parse().map_err(|_| format!("bad bench run count `{v}`"))?;
                if n == 0 {
                    return Err("--bench must be at least 1".to_string());
                }
                opts.bench = Some(n);
            }
            "--trace-out" => {
                opts.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--interval" => {
                let v = args.next().ok_or("--interval needs an instruction count")?;
                let n: u64 = v.parse().map_err(|_| format!("bad interval `{v}`"))?;
                if n == 0 {
                    return Err("--interval must be at least 1".to_string());
                }
                opts.interval = Some(n);
            }
            "--interval-out" => {
                opts.interval_out = Some(args.next().ok_or("--interval-out needs a path")?);
            }
            "--profile-out" => {
                opts.profile_out = Some(args.next().ok_or("--profile-out needs a path")?);
            }
            "--profile-folded" => {
                opts.profile_folded = Some(args.next().ok_or("--profile-folded needs a path")?);
            }
            "--annotate" => {
                let name = args.next().ok_or("--annotate needs a benchmark name")?;
                if instrep_workloads::by_name(&name).is_none() {
                    return Err(format!("unknown benchmark `{name}` for --annotate (see --list)"));
                }
                opts.annotate = Some(name);
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a site count")?;
                opts.top = v.parse().map_err(|_| format!("bad top count `{v}`"))?;
                if opts.top == 0 {
                    return Err("--top must be at least 1".to_string());
                }
                top_given = true;
            }
            "--all" => {}
            "--list" => {
                println!("{:<12}{:<16}", "bench", "SPEC analog");
                for wl in all() {
                    println!("{:<12}{:<16}", wl.name, wl.spec_analog);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: instrep-repro [--scale tiny|small|full] [--seed N] \
                     [--only BENCH] [--jobs N] [--table N]... [--figure N]... \
                     [--steady-state] [--input-check] [--csv PREFIX] \
                     [--metrics-out PATH] [--bench N] [--trace-out PATH] \
                     [--interval N --interval-out PATH] [--profile-out PATH] \
                     [--profile-folded PATH] [--annotate BENCH] [--top N] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.bench.is_some() && opts.metrics_out.is_none() {
        return Err("--bench requires --metrics-out (the summary is written there)".to_string());
    }
    if opts.interval.is_some() != opts.interval_out.is_some() {
        return Err("--interval and --interval-out must be given together".to_string());
    }
    if opts.bench.is_some() && (opts.trace_out.is_some() || opts.interval_out.is_some()) {
        return Err("--bench cannot be combined with --trace-out or --interval-out".to_string());
    }
    if opts.bench.is_some() && opts.wants_profile() {
        return Err(
            "--bench cannot be combined with --profile-out, --profile-folded, or --annotate"
                .to_string(),
        );
    }
    if top_given && !opts.wants_profile() {
        return Err("--top requires --profile-out, --profile-folded, or --annotate".to_string());
    }
    Ok(opts)
}

/// Scale label used in metrics documents.
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Analysis windows per scale: (skip, window), mirroring the paper's
/// skip-initialization-then-measure methodology at simulator-feasible
/// sizes.
fn windows(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Tiny => (20_000, 400_000),
        Scale::Small => (200_000, 4_000_000),
        Scale::Full => (1_000_000, 25_000_000),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (skip, window) = windows(opts.scale);
    let cfg = AnalysisConfig { skip, window, ..AnalysisConfig::default() };
    let workloads: Vec<Workload> =
        all().into_iter().filter(|w| opts.only.as_deref().is_none_or(|o| o == w.name)).collect();
    if workloads.is_empty() {
        eprintln!("error: no benchmark matches --only filter");
        return ExitCode::FAILURE;
    }
    if let Some(name) = &opts.annotate {
        if !workloads.iter().any(|w| w.name == name) {
            eprintln!("error: --annotate {name} is excluded by the --only filter");
            return ExitCode::FAILURE;
        }
    }

    let threads = opts.jobs.clamp(1, workloads.len());
    eprintln!(
        "running {} workload(s) at {:?} scale (skip {skip}, window {window}, \
         {threads} thread(s))...",
        workloads.len(),
        opts.scale
    );
    // The tracer (when --trace-out is given) records the driver's own
    // work on lane 0; the pipeline's worker threads get lanes 1..=jobs.
    let mut tracer = opts.trace_out.as_ref().map(|_| SpanTracer::new());
    let mut main_lane = tracer.as_ref().map(|t| SpanLane::new(0, t.epoch()));

    let start = std::time::Instant::now();
    let mut images = Vec::with_capacity(workloads.len());
    let mut build_ns = Vec::with_capacity(workloads.len());
    for wl in &workloads {
        let t = std::time::Instant::now();
        let built = match main_lane.as_mut() {
            None => wl.build(),
            // Traced builds run the same two stages `Workload::build`
            // fuses, each under its own span.
            Some(lane) => {
                let sp = lane.begin();
                let asm = instrep_minicc::compile_to_asm(&wl.full_source());
                lane.end(sp, format!("compile: {}", wl.name), "build", 0);
                asm.and_then(|text| {
                    let sp = lane.begin();
                    let image = instrep_asm::assemble(&text);
                    lane.end(sp, format!("assemble: {}", wl.name), "build", 0);
                    image.map_err(instrep_minicc::BuildError::from)
                })
            }
        };
        match built {
            Ok(i) => {
                build_ns.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                images.push(i);
            }
            Err(e) => {
                eprintln!("error: building {} failed: {e}", wl.name);
                return ExitCode::FAILURE;
            }
        }
    }

    let want_metrics = opts.metrics_out.is_some();
    let probe_cfg = ProbeConfig {
        metrics: want_metrics,
        interval: opts.interval,
        profile: opts.wants_profile(),
    };
    let any_probe =
        want_metrics || opts.interval.is_some() || tracer.is_some() || opts.wants_profile();
    let iterations = opts.bench.unwrap_or(1);
    let mut runs: Vec<MetricsReport> = Vec::new();
    let mut reports: Vec<(String, WorkloadReport)> = Vec::new();
    let mut interval_series: Vec<(String, Vec<IntervalWindow>)> = Vec::new();
    let mut profiles: Vec<(String, InstructionProfile)> = Vec::new();
    for iter in 0..iterations {
        let iter_start = std::time::Instant::now();
        let jobs: Vec<AnalysisJob<'_>> = workloads
            .iter()
            .zip(&images)
            .map(|(wl, image)| AnalysisJob {
                image,
                input: wl.input(opts.scale, opts.seed),
                label: wl.name,
            })
            .collect();
        // All probes are pull-based and cannot perturb the reports (see
        // core::pipeline), so both paths print identical tables; the
        // split keeps the default path allocation-free.
        let span = main_lane.as_mut().map(|l| l.begin());
        let results: Vec<Result<InstrumentedReport, _>> = if any_probe {
            analyze_many_instrumented(jobs, &cfg, threads, probe_cfg, tracer.as_mut())
        } else {
            analyze_many(jobs, &cfg, threads)
                .into_iter()
                .map(|r| {
                    r.map(|report| InstrumentedReport {
                        report,
                        metrics: None,
                        intervals: None,
                        profile: None,
                    })
                })
                .collect()
        };
        let mut analyzed_events = 0;
        let mut run_workloads = Vec::new();
        for ((wl, &built_ns), result) in workloads.iter().zip(&build_ns).zip(results) {
            match result {
                Ok(ir) => {
                    let r = ir.report;
                    analyzed_events += r.dynamic_total;
                    if iter == 0 {
                        eprintln!(
                            "  {:<10} {:>12} insns measured, {:>5.1}% repeated",
                            wl.name,
                            r.dynamic_total,
                            r.repetition_rate() * 100.0,
                        );
                        reports.push((wl.name.to_string(), r));
                        if let Some(windows) = ir.intervals {
                            interval_series.push((wl.name.to_string(), windows));
                        }
                        if let Some(p) = ir.profile {
                            profiles.push((wl.name.to_string(), p));
                        }
                    }
                    if let Some(mut m) = ir.metrics {
                        m.prepend_phase_ns("build", built_ns, 0);
                        run_workloads.push((wl.name.to_string(), m));
                    }
                }
                Err(e) => {
                    eprintln!("error: analyzing {} trapped: {e}", wl.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(l) = main_lane.as_mut() {
            l.end(span.expect("span opened with lane"), "analyze", "phase", analyzed_events);
        }
        if want_metrics {
            runs.push(MetricsReport {
                scale: scale_label(opts.scale).to_string(),
                seed: opts.seed,
                jobs: threads,
                workloads: run_workloads,
                peak_rss_bytes: metrics::peak_rss_bytes(),
                wall_ns_total: u64::try_from(iter_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
        }
        if iterations > 1 {
            eprintln!(
                "  bench iteration {}/{iterations}: {} ms",
                iter + 1,
                iter_start.elapsed().as_millis()
            );
        }
    }
    eprintln!("  analysis took {} ms on {threads} thread(s)", start.elapsed().as_millis());

    if let Some(path) = &opts.metrics_out {
        let doc = if opts.bench.is_some() {
            match metrics::summarize_runs(&runs) {
                Ok(summary) => summary.to_json(),
                Err(e) => {
                    eprintln!("error: summarizing bench runs: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            runs[0].to_json()
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics to {path}");
    }
    let named: Vec<Named<'_>> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
    let render_span = main_lane.as_mut().map(|l| l.begin());

    let everything =
        opts.tables.is_empty() && opts.figures.is_empty() && !opts.steady && !opts.input_check;
    let want_t = |n: u32| everything || opts.tables.contains(&n);
    let want_f = |n: u32| everything || opts.figures.contains(&n);

    if want_t(1) {
        println!("{}", report::table1(&named));
    }
    if want_f(1) {
        println!("{}", report::figure1(&named));
    }
    if want_t(2) {
        println!("{}", report::table2(&named));
    }
    if want_f(3) {
        println!("{}", report::figure3(&named));
    }
    if want_f(4) {
        println!("{}", report::figure4(&named));
    }
    if want_t(3) {
        println!("{}", report::table3(&named));
    }
    if want_t(4) {
        println!("{}", report::table4(&named));
    }
    if want_t(5) || want_t(6) || want_t(7) {
        println!("{}", report::tables5_6_7(&named));
    }
    if want_t(8) {
        println!("{}", report::table8(&named));
    }
    if want_f(5) {
        println!("{}", report::figure5(&named));
    }
    if want_t(9) {
        println!("{}", report::table9(&named));
    }
    if want_f(6) {
        println!("{}", report::figure6(&named));
    }
    if want_t(10) {
        println!("{}", report::table10(&named));
    }
    if everything {
        println!("{}", report::ext_classes(&named));
        println!("{}", report::ext_predict(&named));
    }
    if let Some(l) = main_lane.as_mut() {
        l.end(render_span.expect("span opened with lane"), "render", "report", 0);
    }
    if let Some(prefix) = &opts.csv {
        use instrep_core::export;
        let summary = format!("{prefix}_summary.csv");
        let breakdowns = format!("{prefix}_breakdowns.csv");
        if let Err(e) = std::fs::write(&summary, export::csv_summary(&named))
            .and_then(|()| std::fs::write(&breakdowns, export::csv_breakdowns(&named)))
        {
            eprintln!("error: writing CSV files: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {summary} and {breakdowns}");
    }

    if opts.input_check || everything {
        // The paper's input-sensitivity check (§3): a second input set
        // must show the same trends.
        println!("Input-sensitivity check (paper §3): repetition rate with a second input set");
        println!("{:<12}{:>14}{:>14}{:>10}", "bench", "seed A", "seed B", "delta");
        for ((wl, image), (_, r)) in workloads.iter().zip(&images).zip(&reports) {
            let alt = wl.input(opts.scale, opts.seed.wrapping_add(7919));
            match analyze(image, alt, &cfg) {
                Ok(r2) => {
                    let a = r.repetition_rate() * 100.0;
                    let b = r2.repetition_rate() * 100.0;
                    println!("{:<12}{a:>13.1}%{b:>13.1}%{:>9.1}%", wl.name, (a - b).abs());
                }
                Err(e) => println!("{:<12} trapped: {e}", wl.name),
            }
        }
        println!();
    }

    if opts.steady || everything {
        println!("Steady-state check (paper §3): max local-category share deviation, window vs 3x window");
        for (wl, image) in workloads.iter().zip(&images) {
            let input = wl.input(opts.scale, opts.seed);
            match steady_state_check(image, input, &cfg, 3) {
                Ok(dev) => println!("    {:<10} {:>6.2}%", wl.name, dev * 100.0),
                Err(e) => println!("    {:<10} trapped: {e}", wl.name),
            }
        }
    }

    if let Some(name) = &opts.annotate {
        let wl = workloads.iter().find(|w| w.name == name).expect("validated above");
        let p = profiles
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
            .expect("profile collected for every workload");
        println!("{}", profile::annotate(name, &wl.full_source(), p));
    }

    if let (Some(path), Some(mut t)) = (opts.trace_out.as_ref(), tracer) {
        if let Some(lane) = main_lane {
            t.extend(lane.into_spans());
        }
        t.name_lane(0, "main");
        for w in 0..threads {
            t.name_lane(w as u32 + 1, &format!("worker-{w}"));
        }
        if let Err(e) = std::fs::write(path, t.to_json()) {
            eprintln!("error: writing trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote trace to {path} (open in https://ui.perfetto.dev)");
    }
    if let (Some(path), Some(n)) = (opts.interval_out.as_ref(), opts.interval) {
        let doc =
            interval::to_jsonl(scale_label(opts.scale), opts.seed, threads, n, &interval_series);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing interval series to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote interval series to {path}");
    }
    if opts.profile_out.is_some() || opts.profile_folded.is_some() {
        let doc = ProfileReport {
            scale: scale_label(opts.scale).to_string(),
            seed: opts.seed,
            top: opts.top,
            workloads: std::mem::take(&mut profiles),
        };
        if let Some(path) = &opts.profile_out {
            if let Err(e) = std::fs::write(path, doc.to_json()) {
                eprintln!("error: writing profile to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote profile to {path}");
        }
        if let Some(path) = &opts.profile_folded {
            if let Err(e) = std::fs::write(path, doc.to_folded()) {
                eprintln!("error: writing folded stacks to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote folded stacks to {path} (render with a flamegraph tool)");
        }
    }

    ExitCode::SUCCESS
}
