//! `instrep-repro`: regenerates every table and figure of Sodani & Sohi,
//! *An Empirical Analysis of Instruction Repetition* (ASPLOS 1998), over
//! the ten SPEC-'95-like workloads.
//!
//! Run `instrep-repro --help` for the full flag list — the help text,
//! the parser, and the flag-conflict checks are all generated from one
//! declarative table ([`FLAGS`] + [`RULES`]), so they cannot drift
//! apart.
//!
//! With no table/figure selection, everything is printed. One simulation
//! pass per workload feeds all tables. Workloads run on `--jobs` threads
//! (default: available parallelism); output is identical for every jobs
//! count because reports merge in fixed workload order. The whole
//! analysis fan-out is one [`Session`] — the observability flags below
//! just toggle its probes.
//!
//! `--metrics-out PATH` additionally writes a versioned JSON metrics
//! document (phase timings, throughput, occupancy gauges, peak RSS — see
//! `DESIGN.md` §9) without changing a byte of the table output. With
//! `--bench N` the analysis repeats N times and PATH receives a
//! median+IQR bench summary instead — the unit of the `BENCH_*.json`
//! performance trajectory (`scripts/bench.sh`).
//!
//! `--trace-out PATH` writes a Chrome trace-event JSON document
//! (Perfetto-loadable) spanning compile, assemble, the analysis phases
//! of every workload (one lane per worker thread), and table rendering.
//! `--interval N --interval-out PATH` samples each workload's
//! measurement every N retired instructions and writes the repetition
//! time series as JSONL. Both are pull-based like `--metrics-out`: the
//! table output stays byte-identical (see `DESIGN.md` §10).
//!
//! The source-level profiler (see `DESIGN.md` §11) attributes every
//! measured instruction to its static PC, owning function, MiniC source
//! line, and opcode class. `--profile-out PATH` writes the versioned
//! JSON document (full per-PC table, per-function/per-class rollups, and
//! the `--top N` hottest repetition sites); `--profile-folded PATH`
//! writes flamegraph-ready collapsed stacks; `--annotate BENCH` prints
//! the benchmark's source annotated with per-line exec/repeat counters
//! after the tables. All three are pull-based too: the tables stay
//! byte-identical, and every output is identical for every `--jobs`
//! count.
//!
//! The loop-nest profiler (see `DESIGN.md` §16) detects loops online
//! from executed back edges and attributes every measured instruction to
//! its innermost dynamic loop, nesting depth, and opcode class.
//! `--loops-out PATH` writes the versioned JSON document (per-loop
//! table, depth/class rollups, and a top-k redundancy summary);
//! `--loops-folded PATH` writes collapsed stacks keyed by loop-nest
//! path; `--annotate` gains a per-line loop-depth column. Pull-based
//! like the profiler: the tables stay byte-identical.
//!
//! `--cache-dir PATH` memoizes whole-workload results in a
//! content-addressed on-disk cache (see `DESIGN.md` §12): a warm run
//! reproduces the same tables byte-for-byte without executing a single
//! measured instruction. `--cache-verify` recomputes on every hit and
//! fails loudly if an entry disagrees with a fresh analysis.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use instrep_core::report::{self, Named};
use instrep_core::{
    default_parallelism, interval, metrics, profile, steady_state_check, telemetry, AnalysisCache,
    AnalysisConfig, AnalysisJob, AnalysisTier, CacheOutcome, HeartbeatConfig, HeartbeatSampler,
    InstructionProfile, InterpTier, IntervalWindow, LoopNestProfile, LoopsReport, MetricsReport,
    ProfileReport, Session, SpanLane, SpanTracer, SplitObservers, TelemetryRegistry,
    WorkloadReport,
};
use instrep_workloads::{all, Scale, Workload};

/// Hard ceiling on `--bench` iterations when the settle loop keeps
/// finding new minimums (a pathologically noisy box must still halt).
const BENCH_MAX_RUNS: u32 = 200;

struct Options {
    scale: Scale,
    seed: u64,
    only: Option<String>,
    jobs: usize,
    interp: InterpTier,
    analysis: AnalysisTier,
    observers: SplitObservers,
    tables: Vec<u32>,
    figures: Vec<u32>,
    steady: bool,
    input_check: bool,
    csv: Option<String>,
    metrics_out: Option<String>,
    bench: Option<u32>,
    trace_out: Option<String>,
    interval: Option<u64>,
    interval_out: Option<String>,
    profile_out: Option<String>,
    profile_folded: Option<String>,
    loops_out: Option<String>,
    loops_folded: Option<String>,
    annotate: Option<String>,
    top: usize,
    top_given: bool,
    cache_dir: Option<String>,
    cache_verify: bool,
    heartbeat_out: Option<String>,
    heartbeat_ms: Option<u64>,
    telemetry_out: Option<String>,
    progress: bool,
}

impl Options {
    /// Whether any output needs the per-PC attribution profile.
    fn wants_profile(&self) -> bool {
        self.profile_out.is_some() || self.profile_folded.is_some() || self.annotate.is_some()
    }

    /// Whether any output needs the loop-nest profile (`--annotate`
    /// shows a loop-depth column, so it pulls both probes).
    fn wants_loops(&self) -> bool {
        self.loops_out.is_some() || self.loops_folded.is_some() || self.annotate.is_some()
    }
}

/// One command-line flag: the single source of truth its `--help` line,
/// its parsing (including arity and value errors), and its conflict
/// checks are generated from.
struct FlagSpec {
    /// Long name, e.g. `--scale`.
    name: &'static str,
    /// Optional extra spelling (only `--help` has one: `-h`).
    alias: Option<&'static str>,
    /// `Some((metavar, missing-value error))` for flags taking a value.
    value: Option<(&'static str, &'static str)>,
    /// Right-hand column of the generated help text.
    help: &'static str,
    /// Folds the flag into `Options`; bare flags receive `""`.
    apply: fn(&mut Options, &str) -> Result<(), String>,
}

/// A cross-flag validity rule, checked after the parse loop. `broken`
/// returning true fails the parse with `message`.
struct Rule {
    broken: fn(&Options) -> bool,
    message: &'static str,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--scale",
        alias: None,
        value: Some(("SCALE", "--scale needs a value")),
        help: "measurement scale: tiny, small, or full (default: small)",
        apply: |o, v| {
            o.scale = match v {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "full" => Scale::Full,
                other => return Err(format!("unknown scale `{other}`")),
            };
            Ok(())
        },
    },
    FlagSpec {
        name: "--seed",
        alias: None,
        value: Some(("N", "--seed needs a value")),
        help: "workload input seed (default: 1998)",
        apply: |o, v| {
            o.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--only",
        alias: None,
        value: Some(("BENCH", "--only needs a benchmark name")),
        help: "analyze one benchmark (see --list)",
        apply: |o, v| {
            o.only = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--jobs",
        alias: None,
        value: Some(("N", "--jobs needs a thread count")),
        help: "worker threads (default: available parallelism)",
        apply: |o, v| {
            o.jobs = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
            if o.jobs == 0 {
                return Err("--jobs must be at least 1".to_string());
            }
            Ok(())
        },
    },
    FlagSpec {
        name: "--interp",
        alias: None,
        value: Some(("TIER", "--interp needs a tier")),
        help: "interpreter tier: fast (predecoded) or legacy (default: fast)",
        apply: |o, v| {
            o.interp = match v {
                "fast" => InterpTier::Predecoded,
                "legacy" => InterpTier::Legacy,
                other => return Err(format!("unknown interpreter tier `{other}`")),
            };
            Ok(())
        },
    },
    FlagSpec {
        name: "--analysis",
        alias: None,
        value: Some(("TIER", "--analysis needs a tier")),
        help: "analysis tier: fused (hot row) or split (oracle) (default: fused)",
        apply: |o, v| {
            o.analysis = match v {
                "fused" => AnalysisTier::Fused,
                "split" => AnalysisTier::Split,
                other => return Err(format!("unknown analysis tier `{other}`")),
            };
            Ok(())
        },
    },
    FlagSpec {
        name: "--disable-observer",
        alias: None,
        value: Some(("NAME", "--disable-observer needs an observer name")),
        help: "drop one split-tier observer (repeatable; needs --analysis split)",
        apply: |o, v| o.observers.disable(v),
    },
    FlagSpec {
        name: "--table",
        alias: None,
        value: Some(("N", "--table needs a number")),
        help: "print table N (repeatable)",
        apply: |o, v| {
            o.tables.push(v.parse().map_err(|_| format!("bad table `{v}`"))?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--figure",
        alias: None,
        value: Some(("N", "--figure needs a number")),
        help: "print figure N (repeatable)",
        apply: |o, v| {
            o.figures.push(v.parse().map_err(|_| format!("bad figure `{v}`"))?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--steady-state",
        alias: None,
        value: None,
        help: "run the steady-state check (paper \u{a7}3)",
        apply: |o, _| {
            o.steady = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--input-check",
        alias: None,
        value: None,
        help: "run the input-sensitivity check (paper \u{a7}3)",
        apply: |o, _| {
            o.input_check = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--csv",
        alias: None,
        value: Some(("PREFIX", "--csv needs a path prefix")),
        help: "write PREFIX_summary.csv and PREFIX_breakdowns.csv",
        apply: |o, v| {
            o.csv = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--metrics-out",
        alias: None,
        value: Some(("PATH", "--metrics-out needs a path")),
        help: "write the phase/throughput metrics JSON to PATH",
        apply: |o, v| {
            o.metrics_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--bench",
        alias: None,
        value: Some(("N", "--bench needs a run count")),
        help: "repeat the analysis N times, summarize into --metrics-out",
        apply: |o, v| {
            let n: u32 = v.parse().map_err(|_| format!("bad bench run count `{v}`"))?;
            if n == 0 {
                return Err("--bench must be at least 1".to_string());
            }
            o.bench = Some(n);
            Ok(())
        },
    },
    FlagSpec {
        name: "--trace-out",
        alias: None,
        value: Some(("PATH", "--trace-out needs a path")),
        help: "write a Chrome trace-event JSON document to PATH",
        apply: |o, v| {
            o.trace_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--interval",
        alias: None,
        value: Some(("N", "--interval needs an instruction count")),
        help: "sample each measurement every N instructions",
        apply: |o, v| {
            let n: u64 = v.parse().map_err(|_| format!("bad interval `{v}`"))?;
            if n == 0 {
                return Err("--interval must be at least 1".to_string());
            }
            o.interval = Some(n);
            Ok(())
        },
    },
    FlagSpec {
        name: "--interval-out",
        alias: None,
        value: Some(("PATH", "--interval-out needs a path")),
        help: "write the interval series as JSONL to PATH",
        apply: |o, v| {
            o.interval_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--profile-out",
        alias: None,
        value: Some(("PATH", "--profile-out needs a path")),
        help: "write the per-PC repetition profile JSON to PATH",
        apply: |o, v| {
            o.profile_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--profile-folded",
        alias: None,
        value: Some(("PATH", "--profile-folded needs a path")),
        help: "write flamegraph-ready collapsed stacks to PATH",
        apply: |o, v| {
            o.profile_folded = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--loops-out",
        alias: None,
        value: Some(("PATH", "--loops-out needs a path")),
        help: "write the loop-nest repetition profile JSON to PATH",
        apply: |o, v| {
            o.loops_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--loops-folded",
        alias: None,
        value: Some(("PATH", "--loops-folded needs a path")),
        help: "write loop-nest collapsed stacks to PATH",
        apply: |o, v| {
            o.loops_folded = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--annotate",
        alias: None,
        value: Some(("BENCH", "--annotate needs a benchmark name")),
        help: "print BENCH's source annotated with repetition counts",
        apply: |o, v| {
            if instrep_workloads::by_name(v).is_none() {
                return Err(format!("unknown benchmark `{v}` for --annotate (see --list)"));
            }
            o.annotate = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--top",
        alias: None,
        value: Some(("N", "--top needs a site count")),
        help: "hot sites listed per profile output (default: 10)",
        apply: |o, v| {
            o.top = v.parse().map_err(|_| format!("bad top count `{v}`"))?;
            if o.top == 0 {
                return Err("--top must be at least 1".to_string());
            }
            o.top_given = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--cache-dir",
        alias: None,
        value: Some(("PATH", "--cache-dir needs a path")),
        help: "memoize analysis results in a cache at PATH",
        apply: |o, v| {
            o.cache_dir = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--cache-verify",
        alias: None,
        value: None,
        help: "recompute cache hits and fail on any mismatch",
        apply: |o, _| {
            o.cache_verify = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--heartbeat-out",
        alias: None,
        value: Some(("PATH", "--heartbeat-out needs a path")),
        help: "stream live telemetry heartbeats as JSONL to PATH",
        apply: |o, v| {
            o.heartbeat_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--heartbeat-ms",
        alias: None,
        value: Some(("N", "--heartbeat-ms needs a period")),
        help: "wall-clock heartbeat period in milliseconds",
        apply: |o, v| {
            let n: u64 = v.parse().map_err(|_| format!("bad heartbeat period `{v}`"))?;
            if n == 0 {
                return Err("--heartbeat-ms must be at least 1".to_string());
            }
            o.heartbeat_ms = Some(n);
            Ok(())
        },
    },
    FlagSpec {
        name: "--telemetry-out",
        alias: None,
        value: Some(("PATH", "--telemetry-out needs a path")),
        help: "write Prometheus-style telemetry exposition to PATH at exit",
        apply: |o, v| {
            o.telemetry_out = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--progress",
        alias: None,
        value: None,
        help: "live single-line progress on stderr (TTY only)",
        apply: |o, _| {
            o.progress = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--all",
        alias: None,
        value: None,
        help: "print every table and figure (the default)",
        apply: |_, _| Ok(()),
    },
    FlagSpec {
        name: "--list",
        alias: None,
        value: None,
        help: "list the benchmarks and their SPEC analogs",
        apply: |_, _| {
            println!("{:<12}{:<16}", "bench", "SPEC analog");
            for wl in all() {
                println!("{:<12}{:<16}", wl.name, wl.spec_analog);
            }
            std::process::exit(0);
        },
    },
    FlagSpec {
        name: "--help",
        alias: Some("-h"),
        value: None,
        help: "print this help (also -h)",
        apply: |_, _| {
            print_help();
            std::process::exit(0);
        },
    },
];

const RULES: &[Rule] = &[
    Rule {
        broken: |o| o.bench.is_some() && o.metrics_out.is_none(),
        message: "--bench requires --metrics-out (the summary is written there)",
    },
    Rule {
        broken: |o| o.interval.is_some() != o.interval_out.is_some(),
        message: "--interval and --interval-out must be given together",
    },
    Rule {
        broken: |o| o.bench.is_some() && (o.trace_out.is_some() || o.interval_out.is_some()),
        message: "--bench cannot be combined with --trace-out or --interval-out",
    },
    Rule {
        broken: |o| o.bench.is_some() && o.wants_profile(),
        message: "--bench cannot be combined with --profile-out, --profile-folded, or --annotate",
    },
    Rule {
        broken: |o| o.bench.is_some() && (o.loops_out.is_some() || o.loops_folded.is_some()),
        message: "--bench cannot be combined with --loops-out or --loops-folded",
    },
    Rule {
        broken: |o| o.top_given && !o.wants_profile() && !o.wants_loops(),
        message: "--top requires --profile-out, --profile-folded, --loops-out, \
                  --loops-folded, or --annotate",
    },
    Rule {
        broken: |o| o.bench.is_some() && o.cache_dir.is_some(),
        message: "--bench cannot be combined with --cache-dir \
                  (a cached run would make bench timings meaningless)",
    },
    Rule {
        broken: |o| o.cache_verify && o.cache_dir.is_none(),
        message: "--cache-verify requires --cache-dir",
    },
    Rule {
        broken: |o| o.observers != SplitObservers::all() && o.analysis != AnalysisTier::Split,
        message: "--disable-observer requires --analysis split \
                  (the fused tier has no per-observer seams)",
    },
    Rule {
        broken: |o| o.heartbeat_out.is_some() != o.heartbeat_ms.is_some(),
        message: "--heartbeat-out and --heartbeat-ms must be given together",
    },
    Rule {
        broken: |o| {
            o.bench.is_some()
                && (o.heartbeat_out.is_some() || o.telemetry_out.is_some() || o.progress)
        },
        message: "--bench cannot be combined with --heartbeat-out, --telemetry-out, or --progress",
    },
];

/// Prints the help text generated from [`FLAGS`] — there is no
/// hand-maintained usage string to drift out of date.
fn print_help() {
    println!("usage: instrep-repro [options]\n");
    println!(
        "Regenerates the tables and figures of \"An Empirical Analysis of\n\
         Instruction Repetition\" over the ten SPEC-'95-like workloads.\n\
         With no table or figure selection, everything is printed.\n"
    );
    println!("options:");
    let width = FLAGS.iter().map(|f| f.name.len() + f.value.map_or(0, |(m, _)| m.len() + 1)).max();
    let width = width.unwrap_or(0) + 2;
    for f in FLAGS {
        let mut left = f.name.to_string();
        if let Some((metavar, _)) = f.value {
            left.push(' ');
            left.push_str(metavar);
        }
        println!("  {left:<width$}{}", f.help);
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Small,
        seed: 1998,
        only: None,
        jobs: default_parallelism(),
        interp: InterpTier::default(),
        analysis: AnalysisTier::default(),
        observers: SplitObservers::all(),
        tables: Vec::new(),
        figures: Vec::new(),
        steady: false,
        input_check: false,
        csv: None,
        metrics_out: None,
        bench: None,
        trace_out: None,
        interval: None,
        interval_out: None,
        profile_out: None,
        profile_folded: None,
        loops_out: None,
        loops_folded: None,
        annotate: None,
        top: 10,
        top_given: false,
        cache_dir: None,
        cache_verify: false,
        heartbeat_out: None,
        heartbeat_ms: None,
        telemetry_out: None,
        progress: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let spec = FLAGS
            .iter()
            .find(|f| f.name == arg || f.alias == Some(arg.as_str()))
            .ok_or_else(|| format!("unknown argument `{arg}`"))?;
        let value = match spec.value {
            Some((_, missing)) => args.next().ok_or_else(|| missing.to_string())?,
            None => String::new(),
        };
        (spec.apply)(&mut opts, &value)?;
    }
    for rule in RULES {
        if (rule.broken)(&opts) {
            return Err(rule.message.to_string());
        }
    }
    Ok(opts)
}

/// Scale label used in metrics documents.
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Analysis windows per scale: (skip, window), mirroring the paper's
/// skip-initialization-then-measure methodology at simulator-feasible
/// sizes.
fn windows(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Tiny => (20_000, 400_000),
        Scale::Small => (200_000, 4_000_000),
        Scale::Full => (1_000_000, 25_000_000),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (skip, window) = windows(opts.scale);
    let cfg = AnalysisConfig { skip, window, ..AnalysisConfig::default() };
    let workloads: Vec<Workload> =
        all().into_iter().filter(|w| opts.only.as_deref().is_none_or(|o| o == w.name)).collect();
    if workloads.is_empty() {
        eprintln!("error: no benchmark matches --only filter");
        return ExitCode::FAILURE;
    }
    if let Some(name) = &opts.annotate {
        if !workloads.iter().any(|w| w.name == name) {
            eprintln!("error: --annotate {name} is excluded by the --only filter");
            return ExitCode::FAILURE;
        }
    }
    // Telemetry is strictly opt-in: no registry, no atomics anywhere on
    // the hot path. `--progress` silently degrades to off when stderr is
    // not a terminal so piped runs never see control sequences.
    let progress = opts.progress && std::io::stderr().is_terminal();
    let registry = (opts.heartbeat_out.is_some() || opts.telemetry_out.is_some() || progress)
        .then(|| Arc::new(TelemetryRegistry::new()));
    let mut cache =
        match opts.cache_dir.as_ref().map(|d| AnalysisCache::open(d.as_str())).transpose() {
            Ok(c) => c,
            Err(e) => {
                let dir = opts.cache_dir.as_deref().unwrap_or_default();
                eprintln!("error: opening cache at {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
    if let (Some(c), Some(r)) = (cache.as_mut(), registry.as_deref()) {
        c.attach_telemetry(r);
    }
    let cache = cache;
    let mut heartbeat = None;
    if let Some(r) = registry.as_ref() {
        if opts.heartbeat_out.is_some() || progress {
            let hb_cfg = HeartbeatConfig {
                out: opts.heartbeat_out.as_ref().map(PathBuf::from),
                period: Duration::from_millis(opts.heartbeat_ms.unwrap_or(200)),
                progress,
            };
            match HeartbeatSampler::start(Arc::clone(r), hb_cfg) {
                Ok(s) => heartbeat = Some(s),
                Err(e) => {
                    eprintln!("error: starting heartbeat stream: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let threads = opts.jobs.clamp(1, workloads.len());
    eprintln!(
        "running {} workload(s) at {:?} scale (skip {skip}, window {window}, \
         {threads} thread(s))...",
        workloads.len(),
        opts.scale
    );
    // The tracer (when --trace-out is given) records the driver's own
    // work on lane 0; the session's worker threads get lanes 1..=jobs.
    let mut tracer = opts.trace_out.as_ref().map(|_| SpanTracer::new());
    let mut main_lane = tracer.as_ref().map(|t| SpanLane::new(0, t.epoch()));

    let start = std::time::Instant::now();
    let mut images = Vec::with_capacity(workloads.len());
    let mut build_ns = Vec::with_capacity(workloads.len());
    for wl in &workloads {
        let t = std::time::Instant::now();
        let built = match main_lane.as_mut() {
            None => wl.build(),
            // Traced builds run the same two stages `Workload::build`
            // fuses, each under its own span.
            Some(lane) => {
                let sp = lane.begin();
                let asm = instrep_minicc::compile_to_asm(&wl.full_source());
                lane.end(sp, format!("compile: {}", wl.name), "build", 0);
                asm.and_then(|text| {
                    let sp = lane.begin();
                    let image = instrep_asm::assemble(&text);
                    lane.end(sp, format!("assemble: {}", wl.name), "build", 0);
                    image.map_err(instrep_minicc::BuildError::from)
                })
            }
        };
        match built {
            Ok(i) => {
                build_ns.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                images.push(i);
            }
            Err(e) => {
                eprintln!("error: building {} failed: {e}", wl.name);
                return ExitCode::FAILURE;
            }
        }
    }

    let want_metrics = opts.metrics_out.is_some();
    let iterations = opts.bench.unwrap_or(1);
    // Repetition-tester settle phase (--bench only): keep re-running past
    // the requested count until no new minimum wall time appears within
    // INSTREP_BENCH_SETTLE_MS of wall clock (default 2000; 0 disables),
    // capped at BENCH_MAX_RUNS. Noise only ever adds time, so a settled
    // minimum is the best estimate of the true cost.
    let settle_ms: u64 =
        std::env::var("INSTREP_BENCH_SETTLE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(2000);
    let mut runs: Vec<MetricsReport> = Vec::new();
    let mut reports: Vec<(String, WorkloadReport)> = Vec::new();
    let mut interval_series: Vec<(String, Vec<IntervalWindow>)> = Vec::new();
    let mut profiles: Vec<(String, InstructionProfile)> = Vec::new();
    let mut loop_profiles: Vec<(String, LoopNestProfile)> = Vec::new();
    let mut iter: u32 = 0;
    let mut best_ns = u64::MAX;
    let mut best_at = std::time::Instant::now();
    loop {
        let iter_start = std::time::Instant::now();
        let jobs: Vec<AnalysisJob<'_>> = workloads
            .iter()
            .zip(&images)
            .map(|(wl, image)| AnalysisJob {
                image,
                input: wl.input(opts.scale, opts.seed),
                label: wl.name,
            })
            .collect();
        // One Session runs the whole fan-out; the probes are pull-based
        // and the cache memoizes without perturbing, so every flag
        // combination prints identical tables.
        let span = main_lane.as_mut().map(|l| l.begin());
        let mut session = Session::new(cfg)
            .jobs(threads)
            .interp(opts.interp)
            .analysis(opts.analysis)
            .split_observers(opts.observers)
            .metrics(want_metrics);
        if let Some(n) = opts.interval {
            session = session.interval(n);
        }
        if opts.wants_profile() {
            session = session.profile(true);
        }
        if opts.wants_loops() {
            session = session.loops(true);
        }
        if let Some(t) = tracer.as_mut() {
            session = session.trace(t);
        }
        if let Some(c) = cache.as_ref() {
            session = session.cache(c).cache_verify(opts.cache_verify);
        }
        if let Some(r) = registry.as_deref() {
            session = session.telemetry(r);
        }
        let results = session.run(jobs);
        let mut analyzed_events = 0;
        let mut run_workloads = Vec::new();
        for ((wl, &built_ns), result) in workloads.iter().zip(&build_ns).zip(results) {
            match result {
                Ok(ir) => {
                    if ir.cache == CacheOutcome::VerifyMismatch {
                        eprintln!(
                            "error: cache verify failed for {} \
                             (entry does not match a fresh analysis)",
                            wl.name
                        );
                        return ExitCode::FAILURE;
                    }
                    let cache_note = match ir.cache {
                        CacheOutcome::Hit => " (cached)",
                        CacheOutcome::VerifyOk => " (cache verified)",
                        _ => "",
                    };
                    let r = ir.report;
                    analyzed_events += r.dynamic_total;
                    if iter == 0 {
                        eprintln!(
                            "  {:<10} {:>12} insns measured, {:>5.1}% repeated{cache_note}",
                            wl.name,
                            r.dynamic_total,
                            r.repetition_rate() * 100.0,
                        );
                        reports.push((wl.name.to_string(), r));
                        if let Some(windows) = ir.intervals {
                            interval_series.push((wl.name.to_string(), windows));
                        }
                        if let Some(p) = ir.profile {
                            profiles.push((wl.name.to_string(), p));
                        }
                        if let Some(p) = ir.loops {
                            loop_profiles.push((wl.name.to_string(), p));
                        }
                    }
                    if let Some(mut m) = ir.metrics {
                        m.prepend_phase_ns("build", built_ns, 0);
                        run_workloads.push((wl.name.to_string(), m));
                    }
                }
                Err(e) => {
                    eprintln!("error: analyzing {} trapped: {e}", wl.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(l) = main_lane.as_mut() {
            l.end(span.expect("span opened with lane"), "analyze", "phase", analyzed_events);
        }
        if want_metrics {
            runs.push(MetricsReport {
                scale: scale_label(opts.scale).to_string(),
                seed: opts.seed,
                jobs: threads,
                workloads: run_workloads,
                peak_rss_bytes: metrics::peak_rss_bytes(),
                wall_ns_total: u64::try_from(iter_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
        }
        let iter_ns = u64::try_from(iter_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if iter_ns < best_ns {
            best_ns = iter_ns;
            best_at = std::time::Instant::now();
        }
        iter += 1;
        if opts.bench.is_some() {
            if iter > iterations {
                eprintln!("  bench iteration {iter} (settling): {} ms", iter_ns / 1_000_000);
            } else if iterations > 1 {
                eprintln!("  bench iteration {iter}/{iterations}: {} ms", iter_ns / 1_000_000);
            }
        }
        if iter < iterations {
            continue;
        }
        if opts.bench.is_none() || settle_ms == 0 || iter >= BENCH_MAX_RUNS {
            break;
        }
        if best_at.elapsed().as_millis() >= u128::from(settle_ms) {
            break;
        }
    }
    eprintln!("  analysis took {} ms on {threads} thread(s)", start.elapsed().as_millis());

    if let Some(path) = &opts.metrics_out {
        let doc = if opts.bench.is_some() {
            match metrics::summarize_runs(&runs) {
                Ok(summary) => summary.to_json(),
                Err(e) => {
                    eprintln!("error: summarizing bench runs: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            runs[0].to_json()
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics to {path}");
    }
    let named: Vec<Named<'_>> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
    let render_span = main_lane.as_mut().map(|l| l.begin());

    let everything =
        opts.tables.is_empty() && opts.figures.is_empty() && !opts.steady && !opts.input_check;
    let want_t = |n: u32| everything || opts.tables.contains(&n);
    let want_f = |n: u32| everything || opts.figures.contains(&n);

    if want_t(1) {
        println!("{}", report::table1(&named));
    }
    if want_f(1) {
        println!("{}", report::figure1(&named));
    }
    if want_t(2) {
        println!("{}", report::table2(&named));
    }
    if want_f(3) {
        println!("{}", report::figure3(&named));
    }
    if want_f(4) {
        println!("{}", report::figure4(&named));
    }
    if want_t(3) {
        println!("{}", report::table3(&named));
    }
    if want_t(4) {
        println!("{}", report::table4(&named));
    }
    if want_t(5) || want_t(6) || want_t(7) {
        println!("{}", report::tables5_6_7(&named));
    }
    if want_t(8) {
        println!("{}", report::table8(&named));
    }
    if want_f(5) {
        println!("{}", report::figure5(&named));
    }
    if want_t(9) {
        println!("{}", report::table9(&named));
    }
    if want_f(6) {
        println!("{}", report::figure6(&named));
    }
    if want_t(10) {
        println!("{}", report::table10(&named));
    }
    if everything {
        println!("{}", report::ext_classes(&named));
        println!("{}", report::ext_predict(&named));
    }
    if let Some(l) = main_lane.as_mut() {
        l.end(render_span.expect("span opened with lane"), "render", "report", 0);
    }
    if let Some(prefix) = &opts.csv {
        use instrep_core::export;
        let summary = format!("{prefix}_summary.csv");
        let breakdowns = format!("{prefix}_breakdowns.csv");
        if let Err(e) = std::fs::write(&summary, export::csv_summary(&named))
            .and_then(|()| std::fs::write(&breakdowns, export::csv_breakdowns(&named)))
        {
            eprintln!("error: writing CSV files: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {summary} and {breakdowns}");
    }

    if opts.input_check || everything {
        // The paper's input-sensitivity check (§3): a second input set
        // must show the same trends. It goes through the same cache, so
        // warm full runs skip this simulation pass too.
        println!("Input-sensitivity check (paper §3): repetition rate with a second input set");
        println!("{:<12}{:>14}{:>14}{:>10}", "bench", "seed A", "seed B", "delta");
        for ((wl, image), (_, r)) in workloads.iter().zip(&images).zip(&reports) {
            let alt = wl.input(opts.scale, opts.seed.wrapping_add(7919));
            let mut session = Session::new(cfg)
                .interp(opts.interp)
                .analysis(opts.analysis)
                .split_observers(opts.observers);
            if let Some(c) = cache.as_ref() {
                session = session.cache(c).cache_verify(opts.cache_verify);
            }
            if let Some(r) = registry.as_deref() {
                session = session.telemetry(r);
            }
            match session.run_one(image, alt) {
                Ok(ir) if ir.cache == CacheOutcome::VerifyMismatch => {
                    eprintln!(
                        "error: cache verify failed for {} \
                         (entry does not match a fresh analysis)",
                        wl.name
                    );
                    return ExitCode::FAILURE;
                }
                Ok(ir) => {
                    let a = r.repetition_rate() * 100.0;
                    let b = ir.report.repetition_rate() * 100.0;
                    println!("{:<12}{a:>13.1}%{b:>13.1}%{:>9.1}%", wl.name, (a - b).abs());
                }
                Err(e) => println!("{:<12} trapped: {e}", wl.name),
            }
        }
        println!();
    }

    if opts.steady || everything {
        println!("Steady-state check (paper §3): max local-category share deviation, window vs 3x window");
        for (wl, image) in workloads.iter().zip(&images) {
            let input = wl.input(opts.scale, opts.seed);
            match steady_state_check(image, input, &cfg, 3) {
                Ok(dev) => println!("    {:<10} {:>6.2}%", wl.name, dev * 100.0),
                Err(e) => println!("    {:<10} trapped: {e}", wl.name),
            }
        }
    }

    if let Some(name) = &opts.annotate {
        let wl = workloads.iter().find(|w| w.name == name).expect("validated above");
        let p = profiles
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
            .expect("profile collected for every workload");
        let lp = loop_profiles.iter().find(|(n, _)| n == name).map(|(_, p)| p);
        println!("{}", profile::annotate(name, &wl.full_source(), p, lp));
    }

    if let (Some(path), Some(mut t)) = (opts.trace_out.as_ref(), tracer) {
        if let Some(lane) = main_lane {
            t.extend(lane.into_spans());
        }
        t.name_lane(0, "main");
        for w in 0..threads {
            t.name_lane(w as u32 + 1, &format!("worker-{w}"));
        }
        if let Err(e) = std::fs::write(path, t.to_json()) {
            eprintln!("error: writing trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote trace to {path} (open in https://ui.perfetto.dev)");
    }
    if let (Some(path), Some(n)) = (opts.interval_out.as_ref(), opts.interval) {
        let doc =
            interval::to_jsonl(scale_label(opts.scale), opts.seed, threads, n, &interval_series);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing interval series to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote interval series to {path}");
    }
    if opts.profile_out.is_some() || opts.profile_folded.is_some() {
        let doc = ProfileReport {
            scale: scale_label(opts.scale).to_string(),
            seed: opts.seed,
            top: opts.top,
            workloads: std::mem::take(&mut profiles),
        };
        if let Some(path) = &opts.profile_out {
            if let Err(e) = std::fs::write(path, doc.to_json()) {
                eprintln!("error: writing profile to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote profile to {path}");
        }
        if let Some(path) = &opts.profile_folded {
            if let Err(e) = std::fs::write(path, doc.to_folded()) {
                eprintln!("error: writing folded stacks to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote folded stacks to {path} (render with a flamegraph tool)");
        }
    }
    if opts.loops_out.is_some() || opts.loops_folded.is_some() {
        let doc = LoopsReport {
            scale: scale_label(opts.scale).to_string(),
            seed: opts.seed,
            top: opts.top,
            workloads: std::mem::take(&mut loop_profiles),
        };
        if let Some(path) = &opts.loops_out {
            if let Err(e) = std::fs::write(path, doc.to_json()) {
                eprintln!("error: writing loop profile to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote loop profile to {path}");
        }
        if let Some(path) = &opts.loops_folded {
            if let Err(e) = std::fs::write(path, doc.to_folded()) {
                eprintln!("error: writing loop stacks to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote loop stacks to {path} (render with a flamegraph tool)");
        }
    }

    // The sampler is stopped (and its final beat flushed) before the
    // exposition snapshot so both exports agree on the final totals.
    if let Some(hb) = heartbeat {
        if let Err(e) = hb.stop() {
            eprintln!("error: writing heartbeats: {e}");
            return ExitCode::FAILURE;
        }
        if let Some(path) = &opts.heartbeat_out {
            eprintln!("wrote heartbeats to {path}");
        }
    }
    if let (Some(path), Some(r)) = (opts.telemetry_out.as_ref(), registry.as_deref()) {
        let doc = telemetry::render_prometheus(&r.snapshot());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing telemetry exposition to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote telemetry exposition to {path}");
    }

    ExitCode::SUCCESS
}
