//! Smoke tests for the `instrep-repro` command-line interface: argument
//! errors must exit non-zero with a clear message, a real (tiny,
//! parallel) run must succeed, and `--metrics-out` must write a valid
//! schema-v1 JSON document without changing a byte of table stdout.

mod json;

use std::process::{Command, Output};

use json::Json;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_instrep-repro"))
        .args(args)
        .output()
        .expect("spawn instrep-repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_scale_fails_with_message() {
    let out = run(&["--scale", "galactic"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown scale `galactic`"), "stderr: {err}");
}

#[test]
fn missing_seed_value_fails_with_message() {
    let out = run(&["--seed"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--seed needs a value"), "stderr: {err}");
}

#[test]
fn unknown_only_benchmark_fails_with_message() {
    let out = run(&["--only", "no-such-bench"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("no benchmark matches --only filter"), "stderr: {err}");
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = run(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown argument `--frobnicate`"), "stderr: {err}");
}

#[test]
fn zero_jobs_fails_with_message() {
    let out = run(&["--jobs", "0"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--jobs must be at least 1"), "stderr: {err}");
}

#[test]
fn bench_without_metrics_out_fails_with_message() {
    let out = run(&["--bench", "3"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--bench requires --metrics-out"), "stderr: {err}");
}

/// `--metrics-out` must emit parseable JSON carrying the documented
/// schema version, one workload entry per analyzed workload, the
/// pipeline's phases in order, and non-empty gauges.
#[test]
fn metrics_out_writes_schema_v1_json() {
    let dir = std::env::temp_dir().join(format!("instrep-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--jobs",
        "2",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics file is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("metrics"));
    assert_eq!(doc.get("scale").and_then(Json::str), Some("tiny"));
    let workloads = doc.get("workloads").expect("workloads array").items();
    assert_eq!(workloads.len(), 1, "one entry per analyzed workload");
    let wl = &workloads[0];
    assert_eq!(wl.get("name").and_then(Json::str), Some("compress"));
    let phase_names: Vec<&str> = wl
        .get("phases")
        .expect("phases array")
        .items()
        .iter()
        .map(|p| p.get("name").and_then(Json::str).expect("phase name"))
        .collect();
    assert_eq!(phase_names, ["build", "setup", "skip", "measure", "finalize"]);
    for p in wl.get("phases").unwrap().items() {
        assert!(p.get("wall_ms").and_then(Json::num).expect("wall_ms") >= 0.0);
        assert!(p.get("events_per_sec").and_then(Json::num).is_some());
    }
    let measure = wl
        .get("phases")
        .unwrap()
        .items()
        .iter()
        .find(|p| p.get("name").and_then(Json::str) == Some("measure"));
    assert_eq!(measure.unwrap().get("events").and_then(Json::num), Some(400_000.0));
    match wl.get("gauges") {
        Some(Json::Obj(gauges)) => {
            assert!(gauges.contains_key("tracker_instances_buffered"), "gauges: {gauges:?}");
            assert!(gauges.contains_key("reuse_entries_valid"), "gauges: {gauges:?}");
        }
        other => panic!("gauges must be an object, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--bench N` turns the same path into a median+IQR summary document.
#[test]
fn bench_mode_writes_schema_v1_summary() {
    let dir = std::env::temp_dir().join(format!("instrep-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--jobs",
        "1",
        "--bench",
        "2",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("bench"));
    assert_eq!(doc.get("runs").and_then(Json::num), Some(2.0));
    let wl = &doc.get("workloads").expect("workloads").items()[0];
    let measure = wl
        .get("phases")
        .expect("phases")
        .items()
        .iter()
        .find(|p| p.get("name").and_then(Json::str) == Some("measure"))
        .expect("measure phase summarized");
    assert!(measure.get("median_ms").and_then(Json::num).unwrap() > 0.0);
    assert!(measure.get("iqr_ms").and_then(Json::num).unwrap() >= 0.0);
    assert!(measure.get("median_events_per_sec").and_then(Json::num).unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Metrics collection must not change a byte of table stdout, at any
/// jobs count (the acceptance bar for the observability layer).
#[test]
fn metrics_out_leaves_stdout_byte_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut baseline: Option<Vec<u8>> = None;
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let path = dir.join(format!("m{jobs}.json"));
        let mut with_metrics_args = args.to_vec();
        with_metrics_args.extend_from_slice(&["--metrics-out", path.to_str().unwrap()]);
        let instrumented = run(&with_metrics_args);
        assert!(instrumented.status.success(), "stderr: {}", stderr_of(&instrumented));
        assert_eq!(
            plain.stdout, instrumented.stdout,
            "--metrics-out changed stdout at --jobs {jobs}"
        );
        match &baseline {
            None => baseline = Some(plain.stdout),
            Some(b) => assert_eq!(b, &plain.stdout, "stdout differs between jobs counts"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_parallel_table_run_succeeds() {
    let out = run(&["--scale", "tiny", "--table", "1", "--jobs", "2"]);
    let err = stderr_of(&out);
    assert!(out.status.success(), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "stdout: {stdout}");
    // Table-only selection must not drag in the other reports.
    assert!(!stdout.contains("Table 2"), "stdout: {stdout}");
}
