//! Smoke tests for the `instrep-repro` command-line interface: argument
//! errors must exit non-zero with a clear message, a real (tiny,
//! parallel) run must succeed, and the observability exports
//! (`--metrics-out`, `--trace-out`, `--interval-out`, `--profile-out`,
//! `--profile-folded`, `--loops-out`, `--loops-folded`, `--annotate`)
//! must write valid schema-v1 documents without changing a byte of
//! table stdout.

mod json;

use std::process::{Command, Output};

use json::Json;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_instrep-repro"))
        .args(args)
        .output()
        .expect("spawn instrep-repro")
}

fn run_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_instrep-repro"))
        .args(args)
        .envs(envs.iter().copied())
        .output()
        .expect("spawn instrep-repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_scale_fails_with_message() {
    let out = run(&["--scale", "galactic"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown scale `galactic`"), "stderr: {err}");
}

#[test]
fn missing_seed_value_fails_with_message() {
    let out = run(&["--seed"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--seed needs a value"), "stderr: {err}");
}

#[test]
fn unknown_only_benchmark_fails_with_message() {
    let out = run(&["--only", "no-such-bench"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("no benchmark matches --only filter"), "stderr: {err}");
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = run(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown argument `--frobnicate`"), "stderr: {err}");
}

#[test]
fn zero_jobs_fails_with_message() {
    let out = run(&["--jobs", "0"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--jobs must be at least 1"), "stderr: {err}");
}

#[test]
fn bench_without_metrics_out_fails_with_message() {
    let out = run(&["--bench", "3"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--bench requires --metrics-out"), "stderr: {err}");
}

/// `--metrics-out` must emit parseable JSON carrying the documented
/// schema version, one workload entry per analyzed workload, the
/// pipeline's phases in order, and non-empty gauges.
#[test]
fn metrics_out_writes_schema_v1_json() {
    let dir = std::env::temp_dir().join(format!("instrep-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--jobs",
        "2",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics file is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("metrics"));
    assert_eq!(doc.get("scale").and_then(Json::str), Some("tiny"));
    let workloads = doc.get("workloads").expect("workloads array").items();
    assert_eq!(workloads.len(), 1, "one entry per analyzed workload");
    let wl = &workloads[0];
    assert_eq!(wl.get("name").and_then(Json::str), Some("compress"));
    let phase_names: Vec<&str> = wl
        .get("phases")
        .expect("phases array")
        .items()
        .iter()
        .map(|p| p.get("name").and_then(Json::str).expect("phase name"))
        .collect();
    assert_eq!(phase_names, ["build", "setup", "skip", "measure", "finalize"]);
    for p in wl.get("phases").unwrap().items() {
        assert!(p.get("wall_ms").and_then(Json::num).expect("wall_ms") >= 0.0);
        assert!(p.get("events_per_sec").and_then(Json::num).is_some());
    }
    let measure = wl
        .get("phases")
        .unwrap()
        .items()
        .iter()
        .find(|p| p.get("name").and_then(Json::str) == Some("measure"));
    assert_eq!(measure.unwrap().get("events").and_then(Json::num), Some(400_000.0));
    match wl.get("gauges") {
        Some(Json::Obj(gauges)) => {
            assert!(gauges.contains_key("tracker_instances_buffered"), "gauges: {gauges:?}");
            assert!(gauges.contains_key("reuse_entries_valid"), "gauges: {gauges:?}");
        }
        other => panic!("gauges must be an object, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--bench N` turns the same path into a median+IQR summary document.
/// The settle phase is disabled via the environment so exactly the
/// requested run count executes.
#[test]
fn bench_mode_writes_schema_v1_summary() {
    let dir = std::env::temp_dir().join(format!("instrep-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    let out = run_env(
        &[
            "--scale",
            "tiny",
            "--only",
            "compress",
            "--table",
            "1",
            "--jobs",
            "1",
            "--bench",
            "2",
            "--metrics-out",
            path.to_str().unwrap(),
        ],
        &[("INSTREP_BENCH_SETTLE_MS", "0")],
    );
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("bench"));
    assert_eq!(doc.get("runs").and_then(Json::num), Some(2.0));
    let wl = &doc.get("workloads").expect("workloads").items()[0];
    let measure = wl
        .get("phases")
        .expect("phases")
        .items()
        .iter()
        .find(|p| p.get("name").and_then(Json::str) == Some("measure"))
        .expect("measure phase summarized");
    assert!(measure.get("median_ms").and_then(Json::num).unwrap() > 0.0);
    assert!(measure.get("iqr_ms").and_then(Json::num).unwrap() >= 0.0);
    assert!(measure.get("median_events_per_sec").and_then(Json::num).unwrap() > 0.0);
    let min = measure.get("min_ms").and_then(Json::num).expect("min_ms present");
    let max = measure.get("max_ms").and_then(Json::num).expect("max_ms present");
    let avg = measure.get("avg_ms").and_then(Json::num).expect("avg_ms present");
    assert!(min > 0.0 && min <= avg && avg <= max, "min {min} <= avg {avg} <= max {max}");
    std::fs::remove_dir_all(&dir).ok();
}

/// With a settle interval, `--bench N` keeps re-running past N until the
/// minimum stops improving — the summary reports the actual run count.
#[test]
fn bench_settle_phase_extends_the_run_count() {
    let dir = std::env::temp_dir().join(format!("instrep-settle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    let out = run_env(
        &[
            "--scale",
            "tiny",
            "--only",
            "compress",
            "--table",
            "1",
            "--jobs",
            "1",
            "--bench",
            "1",
            "--metrics-out",
            path.to_str().unwrap(),
        ],
        &[("INSTREP_BENCH_SETTLE_MS", "200")],
    );
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    let runs = doc.get("runs").and_then(Json::num).expect("runs present");
    assert!(runs >= 2.0, "the first run sets a minimum, so settling must add a run; got {runs}");
    let err = stderr_of(&out);
    // The first run always sets a new minimum, so a 200ms settle window
    // forces at least one extra (settling) iteration on any machine.
    assert!(err.contains("(settling)"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Metrics collection must not change a byte of table stdout, at any
/// jobs count (the acceptance bar for the observability layer).
#[test]
fn metrics_out_leaves_stdout_byte_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut baseline: Option<Vec<u8>> = None;
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let path = dir.join(format!("m{jobs}.json"));
        let mut with_metrics_args = args.to_vec();
        with_metrics_args.extend_from_slice(&["--metrics-out", path.to_str().unwrap()]);
        let instrumented = run(&with_metrics_args);
        assert!(instrumented.status.success(), "stderr: {}", stderr_of(&instrumented));
        assert_eq!(
            plain.stdout, instrumented.stdout,
            "--metrics-out changed stdout at --jobs {jobs}"
        );
        match &baseline {
            None => baseline = Some(plain.stdout),
            Some(b) => assert_eq!(b, &plain.stdout, "stdout differs between jobs counts"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interval_flags_must_come_together() {
    for args in [&["--interval", "1000"] as &[&str], &["--interval-out", "i.jsonl"]] {
        let out = run(args);
        assert!(!out.status.success());
        let err = stderr_of(&out);
        assert!(err.contains("--interval and --interval-out must be given together"), "{err}");
    }
}

#[test]
fn zero_interval_fails_with_message() {
    let out = run(&["--interval", "0", "--interval-out", "i.jsonl"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--interval must be at least 1"), "stderr: {err}");
}

#[test]
fn bench_excludes_tracing_and_intervals() {
    let out = run(&["--bench", "2", "--metrics-out", "m.json", "--trace-out", "t.json"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--bench cannot be combined with --trace-out"), "stderr: {err}");
}

/// The help text is generated from the declarative flag table; pin it
/// in full so any flag addition, removal, or rewording shows up as a
/// reviewed diff.
#[test]
fn help_text_is_pinned() {
    let expected = "\
usage: instrep-repro [options]

Regenerates the tables and figures of \"An Empirical Analysis of
Instruction Repetition\" over the ten SPEC-'95-like workloads.
With no table or figure selection, everything is printed.

options:
  --scale SCALE            measurement scale: tiny, small, or full (default: small)
  --seed N                 workload input seed (default: 1998)
  --only BENCH             analyze one benchmark (see --list)
  --jobs N                 worker threads (default: available parallelism)
  --interp TIER            interpreter tier: fast (predecoded) or legacy (default: fast)
  --analysis TIER          analysis tier: fused (hot row) or split (oracle) (default: fused)
  --disable-observer NAME  drop one split-tier observer (repeatable; needs --analysis split)
  --table N                print table N (repeatable)
  --figure N               print figure N (repeatable)
  --steady-state           run the steady-state check (paper \u{a7}3)
  --input-check            run the input-sensitivity check (paper \u{a7}3)
  --csv PREFIX             write PREFIX_summary.csv and PREFIX_breakdowns.csv
  --metrics-out PATH       write the phase/throughput metrics JSON to PATH
  --bench N                repeat the analysis N times, summarize into --metrics-out
  --trace-out PATH         write a Chrome trace-event JSON document to PATH
  --interval N             sample each measurement every N instructions
  --interval-out PATH      write the interval series as JSONL to PATH
  --profile-out PATH       write the per-PC repetition profile JSON to PATH
  --profile-folded PATH    write flamegraph-ready collapsed stacks to PATH
  --loops-out PATH         write the loop-nest repetition profile JSON to PATH
  --loops-folded PATH      write loop-nest collapsed stacks to PATH
  --annotate BENCH         print BENCH's source annotated with repetition counts
  --top N                  hot sites listed per profile output (default: 10)
  --cache-dir PATH         memoize analysis results in a cache at PATH
  --cache-verify           recompute cache hits and fail on any mismatch
  --heartbeat-out PATH     stream live telemetry heartbeats as JSONL to PATH
  --heartbeat-ms N         wall-clock heartbeat period in milliseconds
  --telemetry-out PATH     write Prometheus-style telemetry exposition to PATH at exit
  --progress               live single-line progress on stderr (TTY only)
  --all                    print every table and figure (the default)
  --list                   list the benchmarks and their SPEC analogs
  --help                   print this help (also -h)
";
    let out = run(&["--help"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
    let alias = run(&["-h"]);
    assert!(alias.status.success());
    assert_eq!(String::from_utf8_lossy(&alias.stdout), expected, "-h diverges from --help");
}

#[test]
fn profile_flags_reject_missing_arguments() {
    for (args, msg) in [
        (&["--profile-out"] as &[&str], "--profile-out needs a path"),
        (&["--profile-folded"], "--profile-folded needs a path"),
        (&["--annotate"], "--annotate needs a benchmark name"),
        (&["--top"], "--top needs a site count"),
    ] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = stderr_of(&out);
        assert!(err.contains(msg), "{args:?} stderr: {err}");
    }
}

#[test]
fn zero_or_garbage_top_fails_with_message() {
    let out = run(&["--top", "0", "--profile-out", "p.json"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--top must be at least 1"), "{}", stderr_of(&out));
    let out = run(&["--top", "many", "--profile-out", "p.json"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("bad top count `many`"), "{}", stderr_of(&out));
}

#[test]
fn top_without_profile_output_fails_with_message() {
    let out = run(&["--top", "5"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(
        err.contains(
            "--top requires --profile-out, --profile-folded, --loops-out, \
             --loops-folded, or --annotate"
        ),
        "stderr: {err}"
    );
    // --top with only a loops output is legitimate (the redundancy
    // summary is a top-k).
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--top",
        "3",
        "--loops-out",
        std::env::temp_dir().join("instrep-top-loops.json").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    std::fs::remove_file(std::env::temp_dir().join("instrep-top-loops.json")).ok();
}

#[test]
fn bench_excludes_profiling() {
    let out = run(&["--bench", "2", "--metrics-out", "m.json", "--profile-out", "p.json"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--bench cannot be combined with --profile-out"), "stderr: {err}");
}

#[test]
fn unknown_annotate_benchmark_fails_with_message() {
    let out = run(&["--annotate", "no-such-bench"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown benchmark `no-such-bench` for --annotate"), "stderr: {err}");
    // A real benchmark excluded by --only is rejected too.
    let out = run(&["--only", "compress", "--annotate", "li"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--annotate li is excluded by the --only filter"), "stderr: {err}");
}

/// `--profile-out` must emit parseable JSON carrying the documented
/// schema version, per-workload totals that match Table 1's aggregates,
/// a top-N list bounded by `--top` and sorted by repeated count, and
/// function/line attribution on every site.
#[test]
fn profile_out_writes_schema_v1_json() {
    let dir = std::env::temp_dir().join(format!("instrep-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--top",
        "5",
        "--profile-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("profile file written");
    let doc = Json::parse(&text).expect("profile file is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("profile"));
    assert_eq!(doc.get("scale").and_then(Json::str), Some("tiny"));
    assert_eq!(doc.get("top").and_then(Json::num), Some(5.0));
    let workloads = doc.get("workloads").expect("workloads array").items();
    assert_eq!(workloads.len(), 1);
    let wl = &workloads[0];
    assert_eq!(wl.get("name").and_then(Json::str), Some("compress"));
    // Totals match the tiny-scale measurement window.
    assert_eq!(wl.get("dynamic_total").and_then(Json::num), Some(400_000.0));
    let repeated = wl.get("dynamic_repeated").and_then(Json::num).unwrap();
    assert!(repeated > 0.0);

    let top = wl.get("top_sites").expect("top_sites array").items();
    assert_eq!(top.len(), 5, "--top bounds the hot-site list");
    let top_repeats: Vec<f64> =
        top.iter().map(|s| s.get("repeated").and_then(Json::num).unwrap()).collect();
    assert!(top_repeats.windows(2).all(|w| w[0] >= w[1]), "not sorted: {top_repeats:?}");

    let sites = wl.get("sites").expect("sites array").items();
    let exec_sum: f64 = sites.iter().map(|s| s.get("exec").and_then(Json::num).unwrap()).sum();
    let rep_sum: f64 = sites.iter().map(|s| s.get("repeated").and_then(Json::num).unwrap()).sum();
    assert_eq!(exec_sum, 400_000.0, "per-PC exec sums to the aggregate");
    assert_eq!(rep_sum, repeated, "per-PC repeated sums to the aggregate");
    for s in sites {
        assert!(s.get("function").and_then(Json::str).is_some());
        assert!(s.get("line").and_then(Json::num).is_some());
        assert!(s.get("class").and_then(Json::str).is_some());
        assert!(s.get("pc").and_then(Json::str).unwrap().starts_with("0x"));
    }
    // Compiled code carries line provenance on most sites.
    let with_lines =
        sites.iter().filter(|s| s.get("line").and_then(Json::num) != Some(0.0)).count();
    assert!(with_lines * 2 > sites.len(), "{with_lines}/{} sites have lines", sites.len());

    // Rollups conserve the totals too.
    for (key, name_key) in [("functions", "name"), ("classes", "class")] {
        let groups = wl.get(key).expect(key).items();
        let sum: f64 = groups.iter().map(|g| g.get("exec").and_then(Json::num).unwrap()).sum();
        assert_eq!(sum, 400_000.0, "{key} rollup conserves exec");
        assert!(groups.iter().all(|g| g.get(name_key).and_then(Json::str).is_some()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--profile-folded` must emit whitespace-clean collapsed stacks with
/// `executed` and `repeated` weightings whose counts sum to the
/// aggregates.
#[test]
fn profile_folded_writes_collapsed_stacks() {
    let dir = std::env::temp_dir().join(format!("instrep-folded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.folded");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--profile-folded",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("folded file written");
    assert!(!text.is_empty());
    let mut exec_sum = 0u64;
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!stack.contains(char::is_whitespace), "whitespace in stack: {line}");
        let n: u64 = count.parse().expect("count is an integer");
        assert!(n > 0, "zero-weight line: {line}");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 4, "workload;weight;function;pc@line: {line}");
        assert_eq!(frames[0], "compress");
        if frames[1] == "executed" {
            exec_sum += n;
        } else {
            assert_eq!(frames[1], "repeated", "bad weight frame: {line}");
        }
    }
    assert_eq!(exec_sum, 400_000, "executed stacks sum to the measurement window");
    std::fs::remove_dir_all(&dir).ok();
}

/// Profiling must not change a byte of table stdout, and all three
/// profile outputs must be byte-identical across jobs counts.
#[test]
fn profiling_is_deterministic_and_leaves_stdout_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-prof-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut baselines: Option<(Vec<u8>, String, String, Vec<u8>)> = None;
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let json = dir.join(format!("p{jobs}.json"));
        let folded = dir.join(format!("p{jobs}.folded"));
        let mut profiled_args = args.to_vec();
        profiled_args.extend_from_slice(&[
            "--profile-out",
            json.to_str().unwrap(),
            "--profile-folded",
            folded.to_str().unwrap(),
            "--annotate",
            "compress",
        ]);
        let profiled = run(&profiled_args);
        assert!(profiled.status.success(), "stderr: {}", stderr_of(&profiled));
        // Stdout = tables (identical to the plain run) + the annotate
        // view appended after them.
        assert!(
            profiled.stdout.starts_with(&plain.stdout),
            "profiling changed the tables at --jobs {jobs}"
        );
        let json_text = std::fs::read_to_string(&json).unwrap();
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        match &baselines {
            None => {
                baselines = Some((plain.stdout, json_text, folded_text, profiled.stdout));
            }
            Some((b_plain, b_json, b_folded, b_annotated)) => {
                assert_eq!(b_plain, &plain.stdout, "stdout differs between jobs counts");
                assert_eq!(b_json, &json_text, "profile JSON differs between jobs counts");
                assert_eq!(b_folded, &folded_text, "folded stacks differ between jobs counts");
                assert_eq!(
                    b_annotated, &profiled.stdout,
                    "annotate view differs between jobs counts"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loops_flags_reject_missing_arguments() {
    for (args, msg) in [
        (&["--loops-out"] as &[&str], "--loops-out needs a path"),
        (&["--loops-folded"], "--loops-folded needs a path"),
    ] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = stderr_of(&out);
        assert!(err.contains(msg), "{args:?} stderr: {err}");
    }
}

#[test]
fn bench_excludes_loops_outputs() {
    let out = run(&["--bench", "2", "--metrics-out", "m.json", "--loops-out", "l.json"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--bench cannot be combined with --loops-out"), "stderr: {err}");
}

#[test]
fn list_includes_the_loop_diversity_families() {
    let out = run(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["interp", "stencil"] {
        assert!(stdout.contains(name), "--list missing {name}: {stdout}");
    }
}

/// `--loops-out` must emit parseable JSON carrying the documented schema
/// version, per-loop records with function/line/depth attribution, depth
/// rollups that conserve the measured total, and a redundancy summary
/// consistent with the aggregates. The stencil family must show its full
/// four-deep nest.
#[test]
fn loops_out_writes_schema_v1_json() {
    let dir = std::env::temp_dir().join(format!("instrep-loops-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("loops.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "stencil",
        "--table",
        "1",
        "--top",
        "3",
        "--loops-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("loops file written");
    let doc = Json::parse(&text).expect("loops file is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("loops"));
    assert_eq!(doc.get("scale").and_then(Json::str), Some("tiny"));
    assert_eq!(doc.get("top").and_then(Json::num), Some(3.0));
    let workloads = doc.get("workloads").expect("workloads array").items();
    assert_eq!(workloads.len(), 1);
    let wl = &workloads[0];
    assert_eq!(wl.get("name").and_then(Json::str), Some("stencil"));
    assert_eq!(wl.get("dynamic_total").and_then(Json::num), Some(400_000.0));
    let repeated = wl.get("dynamic_repeated").and_then(Json::num).unwrap();
    assert!(repeated > 0.0);
    assert!(wl.get("max_depth").and_then(Json::num).unwrap() >= 4.0, "stencil nests four deep");
    assert!(wl.get("back_edges").and_then(Json::num).unwrap() > 0.0);

    let loops = wl.get("loops").expect("loops array").items();
    assert!(!loops.is_empty());
    for l in loops {
        assert!(l.get("header").and_then(Json::str).unwrap().starts_with("0x"));
        assert!(l.get("function").and_then(Json::str).is_some());
        assert!(l.get("depth").and_then(Json::num).unwrap() >= 1.0);
        assert!(l.get("trips").and_then(Json::num).unwrap() > 0.0);
        let exec = l.get("exec").and_then(Json::num).unwrap();
        let rep = l.get("repeated").and_then(Json::num).unwrap();
        assert!(rep <= exec, "repeated {rep} > exec {exec}");
        let lo = l.get("line_lo").and_then(Json::num).unwrap();
        let hi = l.get("line_hi").and_then(Json::num).unwrap();
        assert!(lo <= hi, "line span inverted: {lo}..{hi}");
    }

    // Depth rollups (depth 0 = outside any loop) tile the measurement.
    let depths = wl.get("depths").expect("depths array").items();
    let no_loop = wl.get("no_loop_exec").and_then(Json::num).unwrap();
    let depth_exec: f64 = depths.iter().map(|d| d.get("exec").and_then(Json::num).unwrap()).sum();
    assert_eq!(depth_exec, 400_000.0, "depth rollups tile the window");

    // Class rollups cover the loop-attributed share with all six
    // classes named.
    let classes = wl.get("classes").expect("classes array").items();
    assert_eq!(classes.len(), 6);
    let class_exec: f64 = classes.iter().map(|c| c.get("exec").and_then(Json::num).unwrap()).sum();
    assert_eq!(class_exec + no_loop, 400_000.0, "class rollups cover the loop share");

    let red = wl.get("redundancy").expect("redundancy object");
    assert_eq!(red.get("total_repeated").and_then(Json::num), Some(repeated));
    assert_eq!(red.get("top_k").and_then(Json::num), Some(3.0));
    let loop_rep = red.get("loop_repeated").and_then(Json::num).unwrap();
    let top_rep = red.get("top_k_repeated").and_then(Json::num).unwrap();
    assert!(top_rep <= loop_rep && loop_rep <= repeated);
    let cov = red.get("top_k_coverage").and_then(Json::num).unwrap();
    assert!((0.0..=1.0).contains(&cov), "coverage out of range: {cov}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--loops-folded` must emit whitespace-clean collapsed stacks keyed by
/// loop-nest path whose `executed` counts tile the measurement window.
#[test]
fn loops_folded_writes_collapsed_stacks() {
    let dir = std::env::temp_dir().join(format!("instrep-loops-folded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("loops.folded");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "stencil",
        "--table",
        "1",
        "--loops-folded",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("folded file written");
    assert!(!text.is_empty());
    let mut exec_sum = 0u64;
    let mut max_frames = 0;
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!stack.contains(char::is_whitespace), "whitespace in stack: {line}");
        let n: u64 = count.parse().expect("count is an integer");
        assert!(n > 0, "zero-weight line: {line}");
        let frames: Vec<&str> = stack.split(';').collect();
        assert!(frames.len() >= 3, "workload;weight;nest...: {line}");
        assert_eq!(frames[0], "stencil");
        max_frames = max_frames.max(frames.len());
        if frames[1] == "executed" {
            exec_sum += n;
        } else {
            assert_eq!(frames[1], "repeated", "bad weight frame: {line}");
        }
    }
    assert_eq!(exec_sum, 400_000, "executed stacks tile the measurement window");
    // The four-deep nest shows as at least workload;weight;l1;l2;l3;l4.
    assert!(max_frames >= 6, "no deep stacks: max {max_frames} frames");
    std::fs::remove_dir_all(&dir).ok();
}

/// The loop probe must not change a byte of table stdout, and both loop
/// outputs must be byte-identical across jobs counts and across the
/// fused/split analysis tiers.
#[test]
fn loop_outputs_are_deterministic_and_leave_stdout_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-loops-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut baselines: Option<(Vec<u8>, String, String)> = None;
    for (jobs, tier) in [("1", "fused"), ("4", "fused"), ("1", "split"), ("4", "split")] {
        let args = [
            "--scale",
            "tiny",
            "--only",
            "interp",
            "--table",
            "1",
            "--jobs",
            jobs,
            "--analysis",
            tier,
        ];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let json = dir.join(format!("l{jobs}{tier}.json"));
        let folded = dir.join(format!("l{jobs}{tier}.folded"));
        let mut probed_args = args.to_vec();
        probed_args.extend_from_slice(&[
            "--loops-out",
            json.to_str().unwrap(),
            "--loops-folded",
            folded.to_str().unwrap(),
        ]);
        let probed = run(&probed_args);
        assert!(probed.status.success(), "stderr: {}", stderr_of(&probed));
        assert_eq!(
            plain.stdout, probed.stdout,
            "loop probe changed stdout at --jobs {jobs} --analysis {tier}"
        );
        let json_text = std::fs::read_to_string(&json).unwrap();
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        match &baselines {
            None => baselines = Some((plain.stdout, json_text, folded_text)),
            Some((b_plain, b_json, b_folded)) => {
                assert_eq!(b_plain, &plain.stdout, "stdout differs (jobs {jobs}, tier {tier})");
                assert_eq!(b_json, &json_text, "loops JSON differs (jobs {jobs}, tier {tier})");
                assert_eq!(b_folded, &folded_text, "loop stacks differ (jobs {jobs}, tier {tier})");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every pair of spans on one lane must nest or be disjoint — the
/// guarantee the LIFO close discipline makes.
fn assert_strictly_nested(tid: f64, spans: &[(f64, f64)]) {
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            let disjoint = a.1 <= b.0 || b.1 <= a.0;
            let a_in_b = b.0 <= a.0 && a.1 <= b.1;
            let b_in_a = a.0 <= b.0 && b.1 <= a.1;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans {a:?} and {b:?} on lane {tid} partially overlap"
            );
        }
    }
}

/// `--trace-out` must emit a schema-v1 Chrome trace-event document with
/// one span per pipeline phase of every workload, build and render
/// spans on the driver lane, strictly nested spans per lane, and
/// chronological phase timestamps in file order.
#[test]
fn trace_out_writes_schema_v1_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("instrep-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = run(&[
        "--scale",
        "tiny",
        "--table",
        "1",
        "--jobs",
        "2",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::str), Some("trace"));
    let events = doc.get("traceEvents").expect("traceEvents array").items();

    // Lane names cover the driver and both workers.
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::str) == Some("thread_name"))
        .map(|e| e.get("args").unwrap().get("name").and_then(Json::str).unwrap())
        .collect();
    for name in ["main", "worker-0", "worker-1"] {
        assert!(thread_names.contains(&name), "missing thread_name {name}: {thread_names:?}");
    }

    let spans: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(Json::str) == Some("X")).collect();
    let named = |cat: &str, name: &str| {
        spans
            .iter()
            .filter(|s| {
                s.get("cat").and_then(Json::str) == Some(cat)
                    && s.get("name").and_then(Json::str) == Some(name)
            })
            .count()
    };
    // One span per pipeline phase per workload (10 workloads at tiny).
    for phase in ["setup", "skip", "measure", "finalize"] {
        assert_eq!(named("phase", phase), 10, "phase {phase}");
    }
    // The driver lane wraps compile + assemble per workload, the
    // analysis fan-out, and table rendering.
    assert_eq!(named("build", "compile: compress"), 1);
    assert_eq!(named("build", "assemble: compress"), 1);
    assert_eq!(named("phase", "analyze"), 1);
    assert_eq!(named("report", "render"), 1);
    assert_eq!(named("workload", "compress"), 1);

    // Every workload span runs on a worker lane, and with 2 jobs both
    // workers take work.
    let worker_tids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.get("cat").and_then(Json::str) == Some("workload"))
        .map(|s| s.get("tid").and_then(Json::num).unwrap() as u64)
        .collect();
    assert!(worker_tids.iter().all(|t| *t >= 1), "workload spans on driver lane: {worker_tids:?}");
    assert_eq!(worker_tids.len(), 2, "both workers traced: {worker_tids:?}");

    // Per lane: strict nesting, and phase spans chronological in file
    // order (workers claim jobs in increasing cursor order).
    let tids: std::collections::BTreeSet<u64> =
        spans.iter().map(|s| s.get("tid").and_then(Json::num).unwrap() as u64).collect();
    for tid in tids {
        let lane: Vec<&&Json> =
            spans.iter().filter(|s| s.get("tid").and_then(Json::num) == Some(tid as f64)).collect();
        let intervals: Vec<(f64, f64)> = lane
            .iter()
            .map(|s| {
                let ts = s.get("ts").and_then(Json::num).unwrap();
                (ts, ts + s.get("dur").and_then(Json::num).unwrap())
            })
            .collect();
        assert_strictly_nested(tid as f64, &intervals);
        let phase_ts: Vec<f64> = lane
            .iter()
            .filter(|s| s.get("cat").and_then(Json::str) == Some("phase"))
            .map(|s| s.get("ts").and_then(Json::num).unwrap())
            .collect();
        assert!(
            phase_ts.windows(2).all(|w| w[0] <= w[1]),
            "phase timestamps not monotonic on lane {tid}: {phase_ts:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--interval-out` must emit a JSONL series whose header carries the
/// schema version and whose windows close at exact multiples of the
/// interval, with only the final window flagged partial.
#[test]
fn interval_out_writes_jsonl_series() {
    let dir = std::env::temp_dir().join(format!("instrep-interval-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("series.jsonl");
    // 400_000 measured instructions / 7000 = 57 full windows + a 1000-
    // instruction partial tail.
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--interval",
        "7000",
        "--interval-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("interval file written");
    let lines: Vec<Json> =
        text.lines().map(|l| Json::parse(l).expect("each line is valid JSON")).collect();
    let header = &lines[0];
    assert_eq!(header.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(header.get("kind").and_then(Json::str), Some("intervals"));
    assert_eq!(header.get("scale").and_then(Json::str), Some("tiny"));
    assert_eq!(header.get("interval").and_then(Json::num), Some(7000.0));

    let windows = &lines[1..];
    assert_eq!(windows.len(), 58, "57 full windows + 1 partial");
    let mut insns_total = 0.0;
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.get("workload").and_then(Json::str), Some("compress"));
        assert_eq!(w.get("window").and_then(Json::num), Some((i + 1) as f64));
        let end = w.get("end").and_then(Json::num).unwrap();
        let insns = w.get("insns").and_then(Json::num).unwrap();
        let partial = w.get("partial").and_then(Json::bool).unwrap();
        insns_total += insns;
        if i < windows.len() - 1 {
            assert!(!partial, "window {} partial", i + 1);
            assert_eq!(insns, 7000.0);
            assert_eq!(end % 7000.0, 0.0, "window {} ends at {end}", i + 1);
        } else {
            assert!(partial, "final window not flagged partial");
            assert_eq!(insns, 1000.0);
        }
        assert!(w.get("repeat_frac").and_then(Json::num).unwrap() <= 1.0);
        assert!(w.get("reuse_hit_frac").and_then(Json::num).is_some());
        assert!(w.get("occupancy").and_then(Json::num).is_some());
        assert!(w.get("unique_growth").and_then(Json::num).is_some());
    }
    assert_eq!(insns_total, 400_000.0, "windows tile the whole measurement");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tracing and interval sampling must not change a byte of table
/// stdout at any jobs count, and the interval windows themselves must
/// be identical across jobs counts (full determinism).
#[test]
fn tracing_leaves_stdout_byte_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-trace-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut baseline_stdout: Option<Vec<u8>> = None;
    let mut baseline_windows: Option<String> = None;
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let trace = dir.join(format!("t{jobs}.json"));
        let series = dir.join(format!("i{jobs}.jsonl"));
        let mut traced_args = args.to_vec();
        traced_args.extend_from_slice(&[
            "--trace-out",
            trace.to_str().unwrap(),
            "--interval",
            "1000",
            "--interval-out",
            series.to_str().unwrap(),
        ]);
        let traced = run(&traced_args);
        assert!(traced.status.success(), "stderr: {}", stderr_of(&traced));
        assert_eq!(plain.stdout, traced.stdout, "tracing changed stdout at --jobs {jobs}");
        // The window lines (everything after the header, which records
        // the jobs count) are deterministic across jobs counts.
        let text = std::fs::read_to_string(&series).unwrap();
        let windows = text.split_once('\n').expect("header + windows").1.to_string();
        assert!(!windows.is_empty());
        match (&baseline_stdout, &baseline_windows) {
            (None, _) => {
                baseline_stdout = Some(plain.stdout);
                baseline_windows = Some(windows);
            }
            (Some(b), Some(w)) => {
                assert_eq!(b, &plain.stdout, "stdout differs between jobs counts");
                assert_eq!(w, &windows, "interval windows differ between jobs counts");
            }
            _ => unreachable!(),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_flags_reject_bad_usage() {
    let out = run(&["--cache-dir"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--cache-dir needs a path"), "{}", stderr_of(&out));
    let out = run(&["--cache-verify"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--cache-verify requires --cache-dir"), "{}", stderr_of(&out));
    let out = run(&["--bench", "2", "--metrics-out", "m.json", "--cache-dir", "c"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("--bench cannot be combined with --cache-dir"),
        "{}",
        stderr_of(&out)
    );
}

/// `--cache-dir` must never change a byte of table stdout — not on the
/// populating run, not on warm runs, not at any jobs count — and a warm
/// run must execute zero measured instructions: its metrics phases are
/// exactly `build` + `cache` with no events and no simulator gauges.
#[test]
fn cached_runs_are_byte_identical_and_execute_nothing() {
    let dir = std::env::temp_dir().join(format!("instrep-cache-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let mut baseline: Option<Vec<u8>> = None;
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let mut cached_args = args.to_vec();
        cached_args.extend_from_slice(&["--cache-dir", cache.to_str().unwrap()]);
        // First cached run at --jobs 1 populates; every later run hits.
        let cold = run(&cached_args);
        assert!(cold.status.success(), "stderr: {}", stderr_of(&cold));
        assert_eq!(plain.stdout, cold.stdout, "--cache-dir changed stdout at --jobs {jobs}");
        let warm = run(&cached_args);
        assert!(warm.status.success(), "stderr: {}", stderr_of(&warm));
        assert_eq!(plain.stdout, warm.stdout, "warm cache changed stdout at --jobs {jobs}");

        let mpath = dir.join(format!("m{jobs}.json"));
        let mut metrics_args = cached_args.clone();
        metrics_args.extend_from_slice(&["--metrics-out", mpath.to_str().unwrap()]);
        let measured = run(&metrics_args);
        assert!(measured.status.success(), "stderr: {}", stderr_of(&measured));
        assert_eq!(plain.stdout, measured.stdout, "metrics+cache changed stdout");
        let doc = Json::parse(&std::fs::read_to_string(&mpath).unwrap()).expect("valid JSON");
        let wl = &doc.get("workloads").expect("workloads").items()[0];
        let phases = wl.get("phases").expect("phases").items();
        let names: Vec<&str> =
            phases.iter().map(|p| p.get("name").and_then(Json::str).unwrap()).collect();
        assert_eq!(names, ["build", "cache"], "a hit must not run any pipeline phase");
        let events: f64 = phases.iter().map(|p| p.get("events").and_then(Json::num).unwrap()).sum();
        assert_eq!(events, 0.0, "a hit executes zero measured instructions");
        match wl.get("gauges") {
            Some(Json::Obj(gauges)) => {
                assert!(gauges.is_empty(), "no simulator ran, so no gauges: {gauges:?}");
            }
            other => panic!("gauges must be an object, got {other:?}"),
        }

        match &baseline {
            None => baseline = Some(plain.stdout),
            Some(b) => assert_eq!(b, &plain.stdout, "stdout differs between jobs counts"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--cache-verify` must recompute hits and fail loudly on an entry
/// that parses cleanly but carries the wrong analysis — the case the
/// checksum alone cannot catch.
#[test]
fn cache_verify_catches_a_poisoned_entry() {
    use std::hash::Hasher;

    use instrep_core::{FxHasher, ENTRY_PAYLOAD_OFFSET};

    let dir = std::env::temp_dir().join(format!("instrep-cache-poison-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let args = [
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--cache-dir",
        cache.to_str().unwrap(),
    ];
    let cold = run(&args);
    assert!(cold.status.success(), "stderr: {}", stderr_of(&cold));

    // Poison the one entry: flip a payload byte and recompute the
    // trailing checksum so the file still parses as a valid entry.
    let entry = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "bin"))
        .expect("cold run stored an entry");
    let mut bytes = std::fs::read(&entry).unwrap();
    bytes[ENTRY_PAYLOAD_OFFSET + 2] ^= 0xff;
    let payload_end = bytes.len() - 8;
    let mut h = FxHasher::default();
    h.write(&bytes[ENTRY_PAYLOAD_OFFSET..payload_end]);
    let sum = h.finish().to_le_bytes();
    bytes[payload_end..].copy_from_slice(&sum);
    std::fs::write(&entry, &bytes).unwrap();

    // A plain warm run trusts the well-formed entry...
    let warm = run(&args);
    assert!(warm.status.success(), "stderr: {}", stderr_of(&warm));
    // ...but verify mode recomputes, catches the lie, and fails.
    let mut verify_args = args.to_vec();
    verify_args.push("--cache-verify");
    let verified = run(&verify_args);
    assert!(!verified.status.success(), "--cache-verify accepted a poisoned entry");
    let err = stderr_of(&verified);
    assert!(err.contains("cache verify failed for compress"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_interp_tier_fails_with_message() {
    let out = run(&["--interp", "jit"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown interpreter tier `jit`"), "stderr: {err}");
    let out = run(&["--interp"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--interp needs a tier"), "{}", stderr_of(&out));
}

/// The legacy interpreter must print the same bytes as the predecoded
/// tier — tier selection is a performance knob, never a result knob.
#[test]
fn interp_tiers_print_byte_identical_tables() {
    let args = ["--scale", "tiny", "--only", "compress", "--jobs", "2"];
    let fast = run(&args);
    assert!(fast.status.success(), "stderr: {}", stderr_of(&fast));
    for tier in ["fast", "legacy"] {
        let mut tier_args = args.to_vec();
        tier_args.extend_from_slice(&["--interp", tier]);
        let out = run(&tier_args);
        assert!(out.status.success(), "stderr: {}", stderr_of(&out));
        assert_eq!(fast.stdout, out.stdout, "--interp {tier} changed table stdout");
    }
}

#[test]
fn unknown_analysis_tier_fails_with_message() {
    let out = run(&["--analysis", "quantum"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown analysis tier `quantum`"), "stderr: {err}");
    let out = run(&["--analysis"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--analysis needs a tier"), "{}", stderr_of(&out));
}

#[test]
fn disable_observer_rejects_bad_usage() {
    let out = run(&["--analysis", "split", "--disable-observer", "vibes"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown observer `vibes`"), "stderr: {err}");
    assert!(err.contains("tracker"), "error lists the valid names: {err}");
    // A partial observer set only makes sense on the split tier — but
    // under the `split-analysis` feature the default tier *is* split,
    // so the flag is legitimate without `--analysis split` there.
    if cfg!(feature = "split-analysis") {
        let out = run(&[
            "--scale",
            "tiny",
            "--only",
            "compress",
            "--table",
            "1",
            "--jobs",
            "2",
            "--disable-observer",
            "reuse",
        ]);
        assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    } else {
        let out = run(&["--disable-observer", "reuse"]);
        assert!(!out.status.success());
        let err = stderr_of(&out);
        assert!(err.contains("--disable-observer requires --analysis split"), "stderr: {err}");
    }
}

/// The split (oracle) observers must print the same bytes as the fused
/// hot row, at every jobs count — the acceptance bar for the fusion.
#[test]
fn analysis_tiers_print_byte_identical_tables() {
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--jobs", jobs];
        let fused = run(&args);
        assert!(fused.status.success(), "stderr: {}", stderr_of(&fused));
        for tier in ["fused", "split"] {
            let mut tier_args = args.to_vec();
            tier_args.extend_from_slice(&["--analysis", tier]);
            let out = run(&tier_args);
            assert!(out.status.success(), "stderr: {}", stderr_of(&out));
            assert_eq!(
                fused.stdout, out.stdout,
                "--analysis {tier} changed table stdout at --jobs {jobs}"
            );
        }
    }
}

/// Disabling an observer zeroes its table without perturbing the rest
/// of the run (the mechanism bench.sh uses to price each observer).
#[test]
fn disable_observer_runs_and_zeroes_its_section() {
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "10",
        "--analysis",
        "split",
        "--disable-observer",
        "reuse",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 10"), "stdout: {stdout}");
    assert!(stdout.contains(" 0.0"), "reuse rates zeroed: {stdout}");
}

#[test]
fn tiny_parallel_table_run_succeeds() {
    let out = run(&["--scale", "tiny", "--table", "1", "--jobs", "2"]);
    let err = stderr_of(&out);
    assert!(out.status.success(), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "stdout: {stdout}");
    // Table-only selection must not drag in the other reports.
    assert!(!stdout.contains("Table 2"), "stdout: {stdout}");
}

#[test]
fn heartbeat_flags_must_come_together() {
    for args in [&["--heartbeat-out", "hb.jsonl"] as &[&str], &["--heartbeat-ms", "10"]] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = stderr_of(&out);
        assert!(err.contains("--heartbeat-out and --heartbeat-ms must be given together"), "{err}");
    }
}

#[test]
fn zero_or_garbage_heartbeat_period_fails_with_message() {
    let out = run(&["--heartbeat-out", "hb.jsonl", "--heartbeat-ms", "0"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--heartbeat-ms must be at least 1"), "{}", stderr_of(&out));
    let out = run(&["--heartbeat-out", "hb.jsonl", "--heartbeat-ms", "soon"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("bad heartbeat period `soon`"), "{}", stderr_of(&out));
}

#[test]
fn bench_excludes_telemetry_outputs() {
    for extra in [
        &["--heartbeat-out", "hb.jsonl", "--heartbeat-ms", "10"] as &[&str],
        &["--telemetry-out", "t.txt"],
        &["--progress"],
    ] {
        let mut args = vec!["--bench", "2", "--metrics-out", "m.json"];
        args.extend_from_slice(extra);
        let out = run(&args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = stderr_of(&out);
        assert!(
            err.contains(
                "--bench cannot be combined with --heartbeat-out, --telemetry-out, or --progress"
            ),
            "{args:?} stderr: {err}"
        );
    }
}

/// `--progress` must degrade to a no-op when stderr is not a terminal
/// (as in this test harness): the run succeeds and stderr carries no
/// carriage-return progress repaints.
#[test]
fn progress_degrades_silently_without_a_tty() {
    let out = run(&["--scale", "tiny", "--only", "compress", "--table", "1", "--progress"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(!err.contains('\r'), "piped stderr must not see progress repaints: {err:?}");
    assert!(!err.contains("telemetry:"), "piped stderr must not see progress lines: {err:?}");
}

/// The full telemetry stack — heartbeat stream, exposition file, and
/// progress flag — must not change a byte of table stdout, at any jobs
/// count (the acceptance bar for the observability layer).
#[test]
fn telemetry_outputs_leave_stdout_byte_identical() {
    let dir = std::env::temp_dir().join(format!("instrep-telem-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for jobs in ["1", "4"] {
        let args = ["--scale", "tiny", "--only", "compress", "--table", "1", "--jobs", jobs];
        let plain = run(&args);
        assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
        let hb = dir.join(format!("hb{jobs}.jsonl"));
        let telem = dir.join(format!("telem{jobs}.txt"));
        let mut instrumented_args = args.to_vec();
        instrumented_args.extend_from_slice(&[
            "--heartbeat-out",
            hb.to_str().unwrap(),
            "--heartbeat-ms",
            "10",
            "--telemetry-out",
            telem.to_str().unwrap(),
            "--progress",
        ]);
        let instrumented = run(&instrumented_args);
        assert!(instrumented.status.success(), "stderr: {}", stderr_of(&instrumented));
        assert_eq!(
            plain.stdout, instrumented.stdout,
            "telemetry outputs changed stdout at --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The heartbeat stream must be parseable JSONL: a schema-v1 header,
/// then at least one beat with increasing sequence numbers and per-lane
/// instruction counts that never move backwards.
#[test]
fn heartbeat_stream_is_schema_v1_jsonl_with_monotone_lanes() {
    let dir = std::env::temp_dir().join(format!("instrep-heartbeat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hb.jsonl");
    let out = run(&[
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--jobs",
        "2",
        "--heartbeat-out",
        path.to_str().unwrap(),
        "--heartbeat-ms",
        "10",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).expect("heartbeat file written");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad heartbeat line ({e:?}): {l}")))
        .collect();
    assert!(lines.len() >= 2, "expected a header plus at least one beat: {text}");
    let header = &lines[0];
    assert_eq!(header.get("schema_version").and_then(Json::num), Some(1.0));
    assert_eq!(header.get("kind").and_then(Json::str), Some("heartbeats"));
    assert_eq!(header.get("period_ms").and_then(Json::num), Some(10.0));
    let mut last_seq = 0.0;
    let mut last_icount: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut last_elapsed = 0.0;
    for beat in &lines[1..] {
        assert_eq!(beat.get("kind").and_then(Json::str), Some("heartbeat"));
        let seq = beat.get("seq").and_then(Json::num).expect("seq");
        assert!(seq > last_seq, "sequence numbers must increase: {seq} after {last_seq}");
        last_seq = seq;
        let elapsed = beat.get("elapsed_ms").and_then(Json::num).expect("elapsed_ms");
        assert!(elapsed >= last_elapsed, "elapsed must not go backwards");
        last_elapsed = elapsed;
        assert!(beat.get("counters").is_some(), "beats carry a counters object");
        for lane in beat.get("lanes").expect("lanes array").items() {
            let id = lane.get("lane").and_then(Json::num).expect("lane id") as u64;
            let icount = lane.get("icount").and_then(Json::num).expect("icount");
            assert!(icount >= 0.0);
            let prev = last_icount.insert(id, icount).unwrap_or(0.0);
            assert!(icount >= prev, "lane {id} icount moved backwards: {icount} after {prev}");
            assert!(lane.get("phase").and_then(Json::str).is_some(), "lanes carry a phase");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A warm-cache run with `--telemetry-out` must expose nonzero hit
/// counters and lookup-latency histogram counts in the exposition file.
#[test]
fn warm_cache_exposition_shows_hits_and_lookup_latency() {
    let dir = std::env::temp_dir().join(format!("instrep-telem-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let telem = dir.join("telem.txt");
    let base = [
        "--scale",
        "tiny",
        "--only",
        "compress",
        "--table",
        "1",
        "--cache-dir",
        cache_dir.to_str().unwrap(),
    ];
    let cold = run(&base);
    assert!(cold.status.success(), "stderr: {}", stderr_of(&cold));
    let mut warm_args = base.to_vec();
    warm_args.extend_from_slice(&["--telemetry-out", telem.to_str().unwrap()]);
    let warm = run(&warm_args);
    assert!(warm.status.success(), "stderr: {}", stderr_of(&warm));
    let text = std::fs::read_to_string(&telem).expect("exposition file written");
    let metric = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
            .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
    };
    assert!(metric("instrep_cache_hit") > 0.0, "warm run must record cache hits");
    assert!(metric("instrep_cache_lookup_ns_count") > 0.0, "lookups must land in the histogram");
    assert!(metric("instrep_cache_miss") == 0.0, "warm run must not miss");
    assert!(text.contains("# TYPE instrep_cache_lookup_ns histogram"), "histogram typed: {text}");
    std::fs::remove_dir_all(&dir).ok();
}
