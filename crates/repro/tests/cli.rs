//! Smoke tests for the `instrep-repro` command-line interface: argument
//! errors must exit non-zero with a clear message, and a real (tiny,
//! parallel) run must succeed.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_instrep-repro"))
        .args(args)
        .output()
        .expect("spawn instrep-repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_scale_fails_with_message() {
    let out = run(&["--scale", "galactic"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown scale `galactic`"), "stderr: {err}");
}

#[test]
fn missing_seed_value_fails_with_message() {
    let out = run(&["--seed"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--seed needs a value"), "stderr: {err}");
}

#[test]
fn unknown_only_benchmark_fails_with_message() {
    let out = run(&["--only", "no-such-bench"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("no benchmark matches --only filter"), "stderr: {err}");
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = run(&["--frobnicate"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown argument `--frobnicate`"), "stderr: {err}");
}

#[test]
fn zero_jobs_fails_with_message() {
    let out = run(&["--jobs", "0"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--jobs must be at least 1"), "stderr: {err}");
}

#[test]
fn tiny_parallel_table_run_succeeds() {
    let out = run(&["--scale", "tiny", "--table", "1", "--jobs", "2"]);
    let err = stderr_of(&out);
    assert!(out.status.success(), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "stdout: {stdout}");
    // Table-only selection must not drag in the other reports.
    assert!(!stdout.contains("Table 2"), "stdout: {stdout}");
}
