//! Minimal strict JSON parser used by the CLI tests to check that
//! `--metrics-out` documents are well-formed (the workspace is hermetic,
//! so no serde). Supports the full JSON grammar except `\uXXXX` escapes
//! beyond the Basic Latin range, which the metrics emitter never
//! produces.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicates rejected).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected byte `{}` at offset {}", c as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                c if c < 0x20 => return Err("raw control character in string".to_string()),
                _ => {
                    // Consume one UTF-8 scalar (input came from a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }
}
