//! Golden-snapshot tests: the full `instrep-repro` table output for two
//! pinned workloads is compared byte-for-byte against files under
//! `tests/golden/`. Any intended change to a table layout, an analysis,
//! or a workload shows up here as a diff to review; regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p instrep-repro --test golden
//! ```
//!
//! Only stdout is pinned (stderr carries wall-clock timings). The runs
//! use `--jobs 2`, and one case is re-run at `--jobs 1` to hold the
//! pipeline to its determinism contract: identical bytes for every jobs
//! count.

use std::path::PathBuf;
use std::process::Command;

/// Pinned snapshot cases: golden file stem → full CLI argument list.
const CASES: &[(&str, &[&str])] = &[
    ("compress_tiny", &["--scale", "tiny", "--seed", "1998", "--jobs", "2", "--only", "compress"]),
    ("li_tiny", &["--scale", "tiny", "--seed", "1998", "--jobs", "2", "--only", "li"]),
    // The loop-diversity families: one flat dispatch loop and one
    // four-deep nest, pinned the same way as the Table-1 workloads.
    ("interp_tiny", &["--scale", "tiny", "--seed", "1998", "--jobs", "2", "--only", "interp"]),
    ("stencil_tiny", &["--scale", "tiny", "--seed", "1998", "--jobs", "2", "--only", "stencil"]),
    // The annotated source view: per-line exec/repeat attribution for
    // one pinned workload (--table 1 keeps the snapshot focused).
    (
        "annotate_compress_tiny",
        &[
            "--scale",
            "tiny",
            "--seed",
            "1998",
            "--jobs",
            "2",
            "--only",
            "compress",
            "--table",
            "1",
            "--annotate",
            "compress",
        ],
    ),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn run_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_instrep-repro"))
        .args(args)
        .output()
        .expect("spawn instrep-repro");
    assert!(
        out.status.success(),
        "instrep-repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Panics with the first differing line so a snapshot break is readable
/// without an external diff tool.
fn assert_bytes_match(name: &str, got: &[u8], want: &[u8]) {
    if got == want {
        return;
    }
    let got_s = String::from_utf8_lossy(got);
    let want_s = String::from_utf8_lossy(want);
    for (i, (g, w)) in got_s.lines().zip(want_s.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "golden snapshot `{name}` diverges at line {} (regenerate with UPDATE_GOLDEN=1 \
             if the change is intended)",
            i + 1
        );
    }
    panic!(
        "golden snapshot `{name}`: output lengths differ ({} vs {} bytes) \
         (regenerate with UPDATE_GOLDEN=1 if the change is intended)",
        got.len(),
        want.len()
    );
}

#[test]
fn full_output_matches_golden_snapshots() {
    for (name, args) in CASES {
        let stdout = run_stdout(args);
        let path = golden_path(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &stdout).expect("write golden file");
            continue;
        }
        let want = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden file {} ({e}); generate it with UPDATE_GOLDEN=1", path.display())
        });
        assert_bytes_match(name, &stdout, &want);
    }
}

#[test]
fn snapshot_is_independent_of_jobs_count() {
    let (name, args) = CASES[0];
    let mut serial: Vec<&str> = args.to_vec();
    let pos = serial.iter().position(|a| *a == "--jobs").expect("case pins --jobs");
    serial[pos + 1] = "1";
    let stdout = run_stdout(&serial);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the other test just rewrote the file from --jobs 2
    }
    let want = std::fs::read(golden_path(name)).expect("golden file exists");
    assert_bytes_match(name, &stdout, &want);
}
