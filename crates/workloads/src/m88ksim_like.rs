//! `m88ksim` analog: a CPU simulator running *inside* the simulation.
//!
//! Mirrors SPEC '95 `124.m88ksim`: the dynamic profile is a
//! fetch/decode/dispatch loop over a guest program, split across small
//! helper functions (`fetch`, field extractors, `alu`, `step`) the way
//! m88ksim splits `Data_path`/`execute`/`test_issue`. Because the guest
//! program is fixed and its data cycles through a handful of values, this
//! workload exhibits the extreme repetition the paper reports (98.8%).
//!
//! Guest ISA: 16 registers, 64-word memory, word encoding
//! `op·2²⁴ | a·2¹⁶ | b·2⁸ | c` with ops: 0 halt, 1 addi, 2 add, 3 sub,
//! 4 ld, 5 st, 6 beq, 7 blt, 8 mul, 9 and, 10 jmp. Branch targets are
//! `pc + c - 128`.
//!
//! Input stream: `[iters: i32][kbase: i32]`. Output: a 4-byte checksum
//! plus the guest instruction count.

use crate::inputs::InputStream;
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "m88ksim", spec_analog: "124.m88ksim", source: SOURCE, input_fn: input }
}

/// Builds the parameter block.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let (iters, kbase) = match scale {
        Scale::Tiny => (40, 30),
        Scale::Small => (300, 50),
        Scale::Full => (2_500, 60),
    };
    // The seed perturbs the workload size slightly so different seeds
    // produce different (still deterministic) traces.
    let kbase = kbase + (seed % 5) as i32;
    let mut s = InputStream::new();
    s.int(iters).int(kbase);
    s.finish()
}

/// Expected guest result for one run: sum of squares `0² + 1² + ... +
/// (k-1)²` (used by tests to validate the interpreter).
pub fn expected_sum_of_squares(k: i32) -> i64 {
    let k = i64::from(k);
    (k - 1) * k * (2 * k - 1) / 6
}

const SOURCE: &str = r#"
// ---- m88ksim: guest-machine interpreter ----
// Guest program: r2 = sum of i*i for i in 0..k, with k read from
// guest memory word 0.
int guest_prog[8] = {
    0x01010000,   // addi r1, r0, 0        i = 0
    0x01020000,   // addi r2, r0, 0        sum = 0
    0x04030000,   // ld   r3, [r0+0]       k
    0x08040101,   // mul  r4, r1, r1
    0x02020204,   // add  r2, r2, r4
    0x01010101,   // addi r1, r1, 1
    0x0701037D,   // blt  r1, r3, pc-3     (loop to index 3)
    0x00000000    // halt
};

int guest_regs[16];
int guest_mem[64];
int guest_pc = 0;
int guest_halted = 0;
int guest_icount = 0;

// Field shift amounts live in a decode table, as in real m88ksim —
// making the extractors read global state on every use.
int fld_shift[4] = {24, 16, 8, 0};

int fetch(int pc) { return guest_prog[pc & 7]; }
int field(int insn, int i) { return (insn >> fld_shift[i]) & 255; }
int op_of(int insn) { return field(insn, 0); }
int fld_a(int insn) { return field(insn, 1); }
int fld_b(int insn) { return field(insn, 2); }
int fld_c(int insn) { return field(insn, 3); }

int alu(int op, int x, int y) {
    if (op == 2) return x + y;
    if (op == 3) return x - y;
    if (op == 8) return x * y;
    if (op == 9) return x & y;
    return 0;
}

int eff_addr(int b, int c) { return (guest_regs[b] + c) & 63; }

int step() {
    int insn = fetch(guest_pc);
    int op = op_of(insn);
    int a = fld_a(insn);
    int b = fld_b(insn);
    int c = fld_c(insn);
    guest_pc = guest_pc + 1;
    guest_icount = guest_icount + 1;
    if (op == 0) {
        guest_halted = 1;
        return 0;
    }
    if (op == 1) {
        guest_regs[a] = guest_regs[b] + c;
        return 1;
    }
    if (op == 2 || op == 3 || op == 8 || op == 9) {
        guest_regs[a] = alu(op, guest_regs[b], guest_regs[c & 15]);
        return 1;
    }
    if (op == 4) {
        guest_regs[a] = guest_mem[eff_addr(b, c)];
        return 1;
    }
    if (op == 5) {
        guest_mem[eff_addr(b, c)] = guest_regs[a];
        return 1;
    }
    if (op == 6) {
        if (guest_regs[a] == guest_regs[b]) guest_pc = guest_pc + c - 129;
        return 1;
    }
    if (op == 7) {
        if (guest_regs[a] < guest_regs[b]) guest_pc = guest_pc + c - 129;
        return 1;
    }
    if (op == 10) {
        guest_pc = guest_pc + c - 129;
        return 1;
    }
    return 0;
}

int run_guest(int k) {
    int i;
    for (i = 0; i < 16; i++) guest_regs[i] = 0;
    guest_mem[0] = k;
    guest_pc = 0;
    guest_halted = 0;
    int fuel = 100000;
    while (guest_halted == 0 && fuel > 0) {
        step();
        fuel = fuel - 1;
    }
    return guest_regs[2];
}

int main() {
    int iters = read_int();
    int kbase = read_int();
    int checksum = 0;
    int r;
    for (r = 0; r < iters; r++) {
        int k = kbase + (r & 3);
        checksum = checksum + run_guest(k);
    }
    write_int(checksum);
    write_int(guest_icount);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run(iters: i32, kbase: i32) -> (i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(iters).int(kbase);
        m.set_input(s.finish());
        assert_eq!(m.run(200_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 8);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
        )
    }

    #[test]
    fn guest_computes_sum_of_squares() {
        let (checksum, icount) = run(4, 10);
        // k cycles through 10, 11, 12, 13.
        let expected: i64 = (10..=13).map(expected_sum_of_squares).sum();
        assert_eq!(i64::from(checksum), expected);
        assert!(icount > 4 * 10 * 4, "guest executed too few instructions: {icount}");
    }

    #[test]
    fn single_run_exact() {
        let (checksum, _) = run(1, 5);
        assert_eq!(checksum, 1 + 4 + 9 + 16);
    }

    #[test]
    fn workload_is_extremely_repetitive() {
        // The headline m88ksim property: near-total repetition.
        use instrep_core::{AnalysisConfig, Session};
        let wl = workload();
        let image = wl.build().unwrap();
        let report = Session::new(AnalysisConfig::default())
            .run_one(&image, wl.input(Scale::Tiny, 0))
            .unwrap()
            .report;
        assert!(
            report.repetition_rate() > 0.9,
            "m88ksim-like repetition rate = {}",
            report.repetition_rate()
        );
    }
}
