//! `li` analog: a lisp interpreter.
//!
//! Mirrors SPEC '95 `130.li` (xlisp): a reader parses s-expressions from
//! the external script text into heap-allocated cons cells, and a
//! recursive evaluator runs them with single-parameter user-defined
//! functions, dynamic binding, and list-building primitives. The profile
//! is heap-dominated with deep recursion (`li` shows 45.8% heap slices
//! and 15.1% no-argument repetition — fresh cons indices at every call).
//!
//! Script language (single-character symbols):
//! `(d f x body)` defines `f` with parameter `x`; `(? c a b)` is if;
//! `+ - * <` are arithmetic; `(r n)` builds the list `1..n` (allocating);
//! `(s lst)` sums a list recursively. The final top-level form is the
//! main expression, evaluated once per iteration with `n` bound.
//!
//! Input stream: `[script_len: i32][script][iters: i32][nbase: i32]`.
//! Output: checksum and cells allocated.

use crate::inputs::InputStream;
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "li", spec_analog: "130.li", source: SOURCE, input_fn: input }
}

/// The lisp script shipped as external input.
pub const SCRIPT: &str = "\
(d f x (? (< x 2) x (+ (f (- x 1)) (f (- x 2)))))\n\
(d g x (? x (+ x (g (- x 1))) 0))\n\
(d h x (? x (+ (* x x) (h (- x 1))) 0))\n\
(+ (f n) (+ (g n) (+ (h n) (s (r n)))))\n";

/// Builds the input stream.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let (iters, nbase) = match scale {
        Scale::Tiny => (4, 8),
        Scale::Small => (40, 10),
        Scale::Full => (350, 12),
    };
    let nbase = nbase + (seed % 2) as i32;
    let mut s = InputStream::new();
    s.int(SCRIPT.len() as i32).bytes(SCRIPT.as_bytes()).int(iters).int(nbase);
    s.finish()
}

/// Reference semantics of the script's main expression (for tests).
pub fn expected_value(n: i32) -> i64 {
    fn fib(n: i64) -> i64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let n = i64::from(n);
    let sumto = n * (n + 1) / 2;
    let sumsq = n * (n + 1) * (2 * n + 1) / 6;
    fib(n) + sumto + sumsq + sumto
}

const SOURCE: &str = r#"
// ---- li: s-expression reader + recursive evaluator over cons cells ----
// Cell pool lives on the heap: tag 0 num, 1 sym, 2 cons. NIL is -1.
int* cell_tag;
int* cell_a;
int* cell_b;
int n_cells = 0;
int cell_cap = 0;
int read_cells = 0;

char script[512];
int spos = 0;
int slen = 0;

int env_sym[128];
int env_val[128];
int env_top = 0;

int fn_param[128];
int fn_body[128];

int alloc_cell(int tag, int a, int b) {
    cell_tag[n_cells] = tag;
    cell_a[n_cells] = a;
    cell_b[n_cells] = b;
    n_cells = n_cells + 1;
    return n_cells - 1;
}

int car(int c) {
    if (c < 0) return 0 - 1;
    return cell_a[c];
}

int cdr(int c) {
    if (c < 0) return 0 - 1;
    return cell_b[c];
}

int rd_skip() {
    while (spos < slen && (script[spos] == ' ' || script[spos] == '\n')) spos = spos + 1;
    return spos;
}

int rd_expr() {
    rd_skip();
    int c = script[spos];
    if (c == '(') {
        spos = spos + 1;
        int head = 0 - 1;
        int tail = 0 - 1;
        while (1) {
            rd_skip();
            if (spos >= slen) break;
            if (script[spos] == ')') {
                spos = spos + 1;
                break;
            }
            int e = rd_expr();
            int cell = alloc_cell(2, e, 0 - 1);
            if (head < 0) head = cell;
            else cell_b[tail] = cell;
            tail = cell;
        }
        return head;
    }
    if (c >= '0' && c <= '9') {
        int v = 0;
        while (spos < slen && script[spos] >= '0' && script[spos] <= '9') {
            v = v * 10 + (script[spos] - '0');
            spos = spos + 1;
        }
        return alloc_cell(0, v, 0 - 1);
    }
    spos = spos + 1;
    return alloc_cell(1, c, 0 - 1);
}

int env_lookup(int sym) {
    int i = env_top - 1;
    while (i >= 0) {
        if (env_sym[i] == sym) return env_val[i];
        i = i - 1;
    }
    return 0;
}

// Sums a cons list of numbers, recursively.
int sum_list(int lst) {
    if (lst < 0) return 0;
    return cell_a[car(lst)] + sum_list(cdr(lst));
}

int eval(int e) {
    if (e < 0) return 0;
    int t = cell_tag[e];
    if (t == 0) return cell_a[e];
    if (t == 1) return env_lookup(cell_a[e]);

    int op = cell_a[car(e)];
    int args = cdr(e);
    if (op == '?') {
        if (eval(car(args))) return eval(car(cdr(args)));
        return eval(car(cdr(cdr(args))));
    }
    if (op == 'd') {
        int name = cell_a[car(args)];
        fn_param[name] = cell_a[car(cdr(args))];
        fn_body[name] = car(cdr(cdr(args)));
        return 0;
    }
    if (op == '+') return eval(car(args)) + eval(car(cdr(args)));
    if (op == '-') return eval(car(args)) - eval(car(cdr(args)));
    if (op == '*') return eval(car(args)) * eval(car(cdr(args)));
    if (op == '<') return eval(car(args)) < eval(car(cdr(args)));
    if (op == 'r') {
        // (r n): build the list n, n-1, ..., 1 reversed into 1..n.
        int k = eval(car(args));
        int lst = 0 - 1;
        while (k > 0) {
            lst = alloc_cell(2, alloc_cell(0, k, 0 - 1), lst);
            k = k - 1;
        }
        return lst;
    }
    if (op == 's') return sum_list(eval(car(args)));

    // User-defined single-parameter function: dynamic binding.
    int v = eval(car(args));
    env_sym[env_top] = fn_param[op];
    env_val[env_top] = v;
    env_top = env_top + 1;
    int result = eval(fn_body[op]);
    env_top = env_top - 1;
    return result;
}

int main() {
    slen = read_int();
    read(script, slen);
    int iters;
    int nbase;
    iters = read_int();
    nbase = read_int();

    cell_cap = 60000;
    cell_tag = sbrk(cell_cap * 4);
    cell_a = sbrk(cell_cap * 4);
    cell_b = sbrk(cell_cap * 4);

    // Read all top-level forms; evaluate defines eagerly, remember the
    // last non-define form as the main expression.
    int main_expr = 0 - 1;
    while (1) {
        rd_skip();
        if (spos >= slen) break;
        int e = rd_expr();
        if (cell_tag[e] == 2 && cell_a[car(e)] == 'd') {
            eval(e);
        } else {
            main_expr = e;
        }
    }
    read_cells = n_cells;

    int checksum = 0;
    int it;
    for (it = 0; it < iters; it++) {
        // Arena-reset the evaluation cells (the reader's cells persist) -
        // a stand-in for xlisp's garbage collector.
        n_cells = read_cells;
        env_sym[0] = 'n';
        env_val[0] = nbase + (it & 3);
        env_top = 1;
        checksum = checksum + eval(main_expr);
    }
    write_int(checksum);
    write_int(n_cells);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run(iters: i32, nbase: i32) -> (i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(SCRIPT.len() as i32).bytes(SCRIPT.as_bytes()).int(iters).int(nbase);
        m.set_input(s.finish());
        assert_eq!(m.run(500_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 8);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
        )
    }

    #[test]
    fn evaluator_matches_reference_semantics() {
        let (checksum, _) = run(4, 8);
        // n cycles 8, 9, 10, 11.
        let expected: i64 = (8..=11).map(expected_value).sum();
        assert_eq!(i64::from(checksum), expected);
    }

    #[test]
    fn single_iteration_exact() {
        let (checksum, cells) = run(1, 5);
        assert_eq!(i64::from(checksum), expected_value(5));
        // (r 5) allocates 10 cells beyond the reader's.
        assert!(cells > 10);
    }

    #[test]
    fn allocation_resets_between_iterations() {
        let (_, cells_1) = run(1, 10);
        let (_, cells_many) = run(20, 10);
        // Arena reset: cell usage does not grow with iteration count.
        // (n cycles nbase..nbase+3, so the final iteration's usage varies
        // by at most the range's size.)
        assert!(
            (i64::from(cells_many) - i64::from(cells_1)).abs() <= 8,
            "cells grew: {cells_1} vs {cells_many}"
        );
    }
}
