//! `ijpeg` analog: block image coder.
//!
//! Mirrors SPEC '95 `132.ijpeg`: the image is processed in 8×8 blocks
//! through a separable integer transform, quantization against a global
//! table, zig-zag reordering, run-length coding, and bit-buffer emission
//! (the paper's Table 9 lists ijpeg's `emit_bits`, `encode_one_block`,
//! `fill_bit_buffer`, `jpeg_idct_islow` as its hot functions — the same
//! shapes appear here). Leaf functions take the block pointer as an
//! argument, giving the argument-slice-heavy profile ijpeg shows.
//!
//! Input stream: `[w: i32][h: i32][passes: i32][w*h image bytes]`.
//! Output: packed RLE bitstream statistics.

use crate::inputs::{rng, InputStream};
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "ijpeg", spec_analog: "132.ijpeg", source: SOURCE, input_fn: input }
}

/// Builds the input stream: header plus a synthetic photo-like image
/// (smooth gradients with noise and occasional edges).
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let (w, h, passes) = match scale {
        Scale::Tiny => (32, 32, 2),
        Scale::Small => (64, 64, 6),
        Scale::Full => (64, 64, 60),
    };
    let mut r = rng(seed ^ 0x1347e6);
    let mut img = Vec::with_capacity((w * h) as usize);
    for y in 0..h {
        for x in 0..w {
            let base = (x * 2 + y * 3) % 200;
            let edge = if (x / 16 + y / 16) % 2 == 0 { 30 } else { 0 };
            let noise = r.gen_range(0..8);
            img.push((base + edge + noise) as u8);
        }
    }
    let mut s = InputStream::new();
    s.int(w).int(h).int(passes).bytes(&img);
    s.finish()
}

const SOURCE: &str = r#"
// ---- ijpeg: 8x8 block transform + quantize + zigzag RLE + bit output ----
int qtab[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};
int zig[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

char* img;
int blk[64];
int tmp[64];

char outbuf[512];
int outlen = 0;
int bit_acc = 0;
int bit_cnt = 0;
int bits_emitted = 0;
int nonzero_coefs = 0;

int flush_out() {
    if (outlen > 0) write(outbuf, outlen);
    outlen = 0;
    return 0;
}

int put_byte(int b) {
    outbuf[outlen] = b & 255;
    outlen = outlen + 1;
    if (outlen == 512) flush_out();
    return 0;
}

int emit_bits(int v, int n) {
    bit_acc = bit_acc | ((v & ((1 << n) - 1)) << bit_cnt);
    bit_cnt = bit_cnt + n;
    while (bit_cnt >= 8) {
        put_byte(bit_acc & 255);
        bit_acc = bit_acc >> 8;
        bit_cnt = bit_cnt - 8;
    }
    bits_emitted = bits_emitted + n;
    return n;
}

int load_block(int bx, int by, int w) {
    int r;
    int c;
    for (r = 0; r < 8; r++) {
        for (c = 0; c < 8; c++) {
            blk[r * 8 + c] = img[(by * 8 + r) * w + bx * 8 + c] - 128;
        }
    }
    return 0;
}

// Separable butterfly transform: rows of sums/differences, then columns.
int transform_rows(int* src, int* dst) {
    int r;
    int k;
    for (r = 0; r < 8; r++) {
        for (k = 0; k < 4; k++) {
            int a = src[r * 8 + k];
            int b = src[r * 8 + 7 - k];
            dst[r * 8 + k] = a + b;
            dst[r * 8 + 4 + k] = a - b;
        }
    }
    return 0;
}

int transform_cols(int* src, int* dst) {
    int c;
    int k;
    for (c = 0; c < 8; c++) {
        for (k = 0; k < 4; k++) {
            int a = src[k * 8 + c];
            int b = src[(7 - k) * 8 + c];
            dst[k * 8 + c] = a + b;
            dst[(4 + k) * 8 + c] = a - b;
        }
    }
    return 0;
}

int quantize(int* coefs, int scale) {
    int i;
    for (i = 0; i < 64; i++) {
        int q = (qtab[i] * scale) / 8 + 1;
        coefs[i] = coefs[i] / q;
    }
    return 0;
}

// Zig-zag run-length coding: (run:6, value:10) pairs, terminator run=63.
int encode_one_block(int* coefs) {
    int run = 0;
    int i;
    for (i = 0; i < 64; i++) {
        int v = coefs[zig[i]];
        if (v == 0) {
            run = run + 1;
        } else {
            emit_bits(run, 6);
            emit_bits(v, 10);
            nonzero_coefs = nonzero_coefs + 1;
            run = 0;
        }
    }
    emit_bits(63, 6);
    return nonzero_coefs;
}

int main() {
    int w = read_int();
    int h = read_int();
    int passes = read_int();
    img = sbrk(w * h);
    read(img, w * h);
    int p;
    for (p = 0; p < passes; p++) {
        int scale = 4 + (p % 3) * 4;
        int by;
        for (by = 0; by < h / 8; by++) {
            int bx;
            for (bx = 0; bx < w / 8; bx++) {
                load_block(bx, by, w);
                transform_rows(blk, tmp);
                transform_cols(tmp, blk);
                quantize(blk, scale);
                encode_one_block(blk);
            }
        }
    }
    if (bit_cnt > 0) put_byte(bit_acc & 255);
    flush_out();
    write_int(bits_emitted);
    write_int(nonzero_coefs);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run(scale: Scale, seed: u64) -> (Vec<u8>, i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        m.set_input(input(scale, seed));
        assert_eq!(m.run(300_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        let n = out.len();
        let bits = i32::from_le_bytes(out[n - 8..n - 4].try_into().unwrap());
        let nz = i32::from_le_bytes(out[n - 4..].try_into().unwrap());
        (out[..n - 8].to_vec(), bits, nz)
    }

    #[test]
    fn emits_consistent_bitstream() {
        let (stream, bits, nz) = run(Scale::Tiny, 3);
        assert!(bits > 0 && nz > 0);
        // The packed stream length matches the bit counter.
        assert_eq!(stream.len(), (bits as usize).div_ceil(8));
        // Quantization compresses: far fewer than 64 coefficients per
        // block survive. 32x32 image, 2 passes => 32 block encodings.
        assert!(nz < 32 * 64);
    }

    #[test]
    fn higher_quant_scale_means_fewer_coefficients() {
        // More passes include higher-scale (coarser) quantization, so
        // coefficient density must not grow with scale index.
        let (_, _, nz_tiny) = run(Scale::Tiny, 3);
        assert!(nz_tiny > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        assert_eq!(run(Scale::Tiny, 9), run(Scale::Tiny, 9));
    }
}
