#![warn(missing_docs)]
//! Ten MiniC workloads: eight mirroring the SPEC '95 integer benchmarks
//! plus two loop-diversity kernels.
//!
//! The paper measured SPEC '95 INT; those sources and inputs are
//! proprietary and would not compile for SRV32, so each workload here
//! reproduces the *computational character* the paper attributes to its
//! SPEC counterpart (see `DESIGN.md` §3 for the substitution argument):
//!
//! | workload     | SPEC analog | character |
//! |--------------|-------------|-----------|
//! | [`go_like`]      | go       | board evaluation, flood fill, slowly-changing globals |
//! | [`m88ksim_like`] | m88ksim  | CPU simulator: fetch/decode/dispatch loop |
//! | [`ijpeg_like`]   | ijpeg    | block transform + quantize + RLE + bit emission |
//! | [`perl_like`]    | perl     | text scripting: patterns, scoring, hashing |
//! | [`vortex_like`]  | vortex   | object database with deep accessor call chains |
//! | [`li_like`]      | li       | lisp interpreter: reader + eval over cons cells |
//! | [`gcc_like`]     | gcc      | compiler pass: lex, parse, fold, emit |
//! | [`compress_like`]| compress | LZW compression of byte streams |
//!
//! Two further families exercise the extremes of loop structure for the
//! loop-nest profiler (`instrep-repro --loops-out`), not Table 1:
//!
//! | workload     | character |
//! |--------------|-----------|
//! | [`interp_like`]  | bytecode VM: one flat, hot dispatch loop |
//! | [`stencil_like`] | 5-point stencil sweeps: four-deep regular nests |
//!
//! Every workload is scale-parameterized through its *input stream* (a
//! little-endian parameter block followed by payload bytes), so the same
//! compiled image runs at test, benchmark, and reproduction scale. All
//! inputs derive from seeded RNGs: runs are bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use instrep_workloads::{by_name, Scale};
//! use instrep_sim::{Machine, RunOutcome};
//!
//! let wl = by_name("compress").expect("compress workload exists");
//! let image = wl.build()?;
//! let mut m = Machine::new(&image);
//! m.set_input(wl.input(Scale::Tiny, 42));
//! assert!(matches!(m.run(50_000_000, |_| {})?, RunOutcome::Exited(0)));
//! assert!(!m.output().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compress_like;
pub mod gcc_like;
pub mod go_like;
pub mod ijpeg_like;
mod inputs;
pub mod interp_like;
pub mod li_like;
pub mod m88ksim_like;
pub mod perl_like;
pub mod rng;
pub mod stencil_like;
pub mod vortex_like;

use instrep_asm::Image;
use instrep_minicc::BuildError;

/// Execution scale, controlling the parameter block of the input stream.
///
/// Approximate dynamic instruction counts: `Tiny` ≈ 10⁵ (unit tests),
/// `Small` ≈ 10⁶ (benches, quick runs), `Full` ≈ 10⁷ (table
/// reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test scale.
    Tiny,
    /// Bench scale.
    Small,
    /// Reproduction scale.
    Full,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Small, Scale::Full];
}

/// A buildable, runnable workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (`"go"`, `"m88ksim"`, ...), matching the paper's
    /// benchmark column.
    pub name: &'static str,
    /// The SPEC '95 program this workload stands in for.
    pub spec_analog: &'static str,
    /// MiniC source (without the shared prelude).
    pub source: &'static str,
    input_fn: fn(Scale, u64) -> Vec<u8>,
}

impl Workload {
    /// Compiles the workload (prelude + program) to an executable image.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] only if the embedded source is broken —
    /// the test suite compiles every workload, so this is effectively
    /// infallible for shipped sources.
    pub fn build(&self) -> Result<Image, BuildError> {
        instrep_minicc::build(&self.full_source())
    }

    /// The complete MiniC source (shared prelude + program) that
    /// [`Workload::build`] compiles. Drivers that trace or time the
    /// compile and assemble stages separately feed this through
    /// [`instrep_minicc::compile_to_asm`].
    pub fn full_source(&self) -> String {
        let mut src = String::with_capacity(PRELUDE.len() + self.source.len());
        src.push_str(PRELUDE);
        src.push_str(self.source);
        src
    }

    /// Generates the deterministic input stream for a scale and seed.
    pub fn input(&self, scale: Scale, seed: u64) -> Vec<u8> {
        (self.input_fn)(scale, seed)
    }
}

/// Shared MiniC prelude linked into every workload: little-endian integer
/// I/O and a deterministic LCG.
pub const PRELUDE: &str = r#"
// --- shared workload prelude ---
int wl_rng_state = 12345;

int read_int() {
    char b[4];
    read(b, 4);
    return b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24);
}

int write_int(int v) {
    char b[4];
    b[0] = v & 255;
    b[1] = (v >> 8) & 255;
    b[2] = (v >> 16) & 255;
    b[3] = (v >> 24) & 255;
    write(b, 4);
    return 4;
}

int rng_seed(int s) {
    wl_rng_state = s;
    return s;
}

int rng_next() {
    wl_rng_state = wl_rng_state * 1103515245 + 12345;
    return (wl_rng_state >> 16) & 0x7fff;
}
"#;

/// All ten workloads: the paper's Table 1 order, then the two
/// loop-diversity kernels.
pub fn all() -> Vec<Workload> {
    vec![
        go_like::workload(),
        m88ksim_like::workload(),
        ijpeg_like::workload(),
        perl_like::workload(),
        vortex_like::workload(),
        li_like::workload(),
        gcc_like::workload(),
        compress_like::workload(),
        interp_like::workload(),
        stencil_like::workload(),
    ]
}

/// Looks up a workload by its short name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    #[test]
    fn roster_is_complete_and_ordered() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "go", "m88ksim", "ijpeg", "perl", "vortex", "li", "gcc", "compress", "interp",
                "stencil"
            ]
        );
        assert!(by_name("go").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_compiles() {
        for wl in all() {
            wl.build().unwrap_or_else(|e| panic!("{} failed to build: {e}", wl.name));
        }
    }

    /// Runs one workload at `Tiny` scale and returns (icount, output).
    fn run_tiny(wl: &Workload, seed: u64) -> (u64, Vec<u8>) {
        let image = wl.build().unwrap();
        let mut m = Machine::new(&image);
        m.set_input(wl.input(Scale::Tiny, seed));
        match m.run(100_000_000, |_| {}) {
            Ok(RunOutcome::Exited(0)) => (m.icount(), m.output().to_vec()),
            Ok(RunOutcome::Exited(code)) => panic!("{} exited with {code}", wl.name),
            Ok(RunOutcome::MaxedOut) => panic!("{} did not terminate", wl.name),
            Err(e) => panic!("{} trapped: {e}", wl.name),
        }
    }

    #[test]
    fn every_workload_runs_and_is_deterministic() {
        for wl in all() {
            let (icount1, out1) = run_tiny(&wl, 7);
            let (icount2, out2) = run_tiny(&wl, 7);
            assert_eq!(icount1, icount2, "{} not deterministic", wl.name);
            assert_eq!(out1, out2, "{} output not deterministic", wl.name);
            assert!(!out1.is_empty(), "{} produced no output", wl.name);
            assert!(icount1 > 20_000, "{} too small at Tiny: {icount1}", wl.name);
        }
    }

    #[test]
    fn seeds_change_outputs() {
        for wl in all() {
            let (_, out1) = run_tiny(&wl, 1);
            let (_, out2) = run_tiny(&wl, 2);
            // Different seeds should exercise different data (checksum
            // collision is possible but across all 8 would be a bug).
            if out1 == out2 {
                eprintln!("note: {} output identical across seeds", wl.name);
            }
        }
    }

    #[test]
    fn scales_are_ordered() {
        for wl in all() {
            let tiny = wl.input(Scale::Tiny, 3);
            let small = wl.input(Scale::Small, 3);
            let full = wl.input(Scale::Full, 3);
            assert!(tiny.len() <= small.len() && small.len() <= full.len(), "{}", wl.name);
        }
    }
}
