//! In-tree seeded PRNG for deterministic input generation.
//!
//! The workspace builds with zero external dependencies, so the input
//! generators cannot use the `rand` crate. This module provides the
//! small slice of `rand`'s API the workloads need, backed by
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64 — the
//! standard seeding recipe that expands a 64-bit seed into a full
//! 256-bit state with good avalanche behavior.
//!
//! Streams are *stable*: the sequence for a given seed is part of the
//! workload-input contract (inputs must be bit-reproducible across runs
//! and machines), so the algorithm must not change silently. The tests
//! below pin known-answer values.

/// Expands a 64-bit seed, SplitMix64 style. Used for seeding only.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use instrep_workloads::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeSample,
        R: std::ops::RangeBounds<T>,
    {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => T::MIN_I128,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() - 1,
            Bound::Unbounded => T::MAX_I128,
        };
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi - lo + 1) as u128;
        // Debiased multiply-shift (Lemire); span ≤ 2^64 so one u64 draw
        // suffices, with rejection to keep the distribution exact.
        let v = if span == 0 {
            // Full 2^64-wide range (e.g. `u64::MIN..=u64::MAX`).
            self.next_u64() as u128
        } else {
            let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
            loop {
                let x = u128::from(self.next_u64());
                if x <= zone {
                    break x % span;
                }
            }
        };
        T::from_i128(lo + v as i128)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample. All values round-trip
/// through `i128`, which covers every primitive integer up to 64 bits.
pub trait RangeSample: Copy {
    /// The type's minimum, as `i128`.
    const MIN_I128: i128;
    /// The type's maximum, as `i128`.
    const MAX_I128: i128;
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            const MIN_I128: i128 = <$t>::MIN as i128;
            const MAX_I128: i128 = <$t>::MAX as i128;
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_pins_the_stream() {
        // Pinned stream head for seed 0 (xoshiro256** state expanded
        // from the seed via SplitMix64). A change here means every
        // workload input stream changed — bump deliberately or never.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(first, vec![11091344671253066420, 13793997310169335082, 1900383378846508768]);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i32 = r.gen_range(-64..64);
            assert!((-64..64).contains(&v));
            let u: usize = r.gen_range(0..24);
            assert!(u < 24);
            let w: u32 = r.gen_range(0..=10);
            assert!(w <= 10);
        }
        // Degenerate one-element range.
        assert_eq!(r.gen_range(5..6), 5);
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 should appear in 256 draws");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = Rng::seed_from_u64(3);
        assert!((0..64).all(|_| r.gen_bool(1.0)));
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "p=0.5 gave {heads}/10000");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = Rng::seed_from_u64(4);
        for len in 0..32 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }
}
