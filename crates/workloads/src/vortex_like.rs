//! `vortex` analog: in-memory object database.
//!
//! Mirrors SPEC '95 `147.vortex`: heap-resident records manipulated
//! through deep chains of tiny accessor functions (vortex's
//! `Mem_GetWord` / `Chunk_ChkGetChunk` / `Mem_GetAddr` pattern — the
//! paper's Table 9 hot list), hash-chained indexes, and an operation mix
//! driven by a transaction stream. The accessor discipline produces the
//! prologue/epilogue-heavy profile vortex shows (24% of dynamic
//! instructions).
//!
//! Input stream: `[ops: i32][seed: i32]`. Output: operation tallies and a
//! database checksum.

use crate::inputs::InputStream;
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "vortex", spec_analog: "147.vortex", source: SOURCE, input_fn: input }
}

/// Builds the parameter block.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let ops = match scale {
        Scale::Tiny => 1_500,
        Scale::Small => 15_000,
        Scale::Full => 120_000,
    };
    let mut s = InputStream::new();
    s.int(ops).int((seed as i32) | 1);
    s.finish()
}

const SOURCE: &str = r#"
// ---- vortex: record pool + hash index, accessor-chain style ----
struct rec {
    int id;
    int kind;
    int val;
    int hits;
    int nxt;     // pool index of next record in hash chain, -1 ends
};

struct rec* pool;
int pool_cap = 0;
int pool_len = 0;
int heads[512];

int n_inserts = 0;
int n_lookups = 0;
int n_found = 0;
int n_updates = 0;
int n_sums = 0;

// --- tiny accessor chain, vortex-style ---
struct rec* mem_get_addr(int i) {
    return pool + i;
}

int chunk_chk(int i) {
    if (i < 0) return 0;
    if (i >= pool_len) return 0;
    return 1;
}

struct rec* rec_get(int i) {
    if (chunk_chk(i)) return mem_get_addr(i);
    return 0;
}

int rec_id(int i) {
    struct rec* r = rec_get(i);
    if (r) return r->id;
    return 0 - 1;
}

int rec_val(int i) {
    struct rec* r = rec_get(i);
    if (r) return r->val;
    return 0;
}

int rec_next(int i) {
    struct rec* r = rec_get(i);
    if (r) return r->nxt;
    return 0 - 1;
}

int hash_id(int id) {
    return ((id * 31 + 7) & 0x7fffffff) & 511;
}

int db_insert(int id, int kind, int v) {
    if (pool_len >= pool_cap) return 0 - 1;
    int h = hash_id(id);
    struct rec* r = mem_get_addr(pool_len);
    r->id = id;
    r->kind = kind;
    r->val = v;
    r->hits = 0;
    r->nxt = heads[h];
    heads[h] = pool_len;
    pool_len = pool_len + 1;
    n_inserts = n_inserts + 1;
    return pool_len - 1;
}

int db_find(int id) {
    int i = heads[hash_id(id)];
    while (i >= 0) {
        if (rec_id(i) == id) return i;
        i = rec_next(i);
    }
    return 0 - 1;
}

int db_lookup(int id) {
    n_lookups = n_lookups + 1;
    int i = db_find(id);
    if (i >= 0) {
        n_found = n_found + 1;
        struct rec* r = rec_get(i);
        r->hits = r->hits + 1;
        return rec_val(i);
    }
    return 0;
}

int db_update(int id, int d) {
    n_updates = n_updates + 1;
    int i = db_find(id);
    if (i >= 0) {
        struct rec* r = rec_get(i);
        r->val = r->val + d;
        return 1;
    }
    return 0;
}

int db_sum_kind(int kind) {
    n_sums = n_sums + 1;
    int s = 0;
    int i;
    for (i = 0; i < pool_len; i++) {
        struct rec* r = rec_get(i);
        if (r->kind == kind) s = s + rec_val(i);
    }
    return s;
}

int main() {
    int ops = read_int();
    rng_seed(read_int());
    pool_cap = 4096;
    pool = sbrk(pool_cap * sizeof(struct rec));
    int i;
    for (i = 0; i < 512; i++) heads[i] = 0 - 1;
    int checksum = 0;
    int op_i;
    for (op_i = 0; op_i < ops; op_i++) {
        int dice = rng_next() & 15;
        int id = rng_next() & 1023;
        if (dice < 6) {
            if (db_find(id) < 0) db_insert(id, id & 7, id * 3);
        } else {
            if (dice < 12) {
                checksum = checksum + db_lookup(id);
            } else {
                if (dice < 15) {
                    db_update(id, 1);
                } else {
                    checksum = checksum + db_sum_kind(id & 7);
                }
            }
        }
    }
    write_int(checksum);
    write_int(n_inserts);
    write_int(n_found);
    write_int(pool_len);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run(ops: i32, seed: i32) -> (i32, i32, i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(ops).int(seed);
        m.set_input(s.finish());
        assert_eq!(m.run(500_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 16);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
            i32::from_le_bytes(out[8..12].try_into().unwrap()),
            i32::from_le_bytes(out[12..16].try_into().unwrap()),
        )
    }

    /// Rust mirror of the MiniC database and its LCG, used to validate
    /// the workload's semantics exactly.
    fn mirror(ops: i32, seed: i32) -> (i32, i32, i32, i32) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            (state >> 16) & 0x7fff
        };
        let mut db: Vec<(i32, i32, i32)> = Vec::new(); // (id, kind, val)
        let (mut checksum, mut inserts, mut found) = (0i32, 0, 0);
        for _ in 0..ops {
            let dice = next() & 15;
            let id = next() & 1023;
            let pos = db.iter().position(|r| r.0 == id);
            if dice < 6 {
                if pos.is_none() && db.len() < 4096 {
                    db.push((id, id & 7, id.wrapping_mul(3)));
                    inserts += 1;
                }
            } else if dice < 12 {
                if let Some(p) = pos {
                    found += 1;
                    checksum = checksum.wrapping_add(db[p].2);
                }
            } else if dice < 15 {
                if let Some(p) = pos {
                    db[p].2 = db[p].2.wrapping_add(1);
                }
            } else {
                let kind = id & 7;
                let s: i32 =
                    db.iter().filter(|r| r.1 == kind).fold(0i32, |a, r| a.wrapping_add(r.2));
                checksum = checksum.wrapping_add(s);
            }
        }
        (checksum, inserts, found, db.len() as i32)
    }

    #[test]
    fn matches_rust_mirror_model() {
        let got = run(1500, 77);
        let want = mirror(1500, 77);
        assert_eq!(got, want);
    }

    #[test]
    fn operations_all_exercised() {
        let (_, inserts, found, len) = run(2000, 5);
        assert!(inserts > 100, "inserts = {inserts}");
        assert!(found > 100, "found = {found}");
        assert_eq!(inserts, len);
    }
}
