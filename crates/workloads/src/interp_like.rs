//! `interp` analog: a bytecode VM with one hot, flat dispatch loop.
//!
//! The loop-diversity counterpoint to the deep nests of [`stencil_like`]:
//! virtually all dynamic work happens in a *single* depth-1 `while` in
//! `main` plus the `do_op` helper it calls, so the loop-nest profiler
//! should attribute nearly everything to one header. The guest program is
//! a seeded word stream executed step-capped (the VM always terminates),
//! and the decode/dispatch scaffolding repeats heavily while operand
//! values drift — the interpreter repetition profile the paper observes
//! for `perl` and `li`.
//!
//! Guest ISA: 16 registers, 256-word memory, word encoding
//! `imm·2¹⁶ | rb·2¹² | ra·2⁸ | rd·2⁴ | op` with ops 0-7 ALU/memory,
//! 8 conditional jump (absolute, masked to the program), 9+ checksum fold.
//!
//! Input stream: `[steps: i32][prog_len: i32][prog words]` with `prog_len`
//! a power of two. Output: a 4-byte checksum plus the step count.
//!
//! [`stencil_like`]: crate::stencil_like

use crate::inputs::{rng, InputStream};
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "interp", spec_analog: "(dispatch kernel)", source: SOURCE, input_fn: input }
}

/// Builds the input stream: step budget, program length, and the seeded
/// guest program. `prog_len` is a power of two so the VM can wrap the
/// program counter with a mask.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let (steps, prog_len) = match scale {
        Scale::Tiny => (4_000, 64usize),
        Scale::Small => (60_000, 128),
        Scale::Full => (600_000, 256),
    };
    // Opcode mix: mostly ALU and loads (high repetition), a few stores,
    // rare jumps, and a sprinkle of checksum folds through the default arm.
    const OP_MIX: [usize; 16] = [0, 0, 1, 2, 2, 3, 4, 5, 5, 6, 7, 7, 7, 8, 9, 12];
    let mut r = rng(seed ^ 0x17e4_9b0d);
    let mut s = InputStream::new();
    s.int(steps).int(prog_len as i32);
    for _ in 0..prog_len {
        let op = OP_MIX[r.gen_range(0..OP_MIX.len())];
        let word = op
            | (r.gen_range(0..16) << 4)
            | (r.gen_range(0..16) << 8)
            | (r.gen_range(0..16) << 12)
            | (r.gen_range(0..256) << 16);
        s.int(word as i32);
    }
    s.finish()
}

const SOURCE: &str = r#"
// ---- interp: step-capped bytecode VM, one flat dispatch loop ----
int prog[512];
int regs[16];
int vmem[256];
int vpc = 0;
int vmask = 0;
int vsum = 0;

int do_op(int w) {
    int op = w & 15;
    int rd = (w >> 4) & 15;
    int ra = (w >> 8) & 15;
    int rb = (w >> 12) & 15;
    int imm = (w >> 16) & 255;
    if (op == 0) { regs[rd] = regs[ra] + regs[rb]; return 1; }
    if (op == 1) { regs[rd] = regs[ra] - regs[rb]; return 1; }
    if (op == 2) { regs[rd] = regs[ra] ^ regs[rb]; return 1; }
    if (op == 3) { regs[rd] = regs[ra] & (regs[rb] | imm); return 1; }
    if (op == 4) { regs[rd] = regs[ra] << (imm & 7); return 1; }
    if (op == 5) { regs[rd] = vmem[(regs[ra] + imm) & 255]; return 1; }
    if (op == 6) { vmem[(regs[ra] + imm) & 255] = regs[rb]; return 1; }
    if (op == 7) { regs[rd] = regs[ra] + imm; return 1; }
    if (op == 8) {
        if ((regs[ra] & 3) == 1) vpc = imm & vmask;
        return 1;
    }
    vsum = vsum ^ (regs[rd] + op);
    return 1;
}

int main() {
    int steps = read_int();
    int prog_len = read_int();
    int i;
    for (i = 0; i < prog_len; i++) prog[i] = read_int();
    for (i = 0; i < 16; i++) regs[i] = i * 7 + 1;
    for (i = 0; i < 256; i++) vmem[i] = (i * 2063 + 17) & 0xffff;
    vmask = prog_len - 1;
    int done = 0;
    while (done < steps) {
        int w = prog[vpc];
        vpc = (vpc + 1) & vmask;
        do_op(w);
        done = done + 1;
    }
    for (i = 0; i < 16; i++) vsum = vsum * 31 + regs[i];
    write_int(vsum & 0x7fffffff);
    write_int(done);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    /// Rust mirror of the MiniC VM, used to validate the guest semantics.
    fn reference(steps: i32, prog: &[i32]) -> (i32, i32) {
        let mask = prog.len() as i32 - 1;
        let mut regs: [i32; 16] = std::array::from_fn(|i| i as i32 * 7 + 1);
        let mut vmem: [i32; 256] = std::array::from_fn(|i| (i as i32 * 2063 + 17) & 0xffff);
        let mut vpc = 0i32;
        let mut vsum = 0i32;
        for _ in 0..steps {
            let w = prog[vpc as usize];
            vpc = (vpc + 1) & mask;
            let op = w & 15;
            let rd = ((w >> 4) & 15) as usize;
            let ra = ((w >> 8) & 15) as usize;
            let rb = ((w >> 12) & 15) as usize;
            let imm = (w >> 16) & 255;
            match op {
                0 => regs[rd] = regs[ra].wrapping_add(regs[rb]),
                1 => regs[rd] = regs[ra].wrapping_sub(regs[rb]),
                2 => regs[rd] = regs[ra] ^ regs[rb],
                3 => regs[rd] = regs[ra] & (regs[rb] | imm),
                4 => regs[rd] = regs[ra].wrapping_shl((imm & 7) as u32),
                5 => regs[rd] = vmem[(regs[ra].wrapping_add(imm) & 255) as usize],
                6 => vmem[(regs[ra].wrapping_add(imm) & 255) as usize] = regs[rb],
                7 => regs[rd] = regs[ra].wrapping_add(imm),
                8 => {
                    if regs[ra] & 3 == 1 {
                        vpc = imm & mask;
                    }
                }
                _ => vsum ^= regs[rd].wrapping_add(op),
            }
        }
        for r in regs {
            vsum = vsum.wrapping_mul(31).wrapping_add(r);
        }
        (vsum & 0x7fff_ffff, steps)
    }

    fn run(stream: Vec<u8>) -> (i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        m.set_input(stream);
        assert_eq!(m.run(100_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 8);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
        )
    }

    #[test]
    fn vm_matches_the_rust_reference() {
        for seed in [0, 9, 1998] {
            let stream = input(Scale::Tiny, seed);
            let steps = i32::from_le_bytes(stream[0..4].try_into().unwrap());
            let prog_len = i32::from_le_bytes(stream[4..8].try_into().unwrap()) as usize;
            let prog: Vec<i32> = (0..prog_len)
                .map(|i| i32::from_le_bytes(stream[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
                .collect();
            assert_eq!(run(stream), reference(steps, &prog), "seed {seed}");
        }
    }

    #[test]
    fn one_dispatch_loop_dominates_and_stays_flat() {
        use instrep_core::{AnalysisConfig, Session};
        let wl = workload();
        let image = wl.build().unwrap();
        let loops = Session::new(AnalysisConfig::default())
            .loops(true)
            .run_one(&image, wl.input(Scale::Tiny, 0))
            .unwrap()
            .loops
            .unwrap();
        // The dispatch `while` turns over once per VM step — it must be
        // the hottest loop by a wide margin, and it sits at depth 1.
        let hot = loops.top_loops(1)[0];
        assert!(hot.trips >= 3_900, "dispatch loop tripped only {} times", hot.trips);
        assert_eq!(hot.depth, 1, "dispatch loop is not flat");
        // The init `for` loops are the only other structure: no deep nests.
        assert!(loops.max_depth <= 2, "unexpected nesting depth {}", loops.max_depth);
    }
}
