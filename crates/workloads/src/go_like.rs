//! `go` analog: board-game position evaluation.
//!
//! Mirrors SPEC '95 `099.go`: a 19×19 board held in global arrays that
//! change slowly, recursive flood fills to count group liberties, capture
//! removal, and periodic whole-board influence evaluation. Like the real
//! `go`, the program reads almost nothing from outside (Table 3 reports
//! 0.0% external input for go): the input stream carries only the move
//! count and an RNG seed; the moves themselves come from the internal
//! generator.
//!
//! Input stream: `[moves: i32][seed: i32]`. Output: running evaluation
//! checksum, captures, and final occupancy.

use crate::inputs::InputStream;
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "go", spec_analog: "099.go", source: SOURCE, input_fn: input }
}

/// Builds the parameter block.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let moves = match scale {
        Scale::Tiny => 120,
        Scale::Small => 1_200,
        Scale::Full => 9_000,
    };
    let mut s = InputStream::new();
    s.int(moves).int((seed as i32) | 1);
    s.finish()
}

const SOURCE: &str = r#"
// ---- go: 19x19 board, liberties, captures, influence ----
char board[361];       // 0 empty, 1 black, 2 white
char mark[361];
int lib_count;
int captures = 0;

// Direction tables, consulted on every neighbour step (like real go
// engines; also gives these helpers the implicit global inputs the
// paper observes).
int drow[4] = {-1, 1, 0, 0};
int dcol[4] = {0, 0, -1, 1};

// Precomputed row/column tables (filled at startup), as real go
// engines keep.
int rowtab[361];
int coltab[361];

int init_tables() {
    int p;
    for (p = 0; p < 361; p++) {
        rowtab[p] = p / 19;
        coltab[p] = p % 19;
    }
    return 0;
}

int row_of(int p) { return rowtab[p]; }
int col_of(int p) { return coltab[p]; }

// Fills nb[0..3] with the orthogonal neighbours of p; returns how many.
int neighbors(int p, int* nb) {
    int n = 0;
    int r = row_of(p);
    int c = col_of(p);
    int d;
    for (d = 0; d < 4; d++) {
        int rr = r + drow[d];
        int cc = c + dcol[d];
        if (rr >= 0 && rr < 19 && cc >= 0 && cc < 19) {
            nb[n] = rr * 19 + cc;
            n++;
        }
    }
    return n;
}

// Recursive flood fill: marks the group containing p and counts its
// distinct liberties into lib_count.
int flood(int p, int color) {
    mark[p] = 1;
    int nb[4];
    int cnt = neighbors(p, nb);
    int i;
    for (i = 0; i < cnt; i++) {
        int q = nb[i];
        if (mark[q]) continue;
        if (board[q] == 0) {
            mark[q] = 2;
            lib_count++;
        } else {
            if (board[q] == color) flood(q, color);
        }
    }
    return lib_count;
}

int clear_marks() {
    int i;
    for (i = 0; i < 361; i++) mark[i] = 0;
    return 0;
}

int group_liberties(int p) {
    clear_marks();
    lib_count = 0;
    return flood(p, board[p]);
}

// Removes the group containing p; returns stones removed.
int remove_group(int p, int color) {
    board[p] = 0;
    int removed = 1;
    int nb[4];
    int cnt = neighbors(p, nb);
    int i;
    for (i = 0; i < cnt; i++) {
        if (board[nb[i]] == color) removed += remove_group(nb[i], color);
    }
    return removed;
}

// Plays a stone; removes captured opponent groups (and, for simplicity,
// suicidal own groups).
int play(int p, int color) {
    int opp = 3 - color;
    board[p] = color;
    int nb[4];
    int cnt = neighbors(p, nb);
    int i;
    for (i = 0; i < cnt; i++) {
        int q = nb[i];
        if (board[q] == opp) {
            if (group_liberties(q) == 0) {
                captures += remove_group(q, opp);
            }
        }
    }
    if (group_liberties(p) == 0) {
        captures += remove_group(p, color);
    }
    return captures;
}

// Whole-board influence: each empty point scores +/- by neighbouring
// stones; stones score by their liberties' sign.
int evaluate() {
    int score = 0;
    int p;
    int nb[4];
    for (p = 0; p < 361; p++) {
        if (board[p] == 0) {
            int cnt = neighbors(p, nb);
            int i;
            for (i = 0; i < cnt; i++) {
                if (board[nb[i]] == 1) score++;
                if (board[nb[i]] == 2) score--;
            }
        } else {
            if (board[p] == 1) score += 2;
            else score -= 2;
        }
    }
    return score;
}

int occupancy() {
    int n = 0;
    int p;
    for (p = 0; p < 361; p++) {
        if (board[p]) n++;
    }
    return n;
}

int main() {
    int moves = read_int();
    rng_seed(read_int());
    init_tables();
    int checksum = 0;
    int m;
    int color = 1;
    for (m = 0; m < moves; m++) {
        int p = (rng_next() * 361) >> 15;
        if (board[p] == 0) {
            play(p, color);
            color = 3 - color;
        }
        if ((m & 7) == 7) checksum += evaluate();
        if (occupancy() > 300) {
            int q;
            for (q = 0; q < 361; q++) board[q] = 0;
        }
    }
    write_int(checksum);
    write_int(captures);
    write_int(occupancy());
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run(moves: i32, seed: i32) -> (i32, i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(moves).int(seed);
        m.set_input(s.finish());
        assert_eq!(m.run(300_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 12);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
            i32::from_le_bytes(out[8..12].try_into().unwrap()),
        )
    }

    #[test]
    fn board_stays_bounded_and_captures_happen() {
        let (_, captures, occupancy) = run(600, 12345);
        assert!((0..=361).contains(&occupancy), "occupancy {occupancy}");
        assert!(captures > 0, "600 random moves on 19x19 must capture something");
    }

    #[test]
    fn different_seeds_different_games() {
        assert_ne!(run(200, 1), run(200, 99));
    }

    #[test]
    fn zero_moves_is_clean() {
        let (checksum, captures, occupancy) = run(0, 1);
        assert_eq!((checksum, captures, occupancy), (0, 0, 0));
    }
}
