//! `compress` analog: LZW compression of a repetitive byte stream.
//!
//! Mirrors SPEC '95 `129.compress`: a table-driven byte-stream coder whose
//! dynamic behaviour is dominated by dictionary probes on external input.
//! Codes are fixed 12-bit, the dictionary resets when full (4096 entries),
//! and output is bit-packed little-endian.
//!
//! Input stream: `[total: i32][payload bytes]`. Output: packed codes
//! followed by a 4-byte checksum.

use crate::inputs::{pseudo_text, rng, InputStream};
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "compress", spec_analog: "129.compress", source: SOURCE, input_fn: input }
}

/// Builds the input stream: a length header plus seeded pseudo-text.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let total = match scale {
        Scale::Tiny => 3_000,
        Scale::Small => 40_000,
        Scale::Full => 400_000,
    };
    let mut r = rng(seed ^ 0xc0_1055);
    let text = pseudo_text(&mut r, total);
    let mut s = InputStream::new();
    s.int(total as i32).bytes(&text);
    s.finish()
}

const SOURCE: &str = r#"
// ---- compress: LZW, 12-bit codes, reset-on-full dictionary ----
int dict_prefix[4096];
int dict_ch[4096];
int dict_size;
int hash_head[4096];
int hash_next[4096];
char inbuf[4096];

char outbuf[512];
int outlen = 0;
int bit_acc = 0;
int bit_cnt = 0;
int codes_emitted = 0;
int checksum = 0;

int flush_out() {
    if (outlen > 0) write(outbuf, outlen);
    outlen = 0;
    return 0;
}

int put_byte(int b) {
    outbuf[outlen] = b & 255;
    outlen = outlen + 1;
    if (outlen == 512) flush_out();
    return 0;
}

int emit_code(int code) {
    bit_acc = bit_acc | (code << bit_cnt);
    bit_cnt = bit_cnt + 12;
    while (bit_cnt >= 8) {
        put_byte(bit_acc & 255);
        bit_acc = bit_acc >> 8;
        bit_cnt = bit_cnt - 8;
    }
    codes_emitted = codes_emitted + 1;
    checksum = checksum * 31 + code;
    return 0;
}

// Hash mixing constants live in a table (compress keeps its magic
// numbers in globals too).
int hash_mix[2] = {5, 37};

int hash_fn(int prefix, int ch) {
    return ((prefix << hash_mix[0]) ^ (ch * hash_mix[1]) ^ prefix) & 4095;
}

int dict_find(int prefix, int ch) {
    int i = hash_head[hash_fn(prefix, ch)];
    while (i >= 0) {
        if (dict_prefix[i] == prefix && dict_ch[i] == ch) return i;
        i = hash_next[i];
    }
    return -1;
}

int dict_add(int prefix, int ch) {
    int h = hash_fn(prefix, ch);
    dict_prefix[dict_size] = prefix;
    dict_ch[dict_size] = ch;
    hash_next[dict_size] = hash_head[h];
    hash_head[h] = dict_size;
    dict_size = dict_size + 1;
    return dict_size - 1;
}

int reset_dict() {
    int i;
    for (i = 0; i < 4096; i++) hash_head[i] = -1;
    dict_size = 256;
    return 0;
}

int main() {
    int total = read_int();
    int processed = 0;
    int prefix = 0 - 1;
    reset_dict();
    while (processed < total) {
        int want = total - processed;
        if (want > 4096) want = 4096;
        int n = read(inbuf, want);
        if (n == 0) break;
        int i;
        for (i = 0; i < n; i++) {
            int ch = inbuf[i];
            if (prefix < 0) {
                prefix = ch;
                continue;
            }
            int e = dict_find(prefix, ch);
            if (e >= 0) {
                prefix = e;
            } else {
                emit_code(prefix);
                if (dict_size < 4096) {
                    dict_add(prefix, ch);
                } else {
                    reset_dict();
                }
                prefix = ch;
            }
        }
        processed = processed + n;
    }
    if (prefix >= 0) emit_code(prefix);
    // Pad the final partial byte.
    if (bit_cnt > 0) put_byte(bit_acc & 255);
    flush_out();
    write_int(checksum);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    /// LZW decoder mirroring the MiniC encoder: 12-bit codes,
    /// reset-on-full at 4096 entries.
    fn lzw_decode(packed: &[u8], n_codes: usize) -> Vec<u8> {
        // Unpack 12-bit little-endian codes.
        let mut codes = Vec::with_capacity(n_codes);
        let mut acc: u32 = 0;
        let mut bits = 0;
        let mut it = packed.iter();
        while codes.len() < n_codes {
            while bits < 12 {
                acc |= u32::from(*it.next().expect("enough packed bytes")) << bits;
                bits += 8;
            }
            codes.push((acc & 0xfff) as u16);
            acc >>= 12;
            bits -= 12;
        }

        // Rebuild strings. After emitting code e_i the encoder either
        // added (e_i, first_char(e_{i+1})) or, when full, reset; the
        // decoder replicates that action upon receiving e_{i+1}. The
        // KwKwK case (a code referencing the entry just added) expands as
        // previous string + its own first byte.
        fn expand(dict: &[(i32, u8)], code: u16) -> Vec<u8> {
            let mut stack = Vec::new();
            let mut c = i32::from(code);
            while c >= 0 {
                let (prefix, ch) = dict[c as usize];
                stack.push(ch);
                c = prefix;
            }
            stack.reverse();
            stack
        }

        let base: Vec<(i32, u8)> = (0..256).map(|i| (-1i32, i as u8)).collect();
        let mut dict = base.clone();
        let mut out = Vec::new();
        let mut prev: Option<(u16, Vec<u8>)> = None;
        for &code in &codes {
            let cur = if (code as usize) < dict.len() {
                expand(&dict, code)
            } else {
                let (_, ref pstr) = *prev.as_ref().expect("KwKwK without predecessor");
                let mut v = pstr.clone();
                v.push(pstr[0]);
                v
            };
            out.extend_from_slice(&cur);
            if let Some((pcode, _)) = prev {
                if dict.len() < 4096 {
                    dict.push((i32::from(pcode), cur[0]));
                } else {
                    dict = base.clone();
                }
            }
            prev = Some((code, cur));
        }
        out
    }

    #[test]
    fn round_trips_against_rust_decoder() {
        let wl = workload();
        let image = wl.build().unwrap();
        let input_stream = input(Scale::Tiny, 11);
        let payload = input_stream[4..].to_vec();
        let mut m = Machine::new(&image);
        m.set_input(input_stream);
        assert_eq!(m.run(100_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output();
        assert!(out.len() > 8);
        let packed = &out[..out.len() - 4];
        // Recover the code count from the checksum trailer? Count instead:
        // decode until we've reproduced the payload length.
        // Codes: ceil(payload reconstruction) — decode greedily.
        let mut n_codes = 0;
        let mut decoded = Vec::new();
        while decoded.len() < payload.len() {
            n_codes += 1;
            decoded = lzw_decode(packed, n_codes);
        }
        assert_eq!(decoded, payload, "LZW round-trip mismatch");
        // Compression actually happened on repetitive text.
        assert!(
            packed.len() < payload.len(),
            "no compression: {} vs {}",
            packed.len(),
            payload.len()
        );
    }

    #[test]
    fn checksum_trailer_is_deterministic() {
        let wl = workload();
        let image = wl.build().unwrap();
        let mut sums = Vec::new();
        for _ in 0..2 {
            let mut m = Machine::new(&image);
            m.set_input(input(Scale::Tiny, 5));
            m.run(100_000_000, |_| {}).unwrap();
            let out = m.output();
            sums.push(out[out.len() - 4..].to_vec());
        }
        assert_eq!(sums[0], sums[1]);
    }
}
