//! `gcc` analog: a compiler pass pipeline.
//!
//! Mirrors SPEC '95 `126.gcc`: lexing a source text, building expression
//! trees in a node pool, running a constant-folding + constant-propagation
//! pass, and emitting linearized code. Like gcc, it has many static
//! instructions spread across many functions, branch-heavy dispatch on
//! token/node kinds, and the *lowest* average repeats of the suite (the
//! data values churn with the source text).
//!
//! Source language: statements `v = expr;` where `v` is a lowercase
//! variable and `expr` uses `+ - * ( )`, integer literals, and variables.
//!
//! Input stream: `[total: i32][source text]`. Output: emitted-op counts
//! and a fold checksum.

use crate::inputs::{rng, InputStream};
use crate::rng::Rng;
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "gcc", spec_analog: "126.gcc", source: SOURCE, input_fn: input }
}

/// Generates a random well-formed source program.
pub(crate) fn gen_source(r: &mut Rng, approx_len: usize) -> Vec<u8> {
    fn gen_expr(r: &mut Rng, out: &mut Vec<u8>, depth: u32) {
        if depth >= 4 || r.gen_bool(0.4) {
            if r.gen_bool(0.5) {
                out.extend_from_slice(r.gen_range(0..500).to_string().as_bytes());
            } else {
                out.push(b'a' + r.gen_range(0..8) as u8);
            }
            return;
        }
        let op = [b'+', b'-', b'*'][r.gen_range(0..3)];
        let paren = r.gen_bool(0.4);
        if paren {
            out.push(b'(');
        }
        gen_expr(r, out, depth + 1);
        out.push(op);
        gen_expr(r, out, depth + 1);
        if paren {
            out.push(b')');
        }
    }
    let mut out = Vec::with_capacity(approx_len + 32);
    while out.len() < approx_len {
        out.push(b'a' + r.gen_range(0..8) as u8);
        out.push(b'=');
        gen_expr(r, &mut out, 0);
        out.push(b';');
    }
    out
}

/// Builds the input stream: header plus generated source.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let approx = match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 20_000,
        Scale::Full => 150_000,
    };
    let mut r = rng(seed ^ 0x6cc);
    let src = gen_source(&mut r, approx);
    let mut s = InputStream::new();
    s.int(src.len() as i32).bytes(&src);
    s.finish()
}

const SOURCE: &str = r#"
// ---- gcc: lex -> parse -> fold/propagate -> emit ----
char src[4096];
int src_len;
int src_pos;

// Token kinds.
// 0 eof, 1 num, 2 var, 3 +, 4 -, 5 *, 6 (, 7 ), 8 =, 9 ;
int tok_kind;
int tok_val;

// AST node pool: kind 1 num, 2 var, 3/4/5 binary ops. Lives on the
// heap, as gcc's obstacks do.
int* node_kind;
int* node_val;
int* node_l;
int* node_r;
int n_nodes;

// Constant propagation state.
int var_known[8];
int var_val[8];

// Emission.
char outbuf[512];
int outlen = 0;
int ops_emitted = 0;
int folds = 0;
int fold_checksum = 0;

int flush_out() {
    if (outlen > 0) write(outbuf, outlen);
    outlen = 0;
    return 0;
}

int put_byte(int b) {
    outbuf[outlen] = b & 255;
    outlen = outlen + 1;
    if (outlen == 512) flush_out();
    return 0;
}

int next_token() {
    if (src_pos >= src_len) {
        tok_kind = 0;
        return 0;
    }
    int c = src[src_pos];
    src_pos = src_pos + 1;
    if (c >= '0' && c <= '9') {
        int v = c - '0';
        while (src_pos < src_len && src[src_pos] >= '0' && src[src_pos] <= '9') {
            v = v * 10 + (src[src_pos] - '0');
            src_pos = src_pos + 1;
        }
        tok_kind = 1;
        tok_val = v;
        return 1;
    }
    if (c >= 'a' && c <= 'z') {
        tok_kind = 2;
        tok_val = (c - 'a') & 7;
        return 2;
    }
    if (c == '+') { tok_kind = 3; return 3; }
    if (c == '-') { tok_kind = 4; return 4; }
    if (c == '*') { tok_kind = 5; return 5; }
    if (c == '(') { tok_kind = 6; return 6; }
    if (c == ')') { tok_kind = 7; return 7; }
    if (c == '=') { tok_kind = 8; return 8; }
    if (c == ';') { tok_kind = 9; return 9; }
    tok_kind = 0;
    return 0;
}

int new_node(int kind, int val, int l, int r) {
    if (n_nodes >= 512) return 0;
    node_kind[n_nodes] = kind;
    node_val[n_nodes] = val;
    node_l[n_nodes] = l;
    node_r[n_nodes] = r;
    n_nodes = n_nodes + 1;
    return n_nodes - 1;
}

// Forward calls need no prototype: name resolution is whole-program.
int parse_factor() {
    if (tok_kind == 1) {
        int n = new_node(1, tok_val, 0 - 1, 0 - 1);
        next_token();
        return n;
    }
    if (tok_kind == 2) {
        int n = new_node(2, tok_val, 0 - 1, 0 - 1);
        next_token();
        return n;
    }
    if (tok_kind == 6) {
        next_token();
        int n = parse_expr();
        if (tok_kind == 7) next_token();
        return n;
    }
    // Error recovery: treat as zero.
    next_token();
    return new_node(1, 0, 0 - 1, 0 - 1);
}

int parse_term() {
    int l = parse_factor();
    while (tok_kind == 5) {
        next_token();
        int r = parse_factor();
        l = new_node(5, 0, l, r);
    }
    return l;
}

int parse_expr() {
    int l = parse_term();
    while (tok_kind == 3 || tok_kind == 4) {
        int op = tok_kind;
        next_token();
        int r = parse_term();
        l = new_node(op, 0, l, r);
    }
    return l;
}

// Folding: constant-propagates known variables, then collapses
// constant binary subtrees in place.
int fold(int n) {
    int k = node_kind[n];
    if (k == 1) return 1;
    if (k == 2) {
        int v = node_val[n];
        if (var_known[v]) {
            node_kind[n] = 1;
            node_val[n] = var_val[v];
            folds = folds + 1;
            return 1;
        }
        return 0;
    }
    int lc = fold(node_l[n]);
    int rc = fold(node_r[n]);
    if (lc && rc) {
        int a = node_val[node_l[n]];
        int b = node_val[node_r[n]];
        int v = 0;
        if (k == 3) v = a + b;
        if (k == 4) v = a - b;
        if (k == 5) v = a * b;
        node_kind[n] = 1;
        node_val[n] = v;
        folds = folds + 1;
        fold_checksum = fold_checksum * 33 + v;
        return 1;
    }
    return 0;
}

// Emit postfix stack code: 'C' const, 'L' var load, '+', '-', '*'.
int emit(int n) {
    int k = node_kind[n];
    if (k == 1) {
        put_byte('C');
        put_byte(node_val[n] & 255);
        put_byte((node_val[n] >> 8) & 255);
        ops_emitted = ops_emitted + 1;
        return 1;
    }
    if (k == 2) {
        put_byte('L');
        put_byte(node_val[n]);
        ops_emitted = ops_emitted + 1;
        return 1;
    }
    emit(node_l[n]);
    emit(node_r[n]);
    if (k == 3) put_byte('+');
    if (k == 4) put_byte('-');
    if (k == 5) put_byte('*');
    ops_emitted = ops_emitted + 1;
    return 1;
}

int process_chunk() {
    src_pos = 0;
    next_token();
    while (tok_kind != 0) {
        if (tok_kind != 2) {
            next_token();
            continue;
        }
        int v = tok_val;
        next_token();
        if (tok_kind != 8) continue;
        next_token();
        n_nodes = 0;
        int root = parse_expr();
        fold(root);
        put_byte('S');
        put_byte(v);
        emit(root);
        if (node_kind[root] == 1) {
            var_known[v] = 1;
            var_val[v] = node_val[root];
        } else {
            var_known[v] = 0;
        }
        if (tok_kind == 9) next_token();
    }
    return 0;
}

int main() {
    int total = read_int();
    node_kind = sbrk(512 * 4);
    node_val = sbrk(512 * 4);
    node_l = sbrk(512 * 4);
    node_r = sbrk(512 * 4);
    int processed = 0;
    while (processed < total) {
        int want = total - processed;
        if (want > 4096) want = 4096;
        int n = read(src, want);
        if (n == 0) break;
        src_len = n;
        process_chunk();
        processed = processed + n;
    }
    flush_out();
    write_int(ops_emitted);
    write_int(folds);
    write_int(fold_checksum);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run_src(src: &[u8]) -> (Vec<u8>, i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(src.len() as i32).bytes(src);
        m.set_input(s.finish());
        assert_eq!(m.run(300_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        let n = out.len();
        let ops = i32::from_le_bytes(out[n - 12..n - 8].try_into().unwrap());
        let folds = i32::from_le_bytes(out[n - 8..n - 4].try_into().unwrap());
        (out[..n - 12].to_vec(), ops, folds)
    }

    /// Executes the emitted postfix code and returns final variable
    /// values — validating parse+fold+emit end to end.
    fn exec_postfix(code: &[u8]) -> [i32; 8] {
        let mut vars = [0i32; 8];
        let mut stack: Vec<i32> = Vec::new();
        let mut i = 0;
        let mut pending: Option<usize> = None;
        while i < code.len() {
            match code[i] {
                b'S' => {
                    if let Some(v) = pending.take() {
                        vars[v] = stack.pop().expect("value for assignment");
                    }
                    pending = Some(code[i + 1] as usize);
                    i += 2;
                }
                b'C' => {
                    let v = i32::from(code[i + 1]) | (i32::from(code[i + 2]) << 8);
                    stack.push(v);
                    i += 3;
                }
                b'L' => {
                    stack.push(vars[code[i + 1] as usize]);
                    i += 2;
                }
                op @ (b'+' | b'-' | b'*') => {
                    let b = stack.pop().unwrap();
                    let a = stack.pop().unwrap();
                    stack.push(match op {
                        b'+' => a.wrapping_add(b),
                        b'-' => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    });
                    i += 1;
                }
                other => panic!("bad opcode {other}"),
            }
        }
        if let Some(v) = pending {
            vars[v] = stack.pop().expect("value for final assignment");
        }
        vars
    }

    #[test]
    fn folds_constants_and_emits_correct_code() {
        // a = 2 + 3 * 4  -> fully folded to 14.
        // b = a + 1      -> a is known, folds to 15.
        let (code, ops, folds) = run_src(b"a=2+3*4;b=a+1;");
        assert!(folds >= 3, "folds = {folds}");
        let vars = exec_postfix(&code);
        assert_eq!(vars[0], 14);
        assert_eq!(vars[1], 15);
        // Fully folded statements emit exactly one constant each.
        assert_eq!(ops, 2);
    }

    #[test]
    fn small_values_survive_emission_exactly() {
        // Generated sources stay in 16-bit constant range for small
        // depths; compare against direct evaluation.
        let (code, _, _) = run_src(b"a=100;b=a*3;c=(b-50)+a;");
        let vars = exec_postfix(&code);
        assert_eq!(vars[0], 100);
        assert_eq!(vars[1], 300);
        assert_eq!(vars[2], 350);
    }

    #[test]
    fn generated_sources_process_cleanly() {
        let mut r = rng(31);
        let src = gen_source(&mut r, 1_500);
        let (code, ops, folds) = run_src(&src);
        assert!(ops > 0 && folds > 0);
        assert!(!code.is_empty());
        // Must not panic: emitted stream is well-formed.
        let _ = exec_postfix(&code);
    }
}
