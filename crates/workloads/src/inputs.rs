//! Seeded input-stream builders shared by the workload modules.

use crate::rng::Rng;

/// A little-endian binary input stream under construction.
#[derive(Debug, Default)]
pub(crate) struct InputStream {
    bytes: Vec<u8>,
}

impl InputStream {
    pub(crate) fn new() -> InputStream {
        InputStream::default()
    }

    /// Appends a 32-bit little-endian integer (read by `read_int()`).
    pub(crate) fn int(&mut self, v: i32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes.
    pub(crate) fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(b);
        self
    }

    pub(crate) fn finish(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.bytes)
    }
}

/// Deterministic RNG for input generation.
pub(crate) fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Synthetic English-ish text with a bounded vocabulary — the kind of
/// byte stream `compress`'s `bigtest.in` models: repetitive words with
/// occasional noise.
pub(crate) fn pseudo_text(rng: &mut Rng, len: usize) -> Vec<u8> {
    const VOCAB: [&str; 24] = [
        "the",
        "of",
        "instruction",
        "repetition",
        "value",
        "locality",
        "program",
        "dynamic",
        "static",
        "cache",
        "buffer",
        "reuse",
        "table",
        "slice",
        "global",
        "argument",
        "function",
        "prologue",
        "epilogue",
        "memo",
        "spec",
        "simulator",
        "register",
        "result",
    ];
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        let w = VOCAB[rng.gen_range(0..VOCAB.len())];
        out.extend_from_slice(w.as_bytes());
        // Mostly spaces, occasional punctuation/newline noise.
        match rng.gen_range(0..12) {
            0 => out.push(b'\n'),
            1 => out.extend_from_slice(b". "),
            _ => out.push(b' '),
        }
    }
    out.truncate(len);
    out
}

/// Lowercase pseudo-words, newline separated, drawn from a Zipf-ish
/// distribution (frequent short words, rarer long ones).
pub(crate) fn word_list(rng: &mut Rng, count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count * 7);
    for _ in 0..count {
        // Re-use a small set of stems frequently.
        let len = 2 + rng.gen_range(0..7);
        let stemmy = rng.gen_bool(0.6);
        for i in 0..len {
            let c = if stemmy {
                b'a' + ((i * 7 + rng.gen_range(0..4)) % 26) as u8
            } else {
                b'a' + rng.gen_range(0..26) as u8
            };
            out.push(c);
        }
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_layout() {
        let mut s = InputStream::new();
        s.int(0x0403_0201).bytes(b"xy");
        assert_eq!(s.finish(), vec![1, 2, 3, 4, b'x', b'y']);
    }

    #[test]
    fn pseudo_text_is_deterministic_and_sized() {
        let a = pseudo_text(&mut rng(1), 500);
        let b = pseudo_text(&mut rng(1), 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&c| c.is_ascii()));
        // Repetitive: the most common word should appear several times.
        let text = String::from_utf8(a).unwrap();
        assert!(text.matches("the").count() + text.matches("of").count() >= 2);
    }

    #[test]
    fn word_list_shape() {
        let w = word_list(&mut rng(2), 50);
        let text = String::from_utf8(w).unwrap();
        assert_eq!(text.lines().count(), 50);
        assert!(text.lines().all(|l| !l.is_empty() && l.bytes().all(|c| c.is_ascii_lowercase())));
    }
}
