//! `stencil` analog: deep regular loop nests over a 2-D grid.
//!
//! The loop-diversity counterpoint to the flat dispatch loop of
//! [`interp_like`]: a 5-point weighted stencil swept repeatedly over a
//! grid, structured as a four-deep nest (sweep → row → column → tap) plus
//! a copy-back nest, with a long serial dependence chain through the
//! checksum. The loop-nest profiler should see real depth here, and the
//! tap loop's table reads repeat heavily while the grid data drifts.
//!
//! Input stream: `[n: i32][sweeps: i32][n·n grid words]`. Output: a
//! 4-byte checksum plus the sweep count.
//!
//! [`interp_like`]: crate::interp_like

use crate::inputs::{rng, InputStream};
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "stencil", spec_analog: "(stencil kernel)", source: SOURCE, input_fn: input }
}

/// Builds the input stream: grid edge, sweep count, and seeded initial
/// grid values (16-bit, matching the VM's value mask).
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let (n, sweeps) = match scale {
        Scale::Tiny => (12usize, 24),
        Scale::Small => (24, 40),
        Scale::Full => (32, 130),
    };
    let mut r = rng(seed ^ 0x57e4_c115);
    let mut s = InputStream::new();
    s.int(n as i32).int(sweeps);
    for _ in 0..n * n {
        s.int(r.gen_range(0..0x1_0000));
    }
    s.finish()
}

const SOURCE: &str = r#"
// ---- stencil: 5-point weighted sweeps, four-deep nest ----
int grid[1156];
int nxt[1156];
int wt[5] = {12, 3, 3, 3, 3};
int off[5];

int main() {
    int n = read_int();
    int sweeps = read_int();
    int total = n * n;
    int i;
    int j;
    int k;
    for (i = 0; i < total; i++) grid[i] = read_int();
    off[0] = 0;
    off[1] = 0 - 1;
    off[2] = 1;
    off[3] = 0 - n;
    off[4] = n;
    int t;
    int checksum = 0;
    for (t = 0; t < sweeps; t++) {
        for (i = 1; i < n - 1; i++) {
            int row = i * n;
            for (j = 1; j < n - 1; j++) {
                int c = row + j;
                int acc = 0;
                for (k = 0; k < 5; k++) {
                    acc = acc + wt[k] * grid[c + off[k]];
                }
                nxt[c] = (acc >> 4) & 0xffff;
            }
        }
        for (i = 1; i < n - 1; i++) {
            int row = i * n;
            for (j = 1; j < n - 1; j++) {
                int c = row + j;
                grid[c] = nxt[c];
                checksum = (checksum * 33 + grid[c]) & 0x7fffffff;
            }
        }
    }
    write_int(checksum);
    write_int(sweeps);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    /// Rust mirror of the MiniC stencil, used to validate the arithmetic.
    fn reference(n: usize, sweeps: i32, init: &[i32]) -> i32 {
        let wt = [12i32, 3, 3, 3, 3];
        let mut grid = init.to_vec();
        let mut nxt = vec![0i32; n * n];
        let mut checksum = 0i32;
        for _ in 0..sweeps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let c = i * n + j;
                    let taps = [grid[c], grid[c - 1], grid[c + 1], grid[c - n], grid[c + n]];
                    let acc: i32 = wt.iter().zip(taps).map(|(w, v)| w * v).sum();
                    nxt[c] = (acc >> 4) & 0xffff;
                }
            }
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let c = i * n + j;
                    grid[c] = nxt[c];
                    checksum = (checksum.wrapping_mul(33).wrapping_add(grid[c])) & 0x7fff_ffff;
                }
            }
        }
        checksum
    }

    fn run(stream: Vec<u8>) -> (i32, i32) {
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        m.set_input(stream);
        assert_eq!(m.run(100_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let out = m.output().to_vec();
        assert_eq!(out.len(), 8);
        (
            i32::from_le_bytes(out[0..4].try_into().unwrap()),
            i32::from_le_bytes(out[4..8].try_into().unwrap()),
        )
    }

    #[test]
    fn sweeps_match_the_rust_reference() {
        for seed in [0, 9, 1998] {
            let stream = input(Scale::Tiny, seed);
            let n = i32::from_le_bytes(stream[0..4].try_into().unwrap()) as usize;
            let sweeps = i32::from_le_bytes(stream[4..8].try_into().unwrap());
            let init: Vec<i32> = (0..n * n)
                .map(|i| i32::from_le_bytes(stream[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
                .collect();
            assert_eq!(run(stream), (reference(n, sweeps, &init), sweeps), "seed {seed}");
        }
    }

    #[test]
    fn nest_reaches_depth_four() {
        use instrep_core::{AnalysisConfig, Session};
        let wl = workload();
        let image = wl.build().unwrap();
        let loops = Session::new(AnalysisConfig::default())
            .loops(true)
            .run_one(&image, wl.input(Scale::Tiny, 0))
            .unwrap()
            .loops
            .unwrap();
        // sweep → row → column → tap: the profiler must observe the full
        // static nest depth dynamically.
        assert!(loops.max_depth >= 4, "stencil nest only reached depth {}", loops.max_depth);
        // The innermost tap loop turns over 5 times per interior cell per
        // sweep — it dominates the trip counts.
        let hot = loops.top_loops(1)[0];
        assert!(hot.trips > 1_000, "tap loop tripped only {} times", hot.trips);
    }
}
