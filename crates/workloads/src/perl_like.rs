//! `perl` analog: text scripting — pattern matching, scoring, hashing.
//!
//! Mirrors SPEC '95 `134.perl` running its `scrabbl.pl` input: a stream
//! of words is scored against a letter-value table, deduplicated through
//! a string hash table, and matched against a set of regex-like patterns
//! (literal / `.` / `*`) with the classic recursive matcher. The profile
//! is external-input heavy (perl shows the suite's highest external-input
//! share) with interpreter-style dispatch.
//!
//! Input stream: `[total: i32][newline-separated lowercase words]`.
//! Output: score totals, unique-word count, and pattern hit counts.

use crate::inputs::{rng, word_list, InputStream};
use crate::{Scale, Workload};

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "perl", spec_analog: "134.perl", source: SOURCE, input_fn: input }
}

/// Builds the input stream: header plus a seeded word list.
pub fn input(scale: Scale, seed: u64) -> Vec<u8> {
    let words = match scale {
        Scale::Tiny => 300,
        Scale::Small => 3_000,
        Scale::Full => 25_000,
    };
    let mut r = rng(seed ^ 0x9e71);
    let list = word_list(&mut r, words);
    let mut s = InputStream::new();
    s.int(list.len() as i32).bytes(&list);
    s.finish()
}

/// The patterns compiled into the workload (for tests).
pub const PATTERNS: [&str; 4] = ["a*b", ".e.", "th*", "s.*e"];

const SOURCE: &str = r#"
// ---- perl: word scoring + dedup hash + tiny regex engine ----
// Scrabble letter values a..z.
int letter_val[26] = {1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3, 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10};

// Patterns, '|'-separated: literal chars, '.' any, '*' zero-or-more of
// the previous char.
char pattern_text[20] = "a*b|.e.|th*|s.*e";
char pats[4][8];
int n_pats;

char wordbuf[4096];

// String store + hash table for dedup; the store lives on the heap,
// like perl's string arena.
char* wstore;
int wstore_len = 0;
int h_head[256];
int h_next[1024];
int h_off[1024];
int h_len[1024];
int h_count[1024];
int n_entries = 0;

int pattern_hits[4];
int total_score = 0;
int n_words = 0;

// --- regex: match pattern p (nul-terminated) against s[0..slen) ---
int match_here(char* p, char* s, int slen) {
    if (p[0] == 0) return slen == 0;
    if (p[1] == '*') return match_star(p[0], p + 2, s, slen);
    if (slen > 0 && (p[0] == '.' || p[0] == s[0])) {
        return match_here(p + 1, s + 1, slen - 1);
    }
    return 0;
}

int match_star(int c, char* p, char* s, int slen) {
    int i = 0;
    while (1) {
        if (match_here(p, s + i, slen - i)) return 1;
        if (i >= slen) return 0;
        if (c != '.' && s[i] != c) return 0;
        i = i + 1;
    }
    return 0;
}

int score_word(char* w, int len) {
    int s = 0;
    int i;
    for (i = 0; i < len; i++) {
        int c = w[i] - 'a';
        if (c >= 0 && c < 26) s = s + letter_val[c];
    }
    if (len >= 7) s = s + 50;
    return s;
}

int hash_str(char* w, int len) {
    int h = 5381;
    int i;
    for (i = 0; i < len; i++) h = h * 33 + w[i];
    return h & 255;
}

int str_eq(char* a, char* b, int len) {
    int i;
    for (i = 0; i < len; i++) {
        if (a[i] != b[i]) return 0;
    }
    return 1;
}

// Returns 1 if the word was new.
int intern(char* w, int len) {
    int h = hash_str(w, len);
    int i = h_head[h];
    while (i >= 0) {
        if (h_len[i] == len && str_eq(wstore + h_off[i], w, len)) {
            h_count[i] = h_count[i] + 1;
            return 0;
        }
        i = h_next[i];
    }
    if (n_entries >= 1024 || wstore_len + len > 8192) return 0;
    int j;
    for (j = 0; j < len; j++) wstore[wstore_len + j] = w[j];
    h_off[n_entries] = wstore_len;
    h_len[n_entries] = len;
    h_count[n_entries] = 1;
    h_next[n_entries] = h_head[h];
    h_head[h] = n_entries;
    wstore_len = wstore_len + len;
    n_entries = n_entries + 1;
    return 1;
}

int setup_patterns() {
    n_pats = 0;
    int i = 0;
    int k = 0;
    while (pattern_text[i]) {
        if (pattern_text[i] == '|') {
            pats[n_pats][k] = 0;
            n_pats = n_pats + 1;
            k = 0;
        } else {
            pats[n_pats][k] = pattern_text[i];
            k = k + 1;
        }
        i = i + 1;
    }
    pats[n_pats][k] = 0;
    n_pats = n_pats + 1;
    return n_pats;
}

int process_word(char* w, int len) {
    n_words = n_words + 1;
    total_score = total_score + score_word(w, len);
    intern(w, len);
    int p;
    for (p = 0; p < n_pats; p++) {
        if (match_here(pats[p], w, len)) pattern_hits[p] = pattern_hits[p] + 1;
    }
    return 0;
}

int main() {
    int total = read_int();
    wstore = sbrk(8192);
    setup_patterns();
    int i;
    for (i = 0; i < 256; i++) h_head[i] = 0 - 1;
    int processed = 0;
    int wlen = 0;
    char cur[32];
    while (processed < total) {
        int want = total - processed;
        if (want > 4096) want = 4096;
        int n = read(wordbuf, want);
        if (n == 0) break;
        for (i = 0; i < n; i++) {
            int c = wordbuf[i];
            if (c == '\n') {
                if (wlen > 0) process_word(cur, wlen);
                wlen = 0;
            } else {
                if (wlen < 31) {
                    cur[wlen] = c;
                    wlen = wlen + 1;
                }
            }
        }
        processed = processed + n;
    }
    if (wlen > 0) process_word(cur, wlen);
    write_int(total_score);
    write_int(n_words);
    write_int(n_entries);
    for (i = 0; i < n_pats; i++) write_int(pattern_hits[i]);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    fn run_words(words: &[&str]) -> Vec<i32> {
        let text: Vec<u8> =
            words.iter().flat_map(|w| w.bytes().chain(std::iter::once(b'\n'))).collect();
        let image = workload().build().unwrap();
        let mut m = Machine::new(&image);
        let mut s = InputStream::new();
        s.int(text.len() as i32).bytes(&text);
        m.set_input(s.finish());
        assert_eq!(m.run(300_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        m.output().chunks(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    const VALS: [i32; 26] =
        [1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3, 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10];

    fn score(w: &str) -> i32 {
        let s: i32 = w.bytes().map(|c| VALS[(c - b'a') as usize]).sum();
        s + if w.len() >= 7 { 50 } else { 0 }
    }

    #[test]
    fn scores_match_scrabble_values() {
        let out = run_words(&["cab", "quiz", "jazzier"]);
        assert_eq!(out[0], score("cab") + score("quiz") + score("jazzier"));
        assert_eq!(out[1], 3); // words
        assert_eq!(out[2], 3); // unique
    }

    #[test]
    fn dedup_counts_unique_words() {
        let out = run_words(&["the", "cat", "the", "the", "dog", "cat"]);
        assert_eq!(out[1], 6);
        assert_eq!(out[2], 3);
    }

    #[test]
    fn patterns_match_correctly() {
        // PATTERNS = ["a*b", ".e.", "th*", "s.*e"]
        let out = run_words(&["b", "aab", "bed", "the", "t", "th", "see", "sle", "sb"]);
        let hits = &out[3..7];
        // "a*b": b, aab.          => 2
        // ".e.": bed, see.        => 2 ("sle" has l in the middle)
        // "th*": "t" (h* empty), "th"; "the" fails on the trailing e.
        // "s.*e": see, sle        => 2
        assert_eq!(hits[0], 2, "a*b");
        assert_eq!(hits[1], 2, ".e.");
        assert_eq!(hits[2], 2, "th*");
        assert_eq!(hits[3], 2, "s.*e");
    }

    #[test]
    fn long_word_bonus() {
        let out = run_words(&["aaaaaaa"]);
        assert_eq!(out[0], 7 + 50);
    }
}
