//! Analysis-tier differential: every one of the ten benchmark
//! families must produce byte-identical analysis output under the fused
//! per-event hot row and the split (oracle) observers — the report, the
//! rendered tables, the interval JSONL, the profile JSON, the loops
//! JSON, and the occupancy gauges, at one worker thread and several.
//!
//! This is the analysis-layer sibling of `tests/differential.rs` (which
//! proves the two *interpreter* tiers stream identical events). A
//! proptest-gated case extends the sweep to randomly parameterized
//! MiniC programs; run it with
//! `cargo test -p instrep-workloads --features proptest`.

use instrep_core::report::{self, Named};
use instrep_core::{
    interval, AnalysisConfig, AnalysisTier, IntervalWindow, LoopsReport, ProfileReport, Session,
};
use instrep_workloads::{all, Scale, Workload};

/// Tiny-scale analysis windows (mirroring `instrep-repro --scale tiny`):
/// past initialization, into the steady state every table measures.
const SKIP: u64 = 20_000;
const WINDOW: u64 = 400_000;
const INTERVAL: u64 = 7_000;

struct TierOutput {
    report_debug: String,
    tables: String,
    interval_jsonl: String,
    profile_json: String,
    loops_json: String,
    gauges: Vec<(&'static str, u64)>,
}

/// One fully-probed run of `wl` under `tier`, everything the tier can
/// influence rendered to comparable bytes.
fn run_tier(
    wl: &Workload,
    image: &instrep_asm::Image,
    seed: u64,
    tier: AnalysisTier,
) -> TierOutput {
    let cfg = AnalysisConfig { skip: SKIP, window: WINDOW, ..AnalysisConfig::default() };
    let ir = Session::new(cfg)
        .analysis(tier)
        .metrics(true)
        .interval(INTERVAL)
        .profile(true)
        .loops(true)
        .run_one(image, wl.input(Scale::Tiny, seed))
        .expect("workload analyzes");

    let named: Vec<Named<'_>> = vec![(wl.name, &ir.report)];
    let tables = [
        report::table1(&named),
        report::table2(&named),
        report::table3(&named),
        report::table4(&named),
        report::tables5_6_7(&named),
        report::table8(&named),
        report::table9(&named),
        report::table10(&named),
        report::ext_classes(&named),
        report::ext_predict(&named),
    ]
    .join("\n");

    let windows: Vec<(String, Vec<IntervalWindow>)> =
        vec![(wl.name.to_string(), ir.intervals.expect("interval probe attached"))];
    let profile = ProfileReport {
        scale: "tiny".to_string(),
        seed,
        top: 10,
        workloads: vec![(wl.name.to_string(), ir.profile.expect("profile probe attached"))],
    };
    let loops = LoopsReport {
        scale: "tiny".to_string(),
        seed,
        top: 10,
        workloads: vec![(wl.name.to_string(), ir.loops.expect("loop probe attached"))],
    };
    TierOutput {
        report_debug: format!("{:?}", ir.report),
        tables,
        interval_jsonl: interval::to_jsonl("tiny", seed, 1, INTERVAL, &windows),
        profile_json: profile.to_json(),
        loops_json: loops.to_json(),
        gauges: ir.metrics.expect("metrics probe attached").gauges,
    }
}

fn assert_tiers_identical(wl: &Workload, seed: u64) {
    let image = wl.build().expect("workload compiles");
    let fused = run_tier(wl, &image, seed, AnalysisTier::Fused);
    let split = run_tier(wl, &image, seed, AnalysisTier::Split);
    assert_eq!(fused.report_debug, split.report_debug, "{}: reports diverge", wl.name);
    assert_eq!(fused.tables, split.tables, "{}: rendered tables diverge", wl.name);
    assert_eq!(fused.interval_jsonl, split.interval_jsonl, "{}: interval series", wl.name);
    assert_eq!(fused.profile_json, split.profile_json, "{}: profile JSON", wl.name);
    assert_eq!(fused.loops_json, split.loops_json, "{}: loops JSON", wl.name);
    assert_eq!(fused.gauges, split.gauges, "{}: occupancy gauges", wl.name);
}

#[test]
fn every_workload_family_analyzes_identically_across_tiers() {
    for wl in all() {
        assert_tiers_identical(&wl, 1998);
    }
}

/// Seeds must not matter either: a second input set exercises different
/// control-flow paths through the same text.
#[test]
fn alternate_seed_analyzes_identically_across_tiers() {
    let wl = all().into_iter().find(|w| w.name == "gcc").expect("gcc family exists");
    assert_tiers_identical(&wl, 777);
}

#[cfg(feature = "proptest")]
mod random_programs {
    use super::*;
    use instrep_core::AnalysisJob;
    use proptest::prelude::*;

    /// Report Debug string + interval windows + final gauges for one
    /// tier at one thread count over `jobs` copies of the image.
    fn tier_fingerprint(
        image: &instrep_asm::Image,
        tier: AnalysisTier,
        threads: usize,
    ) -> Vec<(String, String, Vec<(&'static str, u64)>)> {
        let cfg = AnalysisConfig { skip: 1_000, window: 50_000, ..AnalysisConfig::default() };
        let jobs: Vec<AnalysisJob<'_>> =
            (0..4).map(|_| AnalysisJob { image, input: Vec::new(), label: "rand" }).collect();
        Session::new(cfg)
            .jobs(threads)
            .analysis(tier)
            .metrics(true)
            .interval(1_000)
            .run(jobs)
            .into_iter()
            .map(|r| {
                let ir = r.expect("random program analyzes");
                (
                    format!("{:?}", ir.report),
                    format!("{:?}", ir.intervals.expect("interval probe attached")),
                    ir.metrics.expect("metrics probe attached").gauges,
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Every occupancy/memory gauge — the final set and the ones
        /// sampled at each interval boundary — must match between the
        /// fused and split tiers on randomly parameterized MiniC
        /// programs, at one worker thread and at four.
        #[test]
        fn fused_gauges_match_split_on_random_workloads(
            tab in proptest::collection::vec(0u32..1000, 8),
            iters in 10u32..400,
            step in 1u32..9,
            depth in 1u32..8,
        ) {
            let src = format!(
                "int tab[8] = {{{}}};\n\
                 int lookup(int i) {{ return tab[i & 7]; }}\n\
                 int rec(int n) {{ if (n <= 0) return 1; return rec(n - 1) + lookup(n); }}\n\
                 int main() {{\n\
                     int s = rec({depth});\n\
                     int i;\n\
                     for (i = 0; i < {iters}; i = i + {step}) s = s + lookup(i);\n\
                     return s & 0xff;\n\
                 }}",
                tab.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            );
            let image = instrep_minicc::build(&src).expect("random program compiles");
            for threads in [1usize, 4] {
                let fused = tier_fingerprint(&image, AnalysisTier::Fused, threads);
                let split = tier_fingerprint(&image, AnalysisTier::Split, threads);
                prop_assert_eq!(fused, split, "tiers diverge at {} thread(s)", threads);
            }
        }

        /// The loop-nest attribution must conserve the per-PC profile on
        /// randomly parameterized MiniC programs: every loop's exec/
        /// repeated count is a subset of the tracker's per-PC sums, the
        /// loop share plus the no-loop remainder tiles them exactly, and
        /// the whole profile is identical at one worker thread and four.
        #[test]
        fn loop_sums_never_exceed_per_pc_sums_on_random_workloads(
            tab in proptest::collection::vec(0u32..1000, 8),
            iters in 10u32..400,
            step in 1u32..9,
            depth in 1u32..8,
        ) {
            let src = format!(
                "int tab[8] = {{{}}};\n\
                 int lookup(int i) {{ return tab[i & 7]; }}\n\
                 int rec(int n) {{ if (n <= 0) return 1; return rec(n - 1) + lookup(n); }}\n\
                 int main() {{\n\
                     int s = rec({depth});\n\
                     int i;\n\
                     for (i = 0; i < {iters}; i = i + {step}) s = s + lookup(i);\n\
                     return s & 0xff;\n\
                 }}",
                tab.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            );
            let image = instrep_minicc::build(&src).expect("random program compiles");
            let cfg = AnalysisConfig { skip: 1_000, window: 50_000, ..AnalysisConfig::default() };
            let mut baseline = None;
            for threads in [1usize, 4] {
                let jobs: Vec<AnalysisJob<'_>> =
                    (0..4).map(|_| AnalysisJob { image: &image, input: Vec::new(), label: "rand" }).collect();
                let results: Vec<_> = Session::new(cfg)
                    .jobs(threads)
                    .profile(true)
                    .loops(true)
                    .run(jobs)
                    .into_iter()
                    .map(|r| {
                        let ir = r.expect("random program analyzes");
                        (ir.loops.expect("loop probe attached"), ir.profile.expect("profile probe attached"))
                    })
                    .collect();
                for (loops, profile) in &results {
                    let pc_exec: u64 = profile.sites.iter().map(|s| s.exec).sum();
                    let pc_rep: u64 = profile.sites.iter().map(|s| s.repeated).sum();
                    let loop_exec: u64 = loops.loops.iter().map(|l| l.exec).sum();
                    let loop_rep: u64 = loops.loops.iter().map(|l| l.repeated).sum();
                    prop_assert!(loop_exec <= pc_exec, "loop exec {loop_exec} > per-PC {pc_exec}");
                    prop_assert!(loop_rep <= pc_rep, "loop repeated {loop_rep} > per-PC {pc_rep}");
                    prop_assert_eq!(loop_exec + loops.no_loop_exec, pc_exec, "exec does not tile");
                    prop_assert_eq!(
                        loop_rep + loops.no_loop_repeated, pc_rep, "repeated does not tile"
                    );
                    prop_assert_eq!(loops.total_exec(), pc_exec, "path sums diverge from per-PC");
                }
                let fingerprint: Vec<String> =
                    results.iter().map(|(l, _)| format!("{l:?}")).collect();
                match &baseline {
                    None => baseline = Some(fingerprint),
                    Some(b) => prop_assert_eq!(
                        b, &fingerprint, "loop profiles diverge at {} thread(s)", threads
                    ),
                }
            }
        }
    }
}
