//! Workload-family differential: every one of the ten benchmark
//! families must produce a byte-identical [`Event`] stream under the
//! predecoded interpreter tier and the legacy `step()` oracle, over a
//! budgeted window covering startup and steady state.
//!
//! The trap corpus (programs the workloads never reach) lives in
//! `crates/sim/tests/differential.rs`. A proptest-gated case extends
//! the sweep to randomly parameterized MiniC programs; run it with
//! `cargo test -p instrep-workloads --features proptest`.

use instrep_sim::{Event, InterpTier, Machine};
use instrep_workloads::{all, Scale};

/// Events per family: enough to leave initialization and enter the
/// steady state every analysis measures, small enough to keep tier-1
/// runtime reasonable.
const BUDGET: u64 = 120_000;

fn stream(image: &instrep_asm::Image, input: Vec<u8>, tier: InterpTier) -> (Vec<Event>, String) {
    let mut m = Machine::with_tier(image, tier);
    m.set_input(input);
    let mut events = Vec::with_capacity(BUDGET as usize);
    let outcome = m.run(BUDGET, |ev| events.push(*ev));
    (events, format!("{outcome:?} icount={} pc={:#x}", m.icount(), m.pc()))
}

#[test]
fn every_workload_family_streams_identically_across_tiers() {
    for wl in all() {
        let image = wl.build().expect("workload compiles");
        let input = wl.input(Scale::Tiny, 1998);
        let (fast, fast_end) = stream(&image, input.clone(), InterpTier::Predecoded);
        let (legacy, legacy_end) = stream(&image, input, InterpTier::Legacy);
        assert_eq!(fast.len(), legacy.len(), "{}: event counts diverge", wl.name);
        for (i, (f, l)) in fast.iter().zip(&legacy).enumerate() {
            assert_eq!(f, l, "{}: event {i} diverges", wl.name);
        }
        assert_eq!(fast_end, legacy_end, "{}: terminal states diverge", wl.name);
        assert!(fast.len() as u64 >= BUDGET / 2, "{}: budget barely used", wl.name);
    }
}

/// Seeds must not matter either: a second input set exercises different
/// control-flow paths through the same text.
#[test]
fn alternate_seed_streams_identically_across_tiers() {
    let wl = all().into_iter().find(|w| w.name == "gcc").expect("gcc family exists");
    let image = wl.build().expect("workload compiles");
    let input = wl.input(Scale::Tiny, 777);
    let (fast, fast_end) = stream(&image, input.clone(), InterpTier::Predecoded);
    let (legacy, legacy_end) = stream(&image, input, InterpTier::Legacy);
    assert_eq!(fast, legacy);
    assert_eq!(fast_end, legacy_end);
}

#[cfg(feature = "proptest")]
mod random_programs {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Randomly parameterized MiniC programs — table contents, trip
        /// counts, strides, and recursion depth all vary — must stream
        /// identically under both tiers, whatever they do.
        #[test]
        fn random_minic_programs_stream_identically(
            tab in proptest::collection::vec(0u32..1000, 8),
            iters in 10u32..400,
            step in 1u32..9,
            depth in 1u32..8,
        ) {
            let src = format!(
                "int tab[8] = {{{}}};\n\
                 int lookup(int i) {{ return tab[i & 7]; }}\n\
                 int rec(int n) {{ if (n <= 0) return 1; return rec(n - 1) + lookup(n); }}\n\
                 int main() {{\n\
                     int s = rec({depth});\n\
                     int i;\n\
                     for (i = 0; i < {iters}; i = i + {step}) s = s + lookup(i);\n\
                     return s & 0xff;\n\
                 }}",
                tab.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            );
            let image = instrep_minicc::build(&src).expect("random program compiles");
            let (fast, fast_end) = stream(&image, Vec::new(), InterpTier::Predecoded);
            let (legacy, legacy_end) = stream(&image, Vec::new(), InterpTier::Legacy);
            prop_assert_eq!(fast.len(), legacy.len(), "event counts diverge");
            for (i, (f, l)) in fast.iter().zip(&legacy).enumerate() {
                prop_assert_eq!(f, l, "event {} diverges", i);
            }
            prop_assert_eq!(fast_end, legacy_end);
        }
    }
}
