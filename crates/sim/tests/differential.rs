//! Differential tests between the predecoded interpreter tier and the
//! legacy `step()` oracle: for every program — clean exits, budget
//! exhaustion, and one of each trap class — both tiers must emit
//! byte-identical [`Event`] streams and finish in byte-identical
//! machine states, including the exact trap.
//!
//! The workload-family differential (all ten benchmarks) lives in
//! `crates/workloads/tests/differential.rs`; this file owns the trap
//! corpus, which the workloads never reach.

use instrep_asm::assemble;
use instrep_sim::{Event, InterpTier, Machine, RunOutcome, SimError};

/// Runs `src` under one tier, capturing the full event stream and the
/// terminal state.
struct Run {
    events: Vec<Event>,
    outcome: Result<RunOutcome, SimError>,
    icount: u64,
    pc: u32,
    output: Vec<u8>,
    exit_code: Option<u32>,
}

fn run_tier(src: &str, input: &[u8], budget: u64, tier: InterpTier) -> Run {
    let image = assemble(src).expect("test program assembles");
    let mut m = Machine::with_tier(&image, tier);
    m.set_input(input.to_vec());
    let mut events = Vec::new();
    let outcome = m.run(budget, |ev| events.push(*ev));
    Run {
        events,
        outcome,
        icount: m.icount(),
        pc: m.pc(),
        output: m.output().to_vec(),
        exit_code: m.exit_code(),
    }
}

/// Asserts both tiers agree on everything observable, returning the
/// predecoded run for program-specific assertions.
fn assert_tiers_agree(src: &str, input: &[u8], budget: u64) -> Run {
    let fast = run_tier(src, input, budget, InterpTier::Predecoded);
    let legacy = run_tier(src, input, budget, InterpTier::Legacy);
    assert_eq!(fast.events.len(), legacy.events.len(), "event counts diverge");
    for (i, (f, l)) in fast.events.iter().zip(&legacy.events).enumerate() {
        assert_eq!(f, l, "event {i} diverges");
    }
    assert_eq!(fast.outcome, legacy.outcome, "run outcomes diverge");
    assert_eq!(fast.icount, legacy.icount, "icount diverges");
    assert_eq!(fast.pc, legacy.pc, "final pc diverges");
    assert_eq!(fast.output, legacy.output, "syscall output diverges");
    assert_eq!(fast.exit_code, legacy.exit_code, "exit code diverges");
    fast
}

#[test]
fn clean_exit_streams_are_identical() {
    let run = assert_tiers_agree(
        ".text\n__start:\n\
         li $t0, 0\n\
         li $t1, 10\n\
         loop: add $t0, $t0, $t1\n\
         addiu $t1, $t1, -1\n\
         bne $t1, $zero, loop\n\
         move $a0, $t0\n\
         li $v0, 0\nsyscall\n",
        &[],
        1_000_000,
    );
    assert_eq!(run.outcome, Ok(RunOutcome::Exited(55)));
    assert!(run.events.len() > 30);
}

#[test]
fn budget_exhaustion_cuts_both_streams_at_the_same_event() {
    let run = assert_tiers_agree(".text\n__start: b __start\n", &[], 777);
    assert_eq!(run.outcome, Ok(RunOutcome::MaxedOut));
    assert_eq!(run.events.len(), 777);
}

#[test]
fn bad_pc_traps_identically() {
    // `jr` to an address far outside text.
    let run = assert_tiers_agree(".text\n__start: li $t0, 0x10000000\njr $t0\n", &[], 1_000_000);
    assert_eq!(run.outcome, Err(SimError::BadPc { pc: 0x1000_0000 }));
    // li expands to lui+ori; both retire, then the jr retires before
    // the fetch of the bad pc traps.
    assert_eq!(run.events.len(), 3);
}

#[test]
fn unaligned_access_traps_identically() {
    let run =
        assert_tiers_agree(".text\n__start: li $t0, 0x10000001\nlw $t1, 0($t0)\n", &[], 1_000_000);
    assert!(
        matches!(run.outcome, Err(SimError::Unaligned { addr: 0x1000_0001, width: 4, .. })),
        "got {:?}",
        run.outcome
    );
    assert_eq!(run.events.len(), 2, "only the two-insn li expansion retires");
}

#[test]
fn bad_address_traps_identically() {
    let run =
        assert_tiers_agree(".text\n__start: li $t0, 0x00001000\nlw $t1, 0($t0)\n", &[], 1_000_000);
    assert!(
        matches!(run.outcome, Err(SimError::BadAddress { addr: 0x1000, .. })),
        "got {:?}",
        run.outcome
    );
}

#[test]
fn text_write_traps_identically() {
    let run =
        assert_tiers_agree(".text\n__start: li $t0, 0x400000\nsw $t0, 0($t0)\n", &[], 1_000_000);
    assert!(
        matches!(run.outcome, Err(SimError::TextWrite { addr: 0x40_0000, .. })),
        "got {:?}",
        run.outcome
    );
}

#[test]
fn divide_by_zero_traps_identically() {
    let run = assert_tiers_agree(
        ".text\n__start: li $t0, 9\nli $t1, 0\ndivu $t2, $t0, $t1\n",
        &[],
        1_000_000,
    );
    assert!(matches!(run.outcome, Err(SimError::DivideByZero { .. })), "got {:?}", run.outcome);
    assert_eq!(run.events.len(), 2, "both li events retire before the div traps");
}

#[test]
fn bad_syscall_traps_identically() {
    let run = assert_tiers_agree(".text\n__start: li $v0, 99\nsyscall\n", &[], 1_000_000);
    assert!(
        matches!(run.outcome, Err(SimError::BadSyscall { number: 99, .. })),
        "got {:?}",
        run.outcome
    );
}

#[test]
fn break_traps_identically() {
    let run = assert_tiers_agree(".text\n__start: break\n", &[], 1_000_000);
    assert!(matches!(run.outcome, Err(SimError::Break { .. })), "got {:?}", run.outcome);
    assert_eq!(run.events.len(), 0, "a trap retires no event");
}

#[test]
fn syscall_read_into_text_traps_identically() {
    // The Read syscall validates its destination buffer like stores.
    let run = assert_tiers_agree(
        ".text\n__start: li $a0, 0\nli $a1, 0x400000\nli $a2, 4\nli $v0, 1\nsyscall\n",
        b"abcd",
        1_000_000,
    );
    assert!(
        matches!(run.outcome, Err(SimError::TextWrite { addr: 0x40_0000, .. })),
        "got {:?}",
        run.outcome
    );
}

#[test]
fn resume_after_budget_stays_identical() {
    // Stop mid-loop, then resume: the predecoded loop must restart from
    // the saved pc exactly where the legacy one does.
    let src = ".text\n__start:\n\
               li $t0, 0\n\
               loop: addiu $t0, $t0, 1\n\
               li $t1, 500\n\
               bne $t0, $t1, loop\n\
               li $a0, 0\nli $v0, 0\nsyscall\n";
    let image = assemble(src).unwrap();
    let mut streams = Vec::new();
    for tier in [InterpTier::Predecoded, InterpTier::Legacy] {
        let mut m = Machine::with_tier(&image, tier);
        let mut events = Vec::new();
        assert_eq!(m.run(100, |ev| events.push(*ev)).unwrap(), RunOutcome::MaxedOut);
        let outcome = m.run(u64::MAX, |ev| events.push(*ev)).unwrap();
        assert_eq!(outcome, RunOutcome::Exited(0));
        streams.push(events);
    }
    assert_eq!(streams[0], streams[1]);
}
