// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property test: the paged [`Memory`] agrees with a naive
//! byte-map reference model under arbitrary interleavings of
//! byte/half/word stores and loads.

use std::collections::BTreeMap;

use instrep_sim::Memory;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    StoreB(u32, u8),
    StoreH(u32, u16),
    StoreW(u32, u32),
    LoadB(u32),
    LoadH(u32),
    LoadW(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Cluster addresses around page boundaries to stress page crossing.
    let addr = prop_oneof![
        any::<u32>(),
        (0u32..8).prop_map(|d| 0x1000_1000u32.wrapping_sub(4).wrapping_add(d)),
        (0u32..64).prop_map(|d| 0x7fff_f000u32.wrapping_sub(32).wrapping_add(d)),
    ];
    (addr, any::<u32>(), 0u8..6).prop_map(|(a, v, k)| match k {
        0 => Op::StoreB(a, v as u8),
        1 => Op::StoreH(a & !1, v as u16),
        2 => Op::StoreW(a & !3, v),
        3 => Op::LoadB(a),
        4 => Op::LoadH(a & !1),
        _ => Op::LoadW(a & !3),
    })
}

proptest! {
    #[test]
    fn matches_byte_map_reference(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut mem = Memory::new();
        let mut model: BTreeMap<u32, u8> = BTreeMap::new();
        let get = |m: &BTreeMap<u32, u8>, a: u32| *m.get(&a).unwrap_or(&0);
        for op in &ops {
            match *op {
                Op::StoreB(a, v) => {
                    mem.store_u8(a, v);
                    model.insert(a, v);
                }
                Op::StoreH(a, v) => {
                    mem.store_u16(a, v);
                    let b = v.to_le_bytes();
                    model.insert(a, b[0]);
                    model.insert(a.wrapping_add(1), b[1]);
                }
                Op::StoreW(a, v) => {
                    mem.store_u32(a, v);
                    for (i, byte) in v.to_le_bytes().into_iter().enumerate() {
                        model.insert(a.wrapping_add(i as u32), byte);
                    }
                }
                Op::LoadB(a) => {
                    prop_assert_eq!(mem.load_u8(a), get(&model, a));
                }
                Op::LoadH(a) => {
                    let want =
                        u16::from_le_bytes([get(&model, a), get(&model, a.wrapping_add(1))]);
                    prop_assert_eq!(mem.load_u16(a), want);
                }
                Op::LoadW(a) => {
                    let want = u32::from_le_bytes([
                        get(&model, a),
                        get(&model, a.wrapping_add(1)),
                        get(&model, a.wrapping_add(2)),
                        get(&model, a.wrapping_add(3)),
                    ]);
                    prop_assert_eq!(mem.load_u32(a), want);
                }
            }
        }
    }

    #[test]
    fn bulk_io_round_trips(addr in any::<u32>(), bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut mem = Memory::new();
        mem.write_bytes(addr, &bytes);
        prop_assert_eq!(mem.read_bytes(addr, bytes.len() as u32), bytes);
    }
}
