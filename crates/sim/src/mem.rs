/// Sparse paged byte-addressable memory.
///
/// The 32-bit address space is backed by 4 KiB pages allocated on first
/// touch and zero-filled, which matches the behaviour the workloads
/// expect of BSS, heap, and stack memory. A flat page table keeps the hot
/// path to one bounds check and two dereferences.
///
/// # Examples
///
/// ```
/// use instrep_sim::Memory;
///
/// let mut m = Memory::new();
/// m.store_u32(0x1000_0000, 0xdead_beef);
/// assert_eq!(m.load_u32(0x1000_0000), 0xdead_beef);
/// assert_eq!(m.load_u8(0x1000_0003), 0xde); // little-endian
/// assert_eq!(m.load_u32(0x7fff_0000), 0);   // untouched memory reads 0
/// ```
#[derive(Debug)]
pub struct Memory {
    pages: Vec<Option<Box<Page>>>,
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const NUM_PAGES: usize = 1 << (32 - PAGE_BITS);

type Page = [u8; PAGE_SIZE];

impl Memory {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory { pages: vec![None; NUM_PAGES] }
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&Page> {
        self.pages[(addr >> PAGE_BITS) as usize].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut Page {
        let idx = (addr >> PAGE_BITS) as usize;
        self.pages[idx].get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Loads one byte.
    #[inline]
    pub fn load_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Loads a little-endian halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-aligned. Alignment is a hard contract:
    /// a misaligned halfword at a page end would otherwise index past
    /// the 4 KiB page array. Callers (the interpreter tiers) trap
    /// misaligned accesses as [`SimError::Unaligned`] before calling.
    ///
    /// [`SimError::Unaligned`]: crate::SimError::Unaligned
    #[inline]
    pub fn load_u16(&self, addr: u32) -> u16 {
        assert!(addr.is_multiple_of(2), "misaligned halfword load at {addr:#010x}");
        match self.page(addr) {
            Some(p) => {
                let i = (addr as usize) & (PAGE_SIZE - 1);
                u16::from_le_bytes([p[i], p[i + 1]])
            }
            None => 0,
        }
    }

    /// Loads a little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned (see [`Memory::load_u16`]).
    #[inline]
    pub fn load_u32(&self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "misaligned word load at {addr:#010x}");
        match self.page(addr) {
            Some(p) => {
                let i = (addr as usize) & (PAGE_SIZE - 1);
                u32::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3]])
            }
            None => 0,
        }
    }

    /// Stores one byte.
    #[inline]
    pub fn store_u8(&mut self, addr: u32, v: u8) {
        let i = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[i] = v;
    }

    /// Stores a little-endian halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-aligned (see [`Memory::load_u16`]).
    #[inline]
    pub fn store_u16(&mut self, addr: u32, v: u16) {
        assert!(addr.is_multiple_of(2), "misaligned halfword store at {addr:#010x}");
        let i = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[i..i + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Stores a little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned (see [`Memory::load_u16`]).
    #[inline]
    pub fn store_u32(&mut self, addr: u32, v: u32) {
        assert!(addr.is_multiple_of(4), "misaligned word store at {addr:#010x}");
        let i = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len).map(|i| self.load_u8(addr.wrapping_add(i))).collect()
    }

    /// Appends `len` bytes starting at `addr` to `out`, page-chunk-wise
    /// (absent pages contribute zeros). Unlike [`Memory::read_bytes`]
    /// this never materializes a `len`-sized intermediate buffer, so
    /// callers can bound allocation by what they actually keep.
    pub fn read_into(&self, addr: u32, len: u32, out: &mut Vec<u8>) {
        let mut addr = u64::from(addr);
        let end = addr + u64::from(len);
        while addr < end {
            let in_page = (addr as usize) & (PAGE_SIZE - 1);
            let chunk = (PAGE_SIZE - in_page).min((end - addr) as usize);
            match self.page(addr as u32) {
                Some(p) => out.extend_from_slice(&p[in_page..in_page + chunk]),
                None => out.resize(out.len() + chunk, 0),
            }
            addr += chunk as u64;
        }
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Bytes held by resident pages (page-granular: each touched page
    /// accounts for its full 4 KiB backing allocation).
    pub fn resident_bytes(&self) -> usize {
        self.resident_pages() * PAGE_SIZE
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = Memory::new();
        assert_eq!(m.load_u32(0x1234_5678 & !3), 0);
        m.store_u32(0x1000_0000, 0x0102_0304);
        assert_eq!(m.load_u8(0x1000_0000), 0x04);
        assert_eq!(m.load_u8(0x1000_0003), 0x01);
        assert_eq!(m.load_u16(0x1000_0000), 0x0304);
        assert_eq!(m.load_u16(0x1000_0002), 0x0102);
        m.store_u8(0x1000_0001, 0xff);
        assert_eq!(m.load_u32(0x1000_0000), 0x0102_ff04);
        m.store_u16(0x1000_0002, 0xbeef);
        assert_eq!(m.load_u32(0x1000_0000), 0xbeef_ff04);
    }

    #[test]
    fn cross_page_bytes() {
        let mut m = Memory::new();
        let boundary = 0x2000_1000 - 2;
        m.write_bytes(boundary, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(boundary, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn high_addresses() {
        let mut m = Memory::new();
        m.store_u32(0xffff_fffc, 7);
        assert_eq!(m.load_u32(0xffff_fffc), 7);
    }

    #[test]
    fn aligned_accesses_at_page_boundaries() {
        // The last aligned halfword/word of a page must stay in-page.
        let mut m = Memory::new();
        m.store_u16(0x2000_0ffe, 0xabcd);
        m.store_u32(0x3000_0ffc, 0xdead_beef);
        assert_eq!(m.load_u16(0x2000_0ffe), 0xabcd);
        assert_eq!(m.load_u32(0x3000_0ffc), 0xdead_beef);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "misaligned halfword load")]
    fn misaligned_u16_load_panics_at_page_end() {
        // A misaligned halfword at the last byte of a page would index
        // one past the page array; the hard contract catches it even in
        // release builds.
        let m = Memory::new();
        let _ = m.load_u16(0x2000_0fff);
    }

    #[test]
    #[should_panic(expected = "misaligned word load")]
    fn misaligned_u32_load_panics_at_page_end() {
        let m = Memory::new();
        let _ = m.load_u32(0x2000_0ffd);
    }

    #[test]
    #[should_panic(expected = "misaligned halfword store")]
    fn misaligned_u16_store_panics() {
        let mut m = Memory::new();
        m.store_u16(0x2000_0fff, 1);
    }

    #[test]
    #[should_panic(expected = "misaligned word store")]
    fn misaligned_u32_store_panics() {
        let mut m = Memory::new();
        m.store_u32(0x2000_0ffe, 1);
    }

    #[test]
    fn read_into_streams_across_pages_and_holes() {
        let mut m = Memory::new();
        let boundary = 0x2000_1000 - 2;
        m.write_bytes(boundary, &[1, 2, 3, 4]);
        let mut out = vec![9];
        m.read_into(boundary, 4, &mut out);
        assert_eq!(out, vec![9, 1, 2, 3, 4]);
        // An absent page in the middle of the range reads as zeros.
        let mut out = Vec::new();
        m.read_into(0x2000_0ffc, 8, &mut out);
        assert_eq!(out, vec![0, 0, 1, 2, 3, 4, 0, 0]);
        // Matches read_bytes byte-for-byte.
        assert_eq!(out, m.read_bytes(0x2000_0ffc, 8));
    }
}
