//! Event-trace recording and replay.
//!
//! Many experiments replay the *same* execution through several analysis
//! configurations (reuse-buffer geometries, tracker caps, predictor
//! variants). [`Trace::record`] captures one run's event stream;
//! [`Trace::replay`] feeds it to any observer without re-simulating,
//! guaranteeing every configuration sees an identical instruction stream.

use std::fmt;

use crate::error::SimError;
use crate::event::Event;
use crate::machine::{Machine, RunOutcome};

/// A trap during [`Trace::record`], carrying everything retired before
/// the trap so partial executions remain analyzable (e.g. replaying the
/// prefix of a buggy workload through the analyses).
#[derive(Debug, Clone)]
pub struct RecordError {
    /// The recorded prefix: every event retired before the trap.
    pub partial: Trace,
    /// The trap that ended recording.
    pub trap: SimError,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {} recorded events", self.trap, self.partial.len())
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.trap)
    }
}

/// A recorded event stream.
///
/// # Examples
///
/// ```
/// use instrep_asm::assemble;
/// use instrep_sim::{Machine, Trace};
///
/// let image = assemble(r#"
///     .text
/// __start:
///     li $t0, 3
///     li $a0, 0
///     li $v0, 0
///     syscall
/// "#)?;
/// let mut m = Machine::new(&image);
/// let trace = Trace::record(&mut m, 1_000)?;
/// assert_eq!(trace.len(), 4);
/// let mut outs = 0;
/// trace.replay(|ev| outs += u32::from(ev.out.is_some()));
/// assert_eq!(outs, 3); // syscall (exit) produces no register result
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    outcome: Option<RunOutcome>,
}

impl Trace {
    /// Records up to `max_insns` events from `machine`.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps as a [`RecordError`]; events retired
    /// before the trap are kept in its `partial` trace.
    pub fn record(machine: &mut Machine, max_insns: u64) -> Result<Trace, RecordError> {
        let mut events = Vec::new();
        match machine.run(max_insns, |ev| events.push(*ev)) {
            Ok(outcome) => Ok(Trace { events, outcome: Some(outcome) }),
            Err(trap) => Err(RecordError { partial: Trace { events, outcome: None }, trap }),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How the recorded run ended, if recorded via [`Trace::record`].
    pub fn outcome(&self) -> Option<RunOutcome> {
        self.outcome
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Feeds every event to `observer`, in order.
    pub fn replay<F: FnMut(&Event)>(&self, mut observer: F) {
        for ev in &self.events {
            observer(ev);
        }
    }

    /// Replays a sub-range `[start, end)` of the trace (clamped), e.g. to
    /// reproduce a skip/window split without re-recording.
    pub fn replay_range<F: FnMut(&Event)>(&self, start: usize, end: usize, mut observer: F) {
        let end = end.min(self.events.len());
        let start = start.min(end);
        for ev in &self.events[start..end] {
            observer(ev);
        }
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Trace {
        Trace { events: iter.into_iter().collect(), outcome: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_asm::assemble;

    fn machine() -> Machine {
        let image = assemble(
            r#"
            .text
            __start:
                li   $t0, 0
                li   $t1, 50
            loop:
                addi $t0, $t0, 1
                blt  $t0, $t1, loop
                li   $a0, 0
                li   $v0, 0
                syscall
            "#,
        )
        .unwrap();
        Machine::new(&image)
    }

    #[test]
    fn record_and_replay_are_identical() {
        let mut m = machine();
        let trace = Trace::record(&mut m, 1_000_000).unwrap();
        assert_eq!(trace.outcome(), Some(RunOutcome::Exited(0)));
        assert!(!trace.is_empty());

        // Replaying twice produces the same stream.
        let mut a = Vec::new();
        trace.replay(|ev| a.push((ev.pc, ev.in1, ev.outcome())));
        let mut b = Vec::new();
        trace.replay(|ev| b.push((ev.pc, ev.in1, ev.outcome())));
        assert_eq!(a, b);
        assert_eq!(a.len(), trace.len());

        // And matches a fresh simulation.
        let mut m2 = machine();
        let mut c = Vec::new();
        m2.run(1_000_000, |ev| c.push((ev.pc, ev.in1, ev.outcome()))).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn range_replay_clamps() {
        let mut m = machine();
        let trace = Trace::record(&mut m, 1_000_000).unwrap();
        let n = trace.len();
        let mut count = 0;
        trace.replay_range(2, n + 100, |_| count += 1);
        assert_eq!(count, n - 2);
        count = 0;
        trace.replay_range(50, 10, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn budget_truncation_is_recorded() {
        let mut m = machine();
        let trace = Trace::record(&mut m, 10).unwrap();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.outcome(), Some(RunOutcome::MaxedOut));
    }

    #[test]
    fn trap_keeps_retired_prefix() {
        // Three instructions retire, then a division by zero traps.
        let src = r#"
            .text
            __start:
                li   $t0, 6
                li   $t1, 2
                add  $t2, $t0, $t1
                div  $t3, $t0, $zero
            "#;
        let image = assemble(src).unwrap();
        let err = Trace::record(&mut Machine::new(&image), 1_000).unwrap_err();
        assert!(matches!(err.trap, SimError::DivideByZero { .. }));
        assert_eq!(err.partial.len(), 3);
        assert_eq!(err.partial.outcome(), None);
        assert!(err.to_string().contains("3 recorded events"));

        // Replaying the partial trace matches a fresh run cut at the
        // trap point.
        let mut fresh = Machine::new(&assemble(src).unwrap());
        let mut direct = Vec::new();
        for _ in 0..3 {
            let ev = fresh.step().unwrap();
            direct.push((ev.pc, ev.in1, ev.in2, ev.outcome()));
        }
        assert!(fresh.step().is_err());
        let mut replayed = Vec::new();
        err.partial.replay(|ev| replayed.push((ev.pc, ev.in1, ev.in2, ev.outcome())));
        assert_eq!(replayed, direct);
    }

    #[test]
    fn collect_from_events() {
        let mut m = machine();
        let trace = Trace::record(&mut m, 20).unwrap();
        let sub: Trace = trace.events().iter().copied().take(5).collect();
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.outcome(), None);
    }
}
