use instrep_isa::abi::Syscall;
use instrep_isa::{Insn, MemWidth};

/// Memory side effect of one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEffect {
    /// Effective address.
    pub addr: u32,
    /// Access width.
    pub width: MemWidth,
    /// Value loaded (already extended) or stored.
    pub value: u32,
    /// `true` for loads, `false` for stores.
    pub is_load: bool,
}

/// Control-flow or environment side effect of one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEffect {
    /// A function call (`jal` or `jalr`).
    Call {
        /// Callee entry address.
        target: u32,
        /// Potential argument values: `a0..a3` followed by the four
        /// stack-argument slots at `sp+16..sp+32`. The callee's arity
        /// (from function metadata) says how many are meaningful.
        args: [u32; 8],
        /// Stack pointer at the call.
        sp: u32,
        /// Return address written by the call.
        ra: u32,
    },
    /// A function return (`jr $ra`).
    Return {
        /// Address being returned to.
        target: u32,
        /// Value of `$v0` (the return-value register) at the return.
        v0: u32,
    },
    /// A conditional branch.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// Target address if taken.
        target: u32,
    },
    /// A non-call jump (`j`, or `jr` through a register other than `$ra`).
    Jump {
        /// Target address.
        target: u32,
    },
    /// A completed system call.
    Syscall {
        /// Which call.
        call: Syscall,
        /// Argument registers `a0..a2` at the call.
        a: [u32; 3],
        /// Value returned in `$v0`.
        ret: u32,
    },
    /// Program exit via `exit`.
    Exit {
        /// Exit code.
        code: u32,
    },
}

/// One retired instruction, as observed by analyses.
///
/// Operand values are captured *before* the instruction writes its
/// result, and the result after. `in1`/`in2` correspond position-wise to
/// [`Insn::uses`]; absent operands read as 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Program counter of the instruction.
    pub pc: u32,
    /// Static instruction index: `(pc - TEXT_BASE) / 4`.
    pub index: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// First source operand value (0 if the instruction has none).
    pub in1: u32,
    /// Second source operand value (0 if the instruction has none).
    pub in2: u32,
    /// Result value written to the destination register, if any.
    pub out: Option<u32>,
    /// Memory side effect, if any.
    pub mem: Option<MemEffect>,
    /// Control or environment side effect, if any.
    pub ctrl: Option<CtrlEffect>,
}

impl Event {
    /// A single value summarizing the instruction's outcome, used as the
    /// output half of a repetition-instance key:
    ///
    /// * result value for register-writing instructions,
    /// * stored value for stores,
    /// * taken/not-taken for branches,
    /// * target for indirect jumps,
    /// * return value for syscalls.
    pub fn outcome(&self) -> u32 {
        if let Some(out) = self.out {
            return out;
        }
        match self.ctrl {
            Some(CtrlEffect::Branch { taken, .. }) => taken as u32,
            Some(CtrlEffect::Jump { target }) => target,
            Some(CtrlEffect::Return { target, .. }) => target,
            Some(CtrlEffect::Syscall { ret, .. }) => ret,
            Some(CtrlEffect::Exit { code }) => code,
            Some(CtrlEffect::Call { .. }) | None => match self.mem {
                Some(m) if !m.is_load => m.value,
                _ => 0,
            },
        }
    }

    /// Whether this dynamic instruction is a function call.
    pub fn is_call(&self) -> bool {
        matches!(self.ctrl, Some(CtrlEffect::Call { .. }))
    }

    /// Whether this dynamic instruction is a function return.
    pub fn is_return(&self) -> bool {
        matches!(self.ctrl, Some(CtrlEffect::Return { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_isa::{AluOp, Reg};

    fn base_event() -> Event {
        Event {
            pc: 0x40_0000,
            index: 0,
            insn: Insn::alu(AluOp::Add, Reg::V0, Reg::A0, Reg::A1),
            in1: 1,
            in2: 2,
            out: Some(3),
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn outcome_prefers_register_result() {
        assert_eq!(base_event().outcome(), 3);
    }

    #[test]
    fn outcome_for_branch_and_store() {
        let mut e = base_event();
        e.out = None;
        e.ctrl = Some(CtrlEffect::Branch { taken: true, target: 0x40_0010 });
        assert_eq!(e.outcome(), 1);
        e.ctrl = None;
        e.mem = Some(MemEffect { addr: 8, width: MemWidth::Word, value: 77, is_load: false });
        assert_eq!(e.outcome(), 77);
        e.mem = None;
        assert_eq!(e.outcome(), 0);
    }

    #[test]
    fn call_return_predicates() {
        let mut e = base_event();
        assert!(!e.is_call());
        e.ctrl = Some(CtrlEffect::Call { target: 0, args: [0; 8], sp: 0, ra: 0 });
        assert!(e.is_call());
        e.ctrl = Some(CtrlEffect::Return { target: 0, v0: 0 });
        assert!(e.is_return());
    }
}
