use std::fmt;

/// A simulation trap: the program performed an architecturally invalid
/// operation, or the image itself is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are the trap context (pc, addr, ...)
pub enum SimError {
    /// `pc` left the text segment.
    BadPc { pc: u32 },
    /// A text word failed to decode at load time.
    BadText { pc: u32, word: u32 },
    /// Misaligned memory access.
    Unaligned { pc: u32, addr: u32, width: u32 },
    /// Access to an unmapped address region.
    BadAddress { pc: u32, addr: u32 },
    /// Store into the text segment.
    TextWrite { pc: u32, addr: u32 },
    /// Integer division or remainder by zero.
    DivideByZero { pc: u32 },
    /// Unknown syscall number.
    BadSyscall { pc: u32, number: u32 },
    /// `break` instruction executed.
    Break { pc: u32 },
    /// The heap break left its valid range.
    BadSbrk { pc: u32, delta: i32 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::BadPc { pc } => write!(f, "pc {pc:#010x} outside text segment"),
            SimError::BadText { pc, word } => {
                write!(f, "undecodable instruction word {word:#010x} at {pc:#010x}")
            }
            SimError::Unaligned { pc, addr, width } => {
                write!(f, "misaligned {width}-byte access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::BadAddress { pc, addr } => {
                write!(f, "access to unmapped address {addr:#010x} at pc {pc:#010x}")
            }
            SimError::TextWrite { pc, addr } => {
                write!(f, "store into text segment at {addr:#010x} from pc {pc:#010x}")
            }
            SimError::DivideByZero { pc } => write!(f, "division by zero at pc {pc:#010x}"),
            SimError::BadSyscall { pc, number } => {
                write!(f, "unknown syscall {number} at pc {pc:#010x}")
            }
            SimError::Break { pc } => write!(f, "break executed at pc {pc:#010x}"),
            SimError::BadSbrk { pc, delta } => {
                write!(f, "sbrk({delta}) out of range at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Unaligned { pc: 0x40_0000, addr: 0x1000_0001, width: 4 };
        let s = e.to_string();
        assert!(s.contains("0x10000001"));
        assert!(s.contains("0x00400000"));
        assert!(SimError::DivideByZero { pc: 0 }.to_string().contains("division"));
    }
}
