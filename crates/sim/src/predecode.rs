//! The predecoded fast-interpreter tier.
//!
//! [`Machine::try_new`](crate::Machine::try_new) decodes every text word
//! once; this module lowers that decoded text a second time into a dense
//! array of *resolved* operations ([`PreOp`]): operand registers as
//! plain array indices, immediates already sign- or zero-extended,
//! branch targets as absolute addresses, jump targets pre-shifted, and a
//! flat handler id to dispatch on. The per-instruction loop then never
//! touches `Insn::uses()`, never re-extends an immediate, and never
//! recomputes a branch target — it reads one 12-byte `PreOp`, two
//! registers, and matches once on the handler.
//!
//! The legacy [`Machine::step`](crate::Machine::step) interpreter stays
//! as the oracle: [`InterpTier`] selects the loop, and the differential
//! tests (`crates/sim/tests/differential.rs`, plus the workload-family
//! suite in `instrep-workloads`) assert that both tiers produce
//! byte-identical [`Event`] streams, traps included.
//!
//! Superinstruction fusion (folding minicc's prologue/epilogue/gp-load
//! shapes into one handler) was considered and rejected: the observer
//! contract requires one `Event` per retired instruction, so a fused
//! handler still has to materialize every constituent event — all it
//! can save is the dispatch branch, which is a few percent of the loop
//! and not worth a second code path.

use instrep_isa::abi::Region;
use instrep_isa::{AluOp, BranchOp, ImmOp, Insn, MemWidth, Reg, ShiftOp};

use crate::error::SimError;
use crate::event::{CtrlEffect, Event, MemEffect};
use crate::machine::{Machine, RunOutcome};

/// Which interpreter loop [`Machine::run`](crate::Machine::run) uses.
///
/// Both tiers produce identical event streams and traps — reports built
/// on them are tier-invariant by construction, so nothing downstream
/// (analysis caches included) may key on the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpTier {
    /// The predecoded fast tier (the default): one-time lowering to
    /// [`PreOp`]s plus a flat match-on-handler dispatch loop.
    Predecoded,
    /// The original one-`step()`-per-instruction oracle loop.
    Legacy,
}

impl Default for InterpTier {
    /// [`InterpTier::Predecoded`], unless the `legacy-interp` cargo
    /// feature flips the build-wide default for differential debugging.
    fn default() -> InterpTier {
        if cfg!(feature = "legacy-interp") {
            InterpTier::Legacy
        } else {
            InterpTier::Predecoded
        }
    }
}

/// One resolved text word. 12 bytes; the whole predecoded text of a
/// workload stays L1-resident.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreOp {
    h: Handler,
    /// First source register index (`0` = `$zero` when the instruction
    /// has no first operand — reading it yields the same 0 the legacy
    /// tier reports).
    s1: u8,
    /// Second source register index (same `$zero` convention).
    s2: u8,
    /// Destination register index (`0` discards the write).
    d: u8,
    /// Resolved immediate: extended imm, shamt, absolute branch target,
    /// or pre-shifted jump target, depending on the handler.
    imm: u32,
}

/// Handler ids the dispatch loop matches on. ALU/shift/branch/memory
/// handlers carry the original op so the semantics stay defined in one
/// place (`instrep_isa::op`); the immediate ops get dedicated handlers
/// because their win *is* the precomputed extension.
#[derive(Debug, Clone, Copy)]
enum Handler {
    Alu(AluOp),
    Addi,
    Slti,
    Sltiu,
    Andi,
    Ori,
    Xori,
    Shift(ShiftOp),
    Lui,
    Load(MemWidth),
    Store(MemWidth),
    Branch(BranchOp),
    J,
    Jal,
    Jr,
    JrRa,
    Jalr,
    Syscall,
    Break,
}

/// Lowers the decoded text segment into the dense resolved-op array.
pub(crate) fn predecode(text: &[Insn], text_base: u32) -> Vec<PreOp> {
    text.iter()
        .enumerate()
        .map(|(i, &insn)| lower(insn, text_base.wrapping_add((i as u32) * 4)))
        .collect()
}

fn lower(insn: Insn, pc: u32) -> PreOp {
    let mut op = PreOp { h: Handler::Break, s1: 0, s2: 0, d: 0, imm: 0 };
    match insn {
        Insn::Alu { op: alu, rd, rs, rt } => {
            op.h = Handler::Alu(alu);
            op.s1 = rs.number();
            op.s2 = rt.number();
            op.d = rd.number();
        }
        Insn::Imm { op: iop, rt, rs, imm } => {
            op.h = match iop {
                ImmOp::Addi => Handler::Addi,
                ImmOp::Slti => Handler::Slti,
                ImmOp::Sltiu => Handler::Sltiu,
                ImmOp::Andi => Handler::Andi,
                ImmOp::Ori => Handler::Ori,
                ImmOp::Xori => Handler::Xori,
            };
            op.s1 = rs.number();
            op.d = rt.number();
            op.imm = iop.extend(imm);
        }
        Insn::Shift { op: sop, rd, rt, shamt } => {
            op.h = Handler::Shift(sop);
            op.s1 = rt.number();
            op.d = rd.number();
            op.imm = u32::from(shamt);
        }
        Insn::Lui { rt, imm } => {
            op.h = Handler::Lui;
            op.d = rt.number();
            op.imm = u32::from(imm) << 16;
        }
        Insn::Mem { op: mop, rt, base, off } => {
            op.s1 = base.number();
            op.imm = off as i32 as u32;
            if mop.is_load() {
                op.h = Handler::Load(mop.width());
                op.d = rt.number();
            } else {
                op.h = Handler::Store(mop.width());
                op.s2 = rt.number();
            }
        }
        Insn::Branch { op: bop, rs, rt, off } => {
            op.h = Handler::Branch(bop);
            op.s1 = rs.number();
            op.s2 = if bop.uses_rt() { rt.number() } else { 0 };
            op.imm = pc.wrapping_add(4).wrapping_add((off as i32 as u32) << 2);
        }
        Insn::Jump { link, target } => {
            op.h = if link { Handler::Jal } else { Handler::J };
            op.imm = target << 2;
        }
        Insn::Jr { rs } => {
            op.h = if rs == Reg::RA { Handler::JrRa } else { Handler::Jr };
            op.s1 = rs.number();
        }
        Insn::Jalr { rd, rs } => {
            op.h = Handler::Jalr;
            op.s1 = rs.number();
            op.d = rd.number();
        }
        Insn::Syscall => op.h = Handler::Syscall,
        Insn::Break => op.h = Handler::Break,
    }
    op
}

impl Machine {
    /// The fast dispatch loop. Event-for-event and trap-for-trap
    /// identical to driving [`Machine::step`] in a loop.
    pub(crate) fn run_predecoded<F: FnMut(&Event)>(
        &mut self,
        max_insns: u64,
        observer: &mut F,
    ) -> Result<RunOutcome, SimError> {
        let budget_end = self.icount.saturating_add(max_insns);
        while self.exited.is_none() {
            if self.icount >= budget_end {
                return Ok(RunOutcome::MaxedOut);
            }
            let pc = self.pc;
            let index = pc.wrapping_sub(self.text_base) / 4;
            let op = match self.pre.get(index as usize) {
                Some(&op) if pc >= self.text_base && pc.is_multiple_of(4) => op,
                _ => return Err(SimError::BadPc { pc }),
            };
            let in1 = self.regs[usize::from(op.s1)];
            let in2 = self.regs[usize::from(op.s2)];
            let mut out = None;
            let mut mem_eff = None;
            let mut ctrl = None;
            let mut next_pc = pc.wrapping_add(4);

            match op.h {
                Handler::Alu(alu) => {
                    let v = alu.apply(in1, in2).ok_or(SimError::DivideByZero { pc })?;
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Addi => {
                    let v = in1.wrapping_add(op.imm);
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Slti => {
                    let v = u32::from((in1 as i32) < (op.imm as i32));
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Sltiu => {
                    let v = u32::from(in1 < op.imm);
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Andi => {
                    let v = in1 & op.imm;
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Ori => {
                    let v = in1 | op.imm;
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Xori => {
                    let v = in1 ^ op.imm;
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Shift(sop) => {
                    let v = sop.apply(in1, op.imm as u8);
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                }
                Handler::Lui => {
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = op.imm;
                    }
                    out = Some(op.imm);
                }
                Handler::Load(width) => {
                    let addr = in1.wrapping_add(op.imm);
                    let bytes = width.bytes();
                    if !addr.is_multiple_of(bytes) {
                        return Err(SimError::Unaligned { pc, addr, width: bytes });
                    }
                    if self.region_of(addr) == Region::Other {
                        return Err(SimError::BadAddress { pc, addr });
                    }
                    let raw = match bytes {
                        1 => u32::from(self.mem.load_u8(addr)),
                        2 => u32::from(self.mem.load_u16(addr)),
                        _ => self.mem.load_u32(addr),
                    };
                    let v = width.extend(raw);
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = v;
                    }
                    out = Some(v);
                    mem_eff = Some(MemEffect { addr, width, value: v, is_load: true });
                }
                Handler::Store(width) => {
                    let addr = in1.wrapping_add(op.imm);
                    let bytes = width.bytes();
                    if !addr.is_multiple_of(bytes) {
                        return Err(SimError::Unaligned { pc, addr, width: bytes });
                    }
                    match self.region_of(addr) {
                        Region::Other => return Err(SimError::BadAddress { pc, addr }),
                        Region::Text => return Err(SimError::TextWrite { pc, addr }),
                        _ => {}
                    }
                    match bytes {
                        1 => self.mem.store_u8(addr, in2 as u8),
                        2 => self.mem.store_u16(addr, in2 as u16),
                        _ => self.mem.store_u32(addr, in2),
                    }
                    mem_eff = Some(MemEffect { addr, width, value: in2, is_load: false });
                }
                Handler::Branch(bop) => {
                    let taken = bop.taken(in1, in2);
                    if taken {
                        next_pc = op.imm;
                    }
                    ctrl = Some(CtrlEffect::Branch { taken, target: op.imm });
                }
                Handler::J => {
                    next_pc = op.imm;
                    ctrl = Some(CtrlEffect::Jump { target: op.imm });
                }
                Handler::Jal => {
                    let ra = pc.wrapping_add(4);
                    self.regs[usize::from(Reg::RA.number())] = ra;
                    out = Some(ra);
                    ctrl = Some(CtrlEffect::Call {
                        target: op.imm,
                        args: self.peek_args(),
                        sp: self.reg(Reg::SP),
                        ra,
                    });
                    next_pc = op.imm;
                }
                Handler::Jr => {
                    next_pc = in1;
                    ctrl = Some(CtrlEffect::Jump { target: in1 });
                }
                Handler::JrRa => {
                    next_pc = in1;
                    ctrl = Some(CtrlEffect::Return { target: in1, v0: self.reg(Reg::V0) });
                }
                Handler::Jalr => {
                    let ra = pc.wrapping_add(4);
                    if op.d != 0 {
                        self.regs[usize::from(op.d)] = ra;
                    }
                    out = Some(ra);
                    ctrl = Some(CtrlEffect::Call {
                        target: in1,
                        args: self.peek_args(),
                        sp: self.reg(Reg::SP),
                        ra,
                    });
                    next_pc = in1;
                }
                Handler::Syscall => {
                    ctrl = Some(self.do_syscall(pc)?);
                }
                Handler::Break => return Err(SimError::Break { pc }),
            }

            self.pc = next_pc;
            self.icount += 1;
            let ev = Event {
                pc,
                index,
                insn: self.text[index as usize],
                in1,
                in2,
                out,
                mem: mem_eff,
                ctrl,
            };
            observer(&ev);
        }
        Ok(RunOutcome::Exited(self.exited.unwrap()))
    }
}
