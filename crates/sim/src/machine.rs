use instrep_asm::Image;
use instrep_isa::abi::{self, Region, Syscall};
use instrep_isa::{decode, Insn, MemWidth, Reg};

use crate::error::SimError;
use crate::event::{CtrlEffect, Event, MemEffect};
use crate::mem::Memory;
use crate::predecode::{self, InterpTier, PreOp};

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program called `exit` with this code.
    Exited(u32),
    /// The instruction budget was exhausted first.
    MaxedOut,
}

/// Resource footprint of a running [`Machine`], sampled by observability
/// layers (see `instrep_core::metrics`). Sampling reads existing state
/// only — it never perturbs execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineFootprint {
    /// Simulated-memory pages resident (touched at least once).
    pub resident_pages: usize,
    /// Bytes backing those pages (page-granular).
    pub resident_bytes: usize,
    /// Static instructions in the pre-decoded text segment.
    pub text_insns: usize,
    /// Bytes the program has written through the `write` syscall.
    pub output_bytes: usize,
    /// Input-stream bytes not yet consumed by `read`.
    pub input_remaining: usize,
}

/// A functional SRV32 machine: registers, memory, and an environment
/// (input stream, output buffer, heap break).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) mem: Memory,
    pub(crate) text: Vec<Insn>,
    pub(crate) pre: Vec<PreOp>,
    pub(crate) text_base: u32,
    pub(crate) data_end: u32,
    pub(crate) brk: u32,
    pub(crate) input: Vec<u8>,
    pub(crate) input_pos: usize,
    pub(crate) output: Vec<u8>,
    pub(crate) exited: Option<u32>,
    pub(crate) icount: u64,
    tier: InterpTier,
}

impl Machine {
    /// Creates a machine loaded with `image`, with registers initialized
    /// per the ABI (`$sp`, `$gp`) and `pc` at the image entry point.
    ///
    /// # Panics
    ///
    /// Panics if a text word of the image fails to decode; [`assemble`]
    /// output never does. Use [`Machine::try_new`] for untrusted images.
    ///
    /// [`assemble`]: instrep_asm::assemble
    pub fn new(image: &Image) -> Machine {
        Machine::try_new(image).expect("image text must decode")
    }

    /// Like [`Machine::new`], but with an explicit interpreter tier
    /// instead of [`InterpTier::default`].
    ///
    /// # Panics
    ///
    /// Panics if a text word of the image fails to decode.
    pub fn with_tier(image: &Image, tier: InterpTier) -> Machine {
        Machine::try_new_with_tier(image, tier).expect("image text must decode")
    }

    /// Creates a machine, failing cleanly on undecodable text words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadText`] for the first undecodable word.
    pub fn try_new(image: &Image) -> Result<Machine, SimError> {
        Machine::try_new_with_tier(image, InterpTier::default())
    }

    /// Like [`Machine::try_new`], but with an explicit interpreter tier.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadText`] for the first undecodable word.
    pub fn try_new_with_tier(image: &Image, tier: InterpTier) -> Result<Machine, SimError> {
        let text = image
            .text
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                decode(w)
                    .map_err(|_| SimError::BadText { pc: abi::TEXT_BASE + (i as u32) * 4, word: w })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut mem = Memory::new();
        mem.write_bytes(abi::DATA_BASE, &image.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.number() as usize] = abi::STACK_TOP;
        regs[Reg::GP.number() as usize] = abi::GP_INIT;
        let pre = predecode::predecode(&text, abi::TEXT_BASE);
        Ok(Machine {
            regs,
            pc: image.entry,
            mem,
            text,
            pre,
            text_base: abi::TEXT_BASE,
            data_end: image.data_end(),
            brk: image.data_end(),
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            exited: None,
            icount: 0,
            tier,
        })
    }

    /// The interpreter tier this machine runs on.
    pub fn tier(&self) -> InterpTier {
        self.tier
    }

    /// Provides the byte stream returned by the `read` syscall.
    pub fn set_input(&mut self, input: Vec<u8>) {
        self.input = input;
        self.input_pos = 0;
    }

    /// Bytes written through the `write` syscall so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Sets a register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Number of instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Exit code, once the program has exited.
    pub fn exit_code(&self) -> Option<u32> {
        self.exited
    }

    /// First address past the static data image (heap base).
    pub fn data_end(&self) -> u32 {
        self.data_end
    }

    /// Current heap break.
    pub fn brk(&self) -> u32 {
        self.brk
    }

    /// Direct access to memory (for test setup and analyses).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (for test setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The memory [`Region`] of an address under the current heap break.
    pub fn region_of(&self, addr: u32) -> Region {
        abi::region_of(addr, self.data_end, self.brk)
    }

    /// Samples the machine's current resource footprint (for metrics).
    pub fn footprint(&self) -> MachineFootprint {
        MachineFootprint {
            resident_pages: self.mem.resident_pages(),
            resident_bytes: self.mem.resident_bytes(),
            text_insns: self.text.len(),
            output_bytes: self.output.len(),
            input_remaining: self.input.len().saturating_sub(self.input_pos),
        }
    }

    /// Runs until exit or until `max_insns` have retired, feeding every
    /// retired instruction's [`Event`] to `observer`.
    ///
    /// Dispatches to the loop selected by this machine's [`InterpTier`];
    /// both tiers produce identical event streams and traps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] trap.
    pub fn run<F: FnMut(&Event)>(
        &mut self,
        max_insns: u64,
        mut observer: F,
    ) -> Result<RunOutcome, SimError> {
        match self.tier {
            InterpTier::Predecoded => self.run_predecoded(max_insns, &mut observer),
            InterpTier::Legacy => self.run_legacy(max_insns, &mut observer),
        }
    }

    fn run_legacy<F: FnMut(&Event)>(
        &mut self,
        max_insns: u64,
        observer: &mut F,
    ) -> Result<RunOutcome, SimError> {
        let budget_end = self.icount.saturating_add(max_insns);
        while self.exited.is_none() {
            if self.icount >= budget_end {
                return Ok(RunOutcome::MaxedOut);
            }
            let ev = self.step()?;
            observer(&ev);
        }
        Ok(RunOutcome::Exited(self.exited.unwrap()))
    }

    /// Executes one instruction and returns its event.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] trap on invalid execution; the machine state
    /// is left as of the trap and must not be stepped further.
    ///
    /// # Panics
    ///
    /// Panics if called after the program has exited.
    pub fn step(&mut self) -> Result<Event, SimError> {
        assert!(self.exited.is_none(), "step() after exit");
        let pc = self.pc;
        let index = pc.wrapping_sub(self.text_base) / 4;
        let insn = *self
            .text
            .get(index as usize)
            .filter(|_| pc >= self.text_base && pc.is_multiple_of(4))
            .ok_or(SimError::BadPc { pc })?;

        let uses = insn.uses();
        let in1 = uses[0].map_or(0, |r| self.reg(r));
        let in2 = uses[1].map_or(0, |r| self.reg(r));
        let mut out = None;
        let mut mem_eff = None;
        let mut ctrl = None;
        let mut next_pc = pc.wrapping_add(4);

        match insn {
            Insn::Alu { op, rd, .. } => {
                let v = op.apply(in1, in2).ok_or(SimError::DivideByZero { pc })?;
                self.set_reg(rd, v);
                out = Some(v);
            }
            Insn::Imm { op, rt, imm, .. } => {
                let v = op.apply(in1, imm);
                self.set_reg(rt, v);
                out = Some(v);
            }
            Insn::Shift { op, rd, shamt, .. } => {
                let v = op.apply(in1, shamt);
                self.set_reg(rd, v);
                out = Some(v);
            }
            Insn::Lui { rt, imm } => {
                let v = u32::from(imm) << 16;
                self.set_reg(rt, v);
                out = Some(v);
            }
            Insn::Mem { op, rt, off, .. } => {
                let addr = in1.wrapping_add(off as i32 as u32);
                let width = op.width();
                self.check_access(pc, addr, width, op.is_load())?;
                if op.is_load() {
                    let raw = match width.bytes() {
                        1 => u32::from(self.mem.load_u8(addr)),
                        2 => u32::from(self.mem.load_u16(addr)),
                        _ => self.mem.load_u32(addr),
                    };
                    let v = width.extend(raw);
                    self.set_reg(rt, v);
                    out = Some(v);
                    mem_eff = Some(MemEffect { addr, width, value: v, is_load: true });
                } else {
                    let v = self.reg(rt);
                    match width.bytes() {
                        1 => self.mem.store_u8(addr, v as u8),
                        2 => self.mem.store_u16(addr, v as u16),
                        _ => self.mem.store_u32(addr, v),
                    }
                    mem_eff = Some(MemEffect { addr, width, value: v, is_load: false });
                }
            }
            Insn::Branch { op, off, .. } => {
                let taken = op.taken(in1, in2);
                let target = pc.wrapping_add(4).wrapping_add((off as i32 as u32) << 2);
                if taken {
                    next_pc = target;
                }
                ctrl = Some(CtrlEffect::Branch { taken, target });
            }
            Insn::Jump { link, target } => {
                let target = target << 2;
                if link {
                    let ra = pc.wrapping_add(4);
                    self.set_reg(Reg::RA, ra);
                    out = Some(ra);
                    ctrl = Some(CtrlEffect::Call {
                        target,
                        args: self.peek_args(),
                        sp: self.reg(Reg::SP),
                        ra,
                    });
                } else {
                    ctrl = Some(CtrlEffect::Jump { target });
                }
                next_pc = target;
            }
            Insn::Jr { rs } => {
                next_pc = in1;
                ctrl = if rs == Reg::RA {
                    Some(CtrlEffect::Return { target: in1, v0: self.reg(Reg::V0) })
                } else {
                    Some(CtrlEffect::Jump { target: in1 })
                };
            }
            Insn::Jalr { rd, .. } => {
                let ra = pc.wrapping_add(4);
                self.set_reg(rd, ra);
                out = Some(ra);
                ctrl = Some(CtrlEffect::Call {
                    target: in1,
                    args: self.peek_args(),
                    sp: self.reg(Reg::SP),
                    ra,
                });
                next_pc = in1;
            }
            Insn::Syscall => {
                ctrl = Some(self.do_syscall(pc)?);
            }
            Insn::Break => return Err(SimError::Break { pc }),
        }

        self.pc = next_pc;
        self.icount += 1;
        Ok(Event { pc, index, insn, in1, in2, out, mem: mem_eff, ctrl })
    }

    /// Snapshot of the eight potential argument slots at a call site.
    ///
    /// The four stack slots are read only when `$sp` is 4-aligned and
    /// the slot address lies in the stack region; otherwise they stay
    /// 0 — hand-written asm may call with `$sp` pointing anywhere, and
    /// a best-effort peek must not fabricate values from other regions
    /// (or panic on a misaligned load).
    pub(crate) fn peek_args(&self) -> [u32; 8] {
        let sp = self.reg(Reg::SP);
        let mut args = [0u32; 8];
        args[..4].copy_from_slice(&self.regs[4..8]);
        if sp.is_multiple_of(4) {
            for i in 0..4u32 {
                let addr = sp.wrapping_add(16 + 4 * i);
                if addr >= abi::STACK_REGION_BASE {
                    args[4 + i as usize] = self.mem.load_u32(addr);
                }
            }
        }
        args
    }

    fn check_access(
        &self,
        pc: u32,
        addr: u32,
        width: MemWidth,
        is_load: bool,
    ) -> Result<(), SimError> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(SimError::Unaligned { pc, addr, width: bytes });
        }
        match self.region_of(addr) {
            Region::Other => Err(SimError::BadAddress { pc, addr }),
            Region::Text if !is_load => Err(SimError::TextWrite { pc, addr }),
            _ => Ok(()),
        }
    }

    /// First region boundary strictly above `addr` (or the end of the
    /// address space). Since region membership only changes at these
    /// boundaries, validating one address per boundary interval covers
    /// an arbitrarily long buffer in at most a handful of checks.
    fn region_end(&self, addr: u32) -> u64 {
        let bounds =
            [abi::TEXT_BASE, abi::DATA_BASE, self.data_end, self.brk, abi::STACK_REGION_BASE];
        bounds.into_iter().map(u64::from).filter(|&b| b > u64::from(addr)).min().unwrap_or(1 << 32)
    }

    /// Validates a syscall buffer `[buf, buf + len)` with the same rules
    /// ordinary loads/stores go through: every byte must be in a mapped
    /// region, and writes (`is_load == false`, i.e. `read` filling the
    /// buffer) must not target text. Byte accesses are always aligned,
    /// so only the region rules apply. A range that wraps past the end
    /// of the address space faults at the wrapped address.
    fn check_buffer(&self, pc: u32, buf: u32, len: u32, is_load: bool) -> Result<(), SimError> {
        if len == 0 {
            return Ok(());
        }
        let end = u64::from(buf) + u64::from(len);
        let mut addr = u64::from(buf);
        while addr < end.min(1 << 32) {
            match self.region_of(addr as u32) {
                Region::Other => return Err(SimError::BadAddress { pc, addr: addr as u32 }),
                Region::Text if !is_load => {
                    return Err(SimError::TextWrite { pc, addr: addr as u32 })
                }
                _ => {}
            }
            addr = self.region_end(addr as u32);
        }
        if end > 1 << 32 {
            // The range wraps past the end of the address space; its
            // first wrapped byte lands at address 0, which is always
            // Region::Other.
            return Err(SimError::BadAddress { pc, addr: 0 });
        }
        Ok(())
    }

    pub(crate) fn do_syscall(&mut self, pc: u32) -> Result<CtrlEffect, SimError> {
        let num = self.reg(Reg::V0);
        let a = [self.reg(Reg::A0), self.reg(Reg::A1), self.reg(Reg::A2)];
        let call = Syscall::from_number(num).ok_or(SimError::BadSyscall { pc, number: num })?;
        let ret = match call {
            Syscall::Exit => {
                self.exited = Some(a[0]);
                a[0]
            }
            Syscall::Read => {
                let (buf, len) = (a[1], a[2] as usize);
                let avail = self.input.len() - self.input_pos;
                let n = len.min(avail);
                // Validate the range actually written (not the full
                // request — a short read past the end of a clamped
                // buffer region is the program's business), before any
                // input is consumed or memory touched.
                self.check_buffer(pc, buf, n as u32, false)?;
                self.mem.write_bytes(buf, &self.input[self.input_pos..self.input_pos + n]);
                self.input_pos += n;
                n as u32
            }
            Syscall::Write => {
                let (buf, len) = (a[1], a[2]);
                // Validate the full requested range up front — all
                // `len` bytes are emitted — then stream page-wise into
                // the output buffer; no `len`-sized intermediate Vec,
                // so a bogus 4 GiB request traps before allocating.
                self.check_buffer(pc, buf, len, true)?;
                self.mem.read_into(buf, len, &mut self.output);
                len
            }
            Syscall::Sbrk => {
                let delta = a[0] as i32;
                let old = self.brk;
                let new = (i64::from(old) + i64::from(delta)) as u32;
                if new < self.data_end || new >= abi::STACK_REGION_BASE {
                    return Err(SimError::BadSbrk { pc, delta });
                }
                self.brk = new;
                old
            }
        };
        self.set_reg(abi::SYSCALL_RET_REG, ret);
        Ok(CtrlEffect::Syscall { call, a, ret })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_asm::assemble;

    fn run_asm(src: &str) -> (Machine, RunOutcome) {
        let image = assemble(src).unwrap();
        let mut m = Machine::new(&image);
        let outcome = m.run(1_000_000, |_| {}).unwrap();
        (m, outcome)
    }

    #[test]
    fn exit_code_propagates() {
        let (m, out) = run_asm(".text\n__start: li $a0, 7\nli $v0, 0\nsyscall\n");
        assert_eq!(out, RunOutcome::Exited(7));
        assert_eq!(m.exit_code(), Some(7));
        assert_eq!(m.icount(), 3);
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 then exit(sum).
        let (_, out) = run_asm(
            r#"
            .text
            __start:
                li   $t0, 0      # sum
                li   $t1, 1      # i
            loop:
                add  $t0, $t0, $t1
                addi $t1, $t1, 1
                ble  $t1, $t2, loop   # t2 == 0, never taken; test not-taken path
                li   $t2, 10
                ble  $t1, $t2, loop
                move $a0, $t0
                li   $v0, 0
                syscall
            "#,
        );
        assert_eq!(out, RunOutcome::Exited(55));
    }

    #[test]
    fn data_loads_and_stores() {
        let (_, out) = run_asm(
            r#"
            .data
            x:  .word 40
            y:  .space 4
            .text
            __start:
                lw   $t0, x
                addi $t0, $t0, 2
                sw   $t0, y
                lw   $a0, y
                li   $v0, 0
                syscall
            "#,
        );
        assert_eq!(out, RunOutcome::Exited(42));
    }

    #[test]
    fn call_and_return_events() {
        let image = assemble(
            r#"
            .text
            __start:
                li   $a0, 5
                li   $a1, 6
                jal  add2
                move $a0, $v0
                li   $v0, 0
                syscall
            .func add2, 2
            add2:
                add  $v0, $a0, $a1
                jr   $ra
            .endfunc
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&image);
        let mut calls = Vec::new();
        let mut returns = Vec::new();
        let out = m
            .run(100, |ev| {
                if let Some(CtrlEffect::Call { target, args, .. }) = ev.ctrl {
                    calls.push((target, args[0], args[1]));
                }
                if let Some(CtrlEffect::Return { v0, .. }) = ev.ctrl {
                    returns.push(v0);
                }
            })
            .unwrap();
        assert_eq!(out, RunOutcome::Exited(11));
        let add2 = image.symbols.get("add2").unwrap();
        assert_eq!(calls, vec![(add2, 5, 6)]);
        assert_eq!(returns, vec![11]);
    }

    #[test]
    fn read_write_syscalls() {
        let image = assemble(
            r#"
            .data
            buf: .space 16
            .text
            __start:
                li   $a0, 0
                la   $a1, buf
                li   $a2, 5
                li   $v0, 1      # read
                syscall
                move $a2, $v0    # echo as many as read
                la   $a1, buf
                li   $a0, 1
                li   $v0, 2      # write
                syscall
                li   $a0, 0
                li   $v0, 0
                syscall
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&image);
        m.set_input(b"hey".to_vec());
        let out = m.run(100, |_| {}).unwrap();
        assert_eq!(out, RunOutcome::Exited(0));
        assert_eq!(m.output(), b"hey");
    }

    #[test]
    fn sbrk_heap() {
        let image = assemble(
            r#"
            .text
            __start:
                li   $a0, 4096
                li   $v0, 3      # sbrk
                syscall
                sw   $a0, 0($v0)     # write to new heap page
                lw   $a0, 0($v0)
                li   $v0, 0
                syscall
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&image);
        let out = m.run(100, |_| {}).unwrap();
        assert_eq!(out, RunOutcome::Exited(4096));
        assert_eq!(m.brk(), m.data_end() + 4096);
    }

    #[test]
    fn traps() {
        // Division by zero.
        let image = assemble(".text\n__start: div $t0, $t1, $zero\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::DivideByZero { .. }));

        // Unaligned word load.
        let image = assemble(".text\n__start: li $t0, 0x10000001\nlw $t1, 0($t0)\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::Unaligned { .. }));

        // Unmapped address (between heap break and stack).
        let image = assemble(".text\n__start: li $t0, 0x30000000\nlw $t1, 0($t0)\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::BadAddress { .. }));

        // Store into text.
        let image = assemble(".text\n__start: li $t0, 0x400000\nsw $t0, 0($t0)\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::TextWrite { .. }));

        // Running off the end of text.
        let image = assemble(".text\n__start: nop\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::BadPc { .. }));

        // Break.
        let image = assemble(".text\n__start: break\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::Break { .. }));

        // Bad syscall number.
        let image = assemble(".text\n__start: li $v0, 99\nsyscall\n").unwrap();
        let err = Machine::new(&image).run(10, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::BadSyscall { number: 99, .. }));
    }

    #[test]
    fn budget_exhaustion() {
        let image = assemble(".text\n__start: b __start\n").unwrap();
        let mut m = Machine::new(&image);
        assert_eq!(m.run(100, |_| {}).unwrap(), RunOutcome::MaxedOut);
        assert_eq!(m.icount(), 100);
        // Budget is relative to the call, not absolute.
        assert_eq!(m.run(50, |_| {}).unwrap(), RunOutcome::MaxedOut);
        assert_eq!(m.icount(), 150);
    }

    #[test]
    fn zero_register_is_immutable() {
        let (_, out) =
            run_asm(".text\n__start: li $zero, 5\nmove $a0, $zero\nli $v0, 0\nsyscall\n");
        assert_eq!(out, RunOutcome::Exited(0));
    }

    fn run_asm_tiered(src: &str, tier: InterpTier) -> Result<(Machine, RunOutcome), SimError> {
        let image = assemble(src).unwrap();
        let mut m = Machine::with_tier(&image, tier);
        let outcome = m.run(1_000_000, |_| {});
        outcome.map(|o| (m, o))
    }

    const BOTH_TIERS: [InterpTier; 2] = [InterpTier::Predecoded, InterpTier::Legacy];

    #[test]
    fn tier_selection_is_explicit_and_defaulted() {
        let image = assemble(".text\n__start: li $v0, 0\nsyscall\n").unwrap();
        assert_eq!(Machine::new(&image).tier(), InterpTier::default());
        assert_eq!(Machine::with_tier(&image, InterpTier::Legacy).tier(), InterpTier::Legacy);
        assert_eq!(
            Machine::with_tier(&image, InterpTier::Predecoded).tier(),
            InterpTier::Predecoded
        );
    }

    #[test]
    fn syscall_write_from_text_is_allowed_like_a_load() {
        // Reading text through `write` mirrors an ordinary load's rules.
        for tier in BOTH_TIERS {
            let (m, out) = run_asm_tiered(
                ".text\n__start: li $a0, 1\nli $a1, 0x400000\nli $a2, 4\nli $v0, 2\nsyscall\n\
                 li $a0, 0\nli $v0, 0\nsyscall\n",
                tier,
            )
            .unwrap();
            assert_eq!(out, RunOutcome::Exited(0));
            assert_eq!(m.output().len(), 4);
        }
    }

    #[test]
    fn syscall_read_into_text_traps() {
        for tier in BOTH_TIERS {
            let image = assemble(
                ".text\n__start: li $a0, 0\nli $a1, 0x400000\nli $a2, 4\nli $v0, 1\nsyscall\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            m.set_input(b"oops".to_vec());
            let err = m.run(100, |_| {}).unwrap_err();
            assert!(matches!(err, SimError::TextWrite { addr: 0x40_0000, .. }), "{err:?}");
            // Nothing was consumed or written before the trap.
            assert_eq!(m.footprint().input_remaining, 4);
            assert_eq!(m.mem().load_u8(0x40_0000), 0);
        }
    }

    #[test]
    fn syscall_buffers_in_unmapped_regions_trap() {
        for tier in BOTH_TIERS {
            // Write from the gap between heap break and stack.
            let err = run_asm_tiered(
                ".text\n__start: li $a0, 1\nli $a1, 0x30000000\nli $a2, 4\nli $v0, 2\nsyscall\n",
                tier,
            )
            .unwrap_err();
            assert!(matches!(err, SimError::BadAddress { addr: 0x3000_0000, .. }), "{err:?}");

            // Read into low unmapped memory (below text).
            let image = assemble(
                ".text\n__start: li $a0, 0\nli $a1, 0x1000\nli $a2, 4\nli $v0, 1\nsyscall\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            m.set_input(b"oops".to_vec());
            let err = m.run(100, |_| {}).unwrap_err();
            assert!(matches!(err, SimError::BadAddress { addr: 0x1000, .. }), "{err:?}");
        }
    }

    #[test]
    fn syscall_buffer_straddling_region_boundary_traps() {
        // A buffer that starts in valid data but runs past the heap
        // break must trap at the first invalid byte, not the base.
        for tier in BOTH_TIERS {
            let image = assemble(
                ".data\nx: .word 1\n.text\n__start:\n\
                 li $a0, 1\nla $a1, x\nli $a2, 0x100000\nli $v0, 2\nsyscall\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            let err = m.run(100, |_| {}).unwrap_err();
            let brk = m.brk();
            assert_eq!(err, SimError::BadAddress { pc: m.pc(), addr: brk });
        }
    }

    #[test]
    fn syscall_write_with_huge_len_traps_without_allocating() {
        // a2 = 0xffff_ffff used to materialize a ~4 GiB Vec before any
        // validation; it must now trap up front, touching no memory.
        for tier in BOTH_TIERS {
            let image = assemble(
                ".text\n__start: li $a0, 1\nli $a1, 0x10000000\nli $a2, -1\nli $v0, 2\nsyscall\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            let pages_before = m.mem().resident_pages();
            let err = m.run(100, |_| {}).unwrap_err();
            assert!(matches!(err, SimError::BadAddress { .. }));
            assert_eq!(m.mem().resident_pages(), pages_before);
            assert!(m.output().is_empty());
        }
    }

    #[test]
    fn syscall_buffer_wrapping_address_space_traps() {
        // Starts in the stack region, runs past 2^32: first wrapped
        // byte is address 0, which is unmapped.
        for tier in BOTH_TIERS {
            let err = run_asm_tiered(
                ".text\n__start: li $a0, 1\nli $a1, -16\nli $a2, 32\nli $v0, 2\nsyscall\n",
                tier,
            )
            .unwrap_err();
            assert!(matches!(err, SimError::BadAddress { addr: 0, .. }), "{err:?}");
        }
    }

    #[test]
    fn syscall_read_clamped_by_input_validates_written_range_only() {
        // The data region is one page here; a 64 KiB request would run
        // past the heap break, but only 3 input bytes remain, so only
        // [buf, buf+3) is validated and written.
        for tier in BOTH_TIERS {
            let image = assemble(
                ".data\nbuf: .space 16\n.text\n__start:\n\
                 li $a0, 0\nla $a1, buf\nli $a2, 0x10000\nli $v0, 1\nsyscall\n\
                 move $a0, $v0\nli $v0, 0\nsyscall\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            m.set_input(b"hey".to_vec());
            let out = m.run(100, |_| {}).unwrap();
            assert_eq!(out, RunOutcome::Exited(3));
            assert_eq!(m.mem().read_bytes(abi::DATA_BASE, 3), b"hey");
        }
    }

    #[test]
    fn syscall_zero_len_io_is_a_no_op_anywhere() {
        // len == 0 touches no bytes, so even a wild base address is fine
        // (matching POSIX read/write semantics for zero-length I/O).
        for tier in BOTH_TIERS {
            let (m, out) = run_asm_tiered(
                ".text\n__start: li $a0, 1\nli $a1, 0x30000000\nli $a2, 0\nli $v0, 2\nsyscall\n\
                 li $a0, 0\nli $v0, 0\nsyscall\n",
                tier,
            )
            .unwrap();
            assert_eq!(out, RunOutcome::Exited(0));
            assert!(m.output().is_empty());
        }
    }

    #[test]
    fn peek_args_outside_stack_region_reads_no_memory() {
        // $sp re-pointed at the data region: the four stack arg slots
        // must stay 0 instead of leaking data-region words.
        for tier in BOTH_TIERS {
            let image = assemble(
                ".data\nvals: .word 11, 22, 33, 44, 55, 66\n.text\n__start:\n\
                 la $sp, vals\nli $a0, 1\njal f\nli $v0, 0\nli $a0, 0\nsyscall\n\
                 .func f, 1\nf:\njr $ra\n.endfunc\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            let mut seen = None;
            m.run(100, |ev| {
                if let Some(CtrlEffect::Call { args, sp, .. }) = ev.ctrl {
                    seen = Some((args, sp));
                }
            })
            .unwrap();
            let (args, sp) = seen.unwrap();
            assert_eq!(sp, abi::DATA_BASE);
            assert_eq!(args[0], 1);
            assert_eq!(&args[4..], &[0, 0, 0, 0], "stack slots must not be peeked");
        }
    }

    #[test]
    fn peek_args_in_stack_region_reads_slots() {
        for tier in BOTH_TIERS {
            let image = assemble(
                ".text\n__start:\n\
                 addi $sp, $sp, -32\nli $t0, 77\nsw $t0, 16($sp)\nli $a0, 5\njal f\n\
                 li $v0, 0\nli $a0, 0\nsyscall\n\
                 .func f, 1\nf:\njr $ra\n.endfunc\n",
            )
            .unwrap();
            let mut m = Machine::with_tier(&image, tier);
            let mut seen = None;
            m.run(100, |ev| {
                if let Some(CtrlEffect::Call { args, .. }) = ev.ctrl {
                    seen = Some(args);
                }
            })
            .unwrap();
            let args = seen.unwrap();
            assert_eq!(args[0], 5);
            assert_eq!(args[4], 77);
        }
    }

    #[test]
    fn event_fields_for_alu() {
        let image = assemble(
            ".text\n__start: li $t0, 3\nli $t1, 4\nadd $t2, $t0, $t1\n li $v0,0\nsyscall\n",
        )
        .unwrap();
        let mut m = Machine::new(&image);
        let mut seen = None;
        m.run(100, |ev| {
            if let Insn::Alu { .. } = ev.insn {
                seen = Some((ev.in1, ev.in2, ev.out));
            }
        })
        .unwrap();
        assert_eq!(seen, Some((3, 4, Some(7))));
    }
}
