#![warn(missing_docs)]
//! Functional simulator for SRV32 executables.
//!
//! [`Machine`] loads an [`instrep_asm::Image`], pre-decodes the text
//! segment, and interprets instructions one at a time. Every retired
//! instruction produces an [`Event`] describing its operand values,
//! result, memory effect, and control effect — the raw material for the
//! repetition analyses in `instrep-core`.
//!
//! The simulator is *functional* (no timing): it models architectural
//! state only, exactly like the `sim-safe` SimpleScalar simulator used by
//! the paper this repository reproduces.
//!
//! # Examples
//!
//! ```
//! use instrep_asm::assemble;
//! use instrep_sim::{Machine, RunOutcome};
//!
//! let image = assemble(r#"
//!     .text
//! __start:
//!     li   $a0, 6
//!     li   $a1, 7
//!     mul  $a0, $a0, $a1
//!     li   $v0, 0          # exit(42)
//!     syscall
//! "#)?;
//! let mut m = Machine::new(&image);
//! let outcome = m.run(1_000, |_ev| {})?;
//! assert_eq!(outcome, RunOutcome::Exited(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod event;
mod machine;
mod mem;
mod predecode;
mod trace;

pub use error::SimError;
pub use event::{CtrlEffect, Event, MemEffect};
pub use machine::{Machine, MachineFootprint, RunOutcome};
pub use mem::Memory;
pub use predecode::InterpTier;
pub use trace::{RecordError, Trace};
